"""The paper's worked padding example (Table 1 and Figure 5), executable.

A 12-segment PCM grouped into 3 clusters receives the 4-bit item
d1 = [0,0,0,1], which must be padded to the 8-bit model width.  This script
prints every strategy x position combination, the padded output, and the
Hamming-nearest Table-1 cluster — reproducing the structure of Figure 5.

Run:  python examples/padding_walkthrough.py
"""

import numpy as np

from repro.core.padding import Padder
from repro.ml.lstm import LSTMPredictor

TABLE_1 = {
    0: [[0, 0, 1, 1, 1, 1, 0, 1], [0, 0, 1, 0, 1, 1, 0, 0],
        [0, 0, 1, 1, 1, 1, 0, 0], [0, 0, 1, 1, 1, 0, 0, 0]],
    1: [[1, 0, 0, 0, 1, 0, 1, 1], [0, 0, 0, 0, 1, 0, 1, 1],
        [0, 0, 0, 0, 1, 1, 1, 1], [0, 0, 0, 0, 1, 0, 1, 0]],
    2: [[1, 0, 1, 1, 0, 0, 0, 0], [0, 1, 1, 1, 0, 0, 1, 0],
        [1, 1, 1, 1, 0, 0, 0, 0], [1, 1, 0, 1, 0, 0, 0, 0]],
}
D1 = np.array([0.0, 0.0, 0.0, 1.0])


def nearest_cluster(bits: np.ndarray) -> int:
    best, best_dist = -1, None
    for cluster, members in TABLE_1.items():
        dist = float(np.mean([np.abs(np.array(m) - bits).sum() for m in members]))
        if best_dist is None or dist < best_dist:
            best, best_dist = cluster, dist
    return best


def trained_lstm() -> LSTMPredictor:
    """Train the toy LSTM on (repetitions of) the Table 1 contents, as in
    the paper's §4.1.3 snippet."""
    rows = [np.array(m, dtype=float) for ms in TABLE_1.values() for m in ms]
    train = np.stack([np.tile(r, 6) for r in rows])
    lstm = LSTMPredictor(window_bits=8, chunk_bits=1, hidden_dim=12, seed=0)
    lstm.fit(train, epochs=8, lr=1e-2, include_reversed=True)
    return lstm


def fmt(bits: np.ndarray) -> str:
    return "[" + ",".join(str(int(b)) for b in bits) + "]"


def main() -> None:
    print(f"input item d1 = {fmt(D1)}; model width = 8 bits")
    print("Table 1 memory pool: 12 segments in 3 clusters\n")
    lstm = trained_lstm()
    memory_ones = float(
        np.mean([b for ms in TABLE_1.values() for m in ms for b in m])
    )
    for position in ("begin", "middle", "end"):
        print(f"--- padding position: {position} ---")
        for strategy in ("zero", "one", "random", "input", "dataset",
                         "memory", "learned"):
            padder = Padder(
                8, strategy=strategy, position=position, seed=4,
                lstm=lstm if strategy == "learned" else None,
            )
            padded = padder.pad(D1, memory_ones_fraction=memory_ones)
            print(
                f"  {strategy:>8}: {fmt(padded)}  ->  "
                f"cluster {nearest_cluster(padded)}"
            )
        print()
    print("(padded bits are used only for prediction; only d1's 4 real "
          "bits would be written to NVM)")


if __name__ == "__main__":
    main()
