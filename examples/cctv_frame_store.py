"""Domain example: storing surveillance video frames on NVM.

The paper motivates E2-NVM with low-power PCM deployments — IoT cameras,
battery-backed edge boxes — where footage is continuously overwritten.
This example runs a rolling CCTV buffer from four synthetic cameras:
frames stream in, the oldest are deleted, and E2-NVM keeps placing new
frames over segments holding visually similar old frames.

Run:  python examples/cctv_frame_store.py
"""

import numpy as np

from repro import E2NVMConfig, MemoryController, NVMDevice
from repro.core import E2NVM, KVStore
from repro.workloads.video import SyntheticVideo

SEGMENT = 256          # one frame tile per segment
N_SEGMENTS = 256
FRAMES_PER_CAMERA = 120
BUFFER_FRAMES = 60     # rolling retention window


def main() -> None:
    cameras = [
        SyntheticVideo(width=16, height=16, noise=1.5, seed=11 + i)
        for i in range(4)
    ]
    streams = [list(cam.frames(FRAMES_PER_CAMERA)) for cam in cameras]

    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="zero",
    )
    controller = MemoryController(device)
    # Warm the zone with the first seconds of footage (the paper seeds the
    # pool with the first 30 s of the Sherbrooke video).
    warmup = [stream[i] for i in range(N_SEGMENTS // 4) for stream in streams]
    for i, frame in enumerate(warmup[:N_SEGMENTS]):
        controller.write(i * SEGMENT, frame)
    device.reset_stats()

    engine = E2NVM(
        controller,
        E2NVMConfig(n_clusters=4, hidden=(64,), pretrain_epochs=6,
                    joint_epochs=2, seed=3),
    )
    store = KVStore(engine)
    store.train()

    # Rolling buffer: store new frames, expire old ones.
    stored: list[bytes] = []
    flips = []
    for t in range(N_SEGMENTS // 4, FRAMES_PER_CAMERA):
        for cam_id, stream in enumerate(streams):
            key = b"cam%d/frame%05d" % (cam_id, t)
            before = device.stats.bits_programmed
            store.put(key, stream[t])
            flips.append(device.stats.bits_programmed - before)
            stored.append(key)
            if len(stored) > BUFFER_FRAMES:
                store.delete(stored.pop(0))

    frame_bits = SEGMENT * 8
    print(f"stored {len(flips)} frames of {SEGMENT} bytes from 4 cameras")
    print(
        f"avg bits programmed per frame: {np.mean(flips):.0f} "
        f"({np.mean(flips) / frame_bits:.1%} of frame bits)"
    )
    print(
        f"write energy: {device.stats.energy_per_write_pj / 1000:.1f} nJ/frame; "
        f"retention window: {BUFFER_FRAMES} frames"
    )
    replay = store.scan(b"cam0/", b"cam0/\xff")
    print(f"scan of camera 0's retained footage -> {len(replay)} frames")
    print(
        "a frame overwrite flips only what moved in the scene — "
        "the same redundancy a video codec exploits, spent on endurance."
    )


if __name__ == "__main__":
    main()
