"""Quickstart: a memory-aware persistent KV store in ~40 lines.

Builds a simulated Optane-like device, trains the E2-NVM placement engine
on its content, and runs a small workload through the Figure-3 KV store —
then shows the payoff by replaying the same workload with arbitrary
(content-oblivious) placement.

Run:  python examples/quickstart.py
"""

from repro import E2NVM, E2NVMConfig, MemoryController, NVMDevice
from repro.baselines import ArbitraryPlacer
from repro.core import KVStore
from repro.workloads.datasets import bits_to_values, make_image_dataset


def build_store(seed_values, segment_size=64):
    device = NVMDevice(
        capacity_bytes=len(seed_values) * 2 * segment_size,
        segment_size=segment_size,
        initial_fill="zero",
    )
    controller = MemoryController(device)
    for i, value in enumerate(seed_values):
        controller.write(i * segment_size, value)
    device.reset_stats()
    engine = E2NVM(
        controller,
        E2NVMConfig(n_clusters=6, hidden=(64,), pretrain_epochs=6,
                    joint_epochs=3, seed=7),
    )
    store = KVStore(engine)
    store.train()
    return store, device


def main() -> None:
    # Content with clusterable structure — serialized records, frames, ...
    bits, _ = make_image_dataset(600, 512, n_classes=6, noise=0.06, seed=7)
    values = bits_to_values(bits)
    seed_values, payloads = values[:200], values[200:]

    store, device = build_store(seed_values)

    # Standard KV operations (Algorithms 1 and 2 run underneath).
    for i, value in enumerate(payloads[:150]):
        store.put(b"user%04d" % (i % 50), value)
    print(f"store holds {len(store)} keys")
    print(f"get(user0001) -> {len(store.get(b'user0001'))} bytes")
    store.delete(b"user0001")
    print(f"after delete: {b'user0001' in store}")
    items = store.scan(b"user0010", b"user0015")
    print(f"scan(user0010..user0015) -> {len(items)} items")

    e2_stats = device.stats
    print(
        f"\nE2-NVM: {e2_stats.writes} writes, "
        f"{e2_stats.bits_programmed_per_write:.0f} bits programmed/write, "
        f"{e2_stats.energy_per_write_pj / 1000:.1f} nJ/write"
    )

    # The same write stream with arbitrary placement, for contrast.
    device2 = NVMDevice(
        capacity_bytes=400 * 64, segment_size=64, initial_fill="zero"
    )
    controller2 = MemoryController(device2)
    for i, value in enumerate(seed_values):
        controller2.write(i * 64, value)
    device2.reset_stats()
    placer = ArbitraryPlacer([i * 64 for i in range(200)])
    for value in payloads[:150]:
        addr = placer.choose(None)
        controller2.write(addr, value)
        placer.release(addr, None)
    arb = device2.stats
    print(
        f"arbitrary placement: {arb.bits_programmed_per_write:.0f} bits/write, "
        f"{arb.energy_per_write_pj / 1000:.1f} nJ/write"
    )
    saving = 1 - e2_stats.energy_per_write_pj / arb.energy_per_write_pj
    print(f"=> E2-NVM saves {saving:.0%} write energy on this stream")


if __name__ == "__main__":
    main()
