"""Domain example: running the YCSB core workloads against the KV store.

Loads a record set, then drives each core workload (A–F) through the
E2-NVM-backed store and prints per-workload write activity and energy —
the same protocol as the paper's Figure 11 evaluation, at laptop scale.

Run:  python examples/ycsb_run.py
"""

from repro import E2NVMConfig, MemoryController, NVMDevice
from repro.core import E2NVM, KVStore
from repro.workloads.ycsb import WORKLOADS, YCSBWorkload

SEGMENT = 128
RECORDS = 150
OPERATIONS = 400


def run_workload(name: str) -> dict:
    device = NVMDevice(
        capacity_bytes=512 * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=1,
    )
    controller = MemoryController(device)
    engine = E2NVM(
        controller,
        E2NVMConfig(n_clusters=8, hidden=(64,), pretrain_epochs=5,
                    joint_epochs=2, train_sample_limit=512, seed=1),
    )
    store = KVStore(engine)
    workload = YCSBWorkload(
        WORKLOADS[name],
        record_count=RECORDS,
        operation_count=OPERATIONS,
        value_size=SEGMENT - 16,
        seed=2,
    )
    store.train()
    for key, value in workload.load_phase():
        store.put(key, value)
    device.reset_stats()

    counts = {"read": 0, "write": 0, "scan": 0}
    for op in workload.operations():
        kind = op[0]
        if kind == "read":
            store.get(op[1])
            counts["read"] += 1
        elif kind in ("update", "insert"):
            store.put(op[1], op[2])
            counts["write"] += 1
        elif kind == "rmw":
            store.get(op[1])
            store.put(op[1], op[2])
            counts["read"] += 1
            counts["write"] += 1
        elif kind == "scan":
            store.scan(op[1], op[1] + b"\xff")
            counts["scan"] += 1
    stats = device.stats
    return {
        "ops": counts,
        "bits_per_write": stats.bits_programmed_per_write,
        "write_nj": stats.write_energy_pj / 1000.0,
        "read_nj": stats.read_energy_pj / 1000.0,
    }


def main() -> None:
    print(f"{'WL':>3} {'reads':>6} {'writes':>7} {'scans':>6} "
          f"{'bits/write':>11} {'write_nJ':>10} {'read_nJ':>9}")
    for name in "ABCDEF":
        result = run_workload(name)
        ops = result["ops"]
        print(
            f"{name:>3} {ops['read']:>6} {ops['write']:>7} {ops['scan']:>6} "
            f"{result['bits_per_write']:>11.1f} {result['write_nj']:>10.1f} "
            f"{result['read_nj']:>9.1f}"
        )
    print(
        "\nread-heavy workloads (B, C, D) barely touch the media; "
        "the write-heavy mixes (A, F) are where placement pays."
    )


if __name__ == "__main__":
    main()
