"""Operational example: the retraining lifecycle of a long-lived store.

Shows the §4.1.4 / §5.3 mechanisms working together on a store whose
content distribution drifts:

1. the retrain *policy* notices a cluster's free list starving;
2. `train_async` retrains in the background while writes continue, then
   swaps the model atomically;
3. retraining is *transactional*: a fault-injected training failure leaves
   the Dynamic Address Pool byte-identical and the old model serving, with
   the failure recorded on `engine.retrain_stats`;
4. the refreshed model is snapshotted with `save_joint` so a restart (or
   another node) can load it without retraining.

Failure semantics in one paragraph: `train()` / `train_async()` fit a fresh
candidate model off to the side and swap model + relabelled pool atomically
only on success — any exception restores the pool and keeps the old model.
`maybe_retrain()` (the `auto_retrain` path) never blocks or fails a write:
with fewer free segments than clusters the retrain is deferred and retried
later, while placement degrades to the pool's first-fit fallback.

Run:  python examples/retraining_lifecycle.py
"""

from repro import E2NVMConfig, MemoryController, NVMDevice
from repro.core import E2NVM
from repro.ml.serialization import load_joint, save_joint
from repro.testing import FaultError, FaultInjector
from repro.workloads.datasets import bits_to_values, make_image_dataset

SEGMENT = 64
N_SEGMENTS = 192


def flips_over(engine, values) -> float:
    total = 0
    for value in values:
        addr, result = engine.write(value)
        total += result.bits_programmed
        engine.release(addr)
    return total / len(values)


def main() -> None:
    # Era 1 content: one family of prototypes.
    era1, _ = make_image_dataset(400, SEGMENT * 8, n_classes=5, noise=0.06, seed=1)
    # Era 2 content: a different family — the drift.
    era2, _ = make_image_dataset(400, SEGMENT * 8, n_classes=5, noise=0.06, seed=99)
    era1_values = bits_to_values(era1)
    era2_values = bits_to_values(era2)

    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT, segment_size=SEGMENT,
        initial_fill="zero",
    )
    controller = MemoryController(device)
    for i, value in enumerate(era1_values[:N_SEGMENTS]):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    engine = E2NVM(
        controller,
        E2NVMConfig(n_clusters=5, hidden=(64,), pretrain_epochs=6,
                    joint_epochs=2, retrain_threshold=2, seed=1),
    )
    engine.train()

    print(f"era-1 stream on era-1 model: "
          f"{flips_over(engine, era1_values[N_SEGMENTS:N_SEGMENTS + 80]):.0f} "
          f"bits/write")

    # Content drifts: era-2 values arrive; the old model misplaces them.
    drift_flips = flips_over(engine, era2_values[:80])
    print(f"era-2 stream on era-1 model: {drift_flips:.0f} bits/write "
          f"(drift penalty)")

    # The policy watches the pool; here the signal is performance, so the
    # operator (us) kicks off a lazy background retrain. Writes continue.
    thread = engine.train_async()
    served = 0
    while thread.is_alive():
        addr, _ = engine.write(era2_values[(80 + served) % 400])
        engine.release(addr)
        served += 1
    thread.join()
    print(f"background retrain finished; {served} writes served during it; "
          f"model swaps atomically (retrains so far: {engine.retrain_count})")

    recovered = flips_over(engine, era2_values[120:200])
    print(f"era-2 stream on retrained model: {recovered:.0f} bits/write "
          f"({1 - recovered / drift_flips:.0%} better)")

    # Retraining is transactional: inject a training failure and show the
    # engine shrug it off — pool untouched, old model still serving.
    engine.faults = FaultInjector()
    engine.faults.arm("train.fit", error=FaultError("injected crash"), times=1)
    pool_before = engine.dap.snapshot()
    thread = engine.train_async()
    thread.join()
    assert engine.dap.snapshot() == pool_before
    assert engine.retrain_stats.failed == 1
    survived = flips_over(engine, era2_values[200:240])
    print(f"injected retrain failure absorbed: pool byte-identical, "
          f"old model still serving at {survived:.0f} bits/write")
    stats = engine.retrain_stats.as_dict()
    print("retrain stats: " + ", ".join(
        f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
        for k, v in stats.items()))

    # Snapshot the refreshed model for restarts / other nodes.
    save_joint(engine.pipeline.model, "/tmp/e2nvm-model.npz")
    restored = load_joint("/tmp/e2nvm-model.npz")
    sample = era2[0]
    assert restored.predict_one(sample) == engine.pipeline.model.predict_one(sample)
    print("model snapshot saved and verified: /tmp/e2nvm-model.npz")


if __name__ == "__main__":
    main()
