"""Figure 18: retraining latency and energy per epoch vs. segment count.

More memory segments mean more training samples per epoch, so per-epoch
retraining time and energy grow — the number that sets the retrain load
factor (§5.3: trigger retraining early enough that the new model is ready
before the old one starves).

Wall-clock per epoch is measured on the real NumPy training loop; energy
uses the FLOP-based compute model.
"""

from __future__ import annotations

import time

from common import print_table, run_once

from repro.ml.vae import VAE
from repro.profiling import ComputeCostModel
from repro.workloads.datasets import make_image_dataset

INPUT_BITS = 1024
SEGMENT_COUNTS = [128, 512, 2048, 8192]
EPOCHS = 3


def run_figure18(seed: int = 0) -> list[list]:
    compute = ComputeCostModel()
    rows = []
    for n_segments in SEGMENT_COUNTS:
        bits, _ = make_image_dataset(
            n_segments, INPUT_BITS, n_classes=16, noise=0.08, seed=seed
        )
        vae = VAE(INPUT_BITS, latent_dim=8, hidden=(64,), seed=seed)
        t0 = time.perf_counter()
        vae.fit(bits, epochs=EPOCHS, batch_size=64, val_fraction=0.0)
        wall_per_epoch = (time.perf_counter() - t0) / EPOCHS
        flops_per_epoch = compute.vae_training_flops(
            INPUT_BITS, (64,), 8, n_segments, 1
        )
        energy_mj = compute.energy_pj(flops_per_epoch) / 1e9
        rows.append([n_segments, wall_per_epoch, energy_mj])
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 18: per-epoch retraining cost vs segment count",
        ["segments", "wall_s/epoch", "energy_mJ/epoch"],
        rows,
    )


def test_fig18_training_cost(benchmark):
    rows = run_once(benchmark, run_figure18)
    report(rows)
    walls = [r[1] for r in rows]
    energies = [r[2] for r in rows]
    # Both latency and energy grow with the number of segments...
    assert walls[-1] > walls[0]
    assert energies == sorted(energies)
    # ...roughly linearly (within a factor of ~4 of proportional).
    ratio = walls[-1] / walls[0]
    expected = SEGMENT_COUNTS[-1] / SEGMENT_COUNTS[0]
    assert expected / 4 <= ratio <= expected * 4


if __name__ == "__main__":
    report(run_figure18())
