"""Device lifetime under endurance exhaustion: E2-NVM vs arbitrary placement.

Two byte-identical mortal devices (same lognormal per-cell endurance
budgets, same seed, same ECP capacity, verify-after-write on) serve the
same clustered write stream until every data segment is retired and
placement fails — the point a KV store on top would degrade to read-only:

- **naive** — arbitrary FIFO placement (prior systems' behaviour, §1) over
  the DCW controller: content-oblivious, so most writes land on a
  dissimilar segment and pulse many cells;
- **e2nvm** — the trained VAE+K-means engine: similarity placement pulses
  fewer cells per write, so the same endurance budget absorbs strictly
  more writes before the pool dies.

The benchmark records writes-to-death for both, the usable-capacity
timeline from the health manager's telemetry, and their ratio (the
lifetime gain).  Results land in ``BENCH_lifetime.json`` at the repo
root.  ``--quick`` shrinks the device and budgets for CI smoke runs;
``--check`` additionally exits non-zero unless E2-NVM's lifetime strictly
exceeds the naive one (the endurance acceptance criterion) instead of
overwriting the JSON.
"""

from __future__ import annotations

import sys
from collections import deque

from common import (
    REPO_ROOT,
    bench_arg_parser,
    bench_config,
    emit_json,
    print_table,
    values_from_bits,
)

from repro.core import E2NVM, PoolExhaustedError
from repro.nvm import (
    MemoryController,
    NVMDevice,
    SegmentRetiredError,
    WearOutConfig,
)
from repro.workloads.datasets import make_image_dataset

SEGMENT = 64
K = 6
JSON_PATH = REPO_ROOT / "BENCH_lifetime.json"
MAX_STREAM = 60_000


def _sizes(quick: bool) -> tuple[int, WearOutConfig, int]:
    """(n_segments, wear-out config, telemetry sample period)."""
    if quick:
        return 48, WearOutConfig(
            endurance_mean=6, endurance_sigma=0.25, seed=5, ecp_entries=8
        ), 25
    return 96, WearOutConfig(
        endurance_mean=12, endurance_sigma=0.25, seed=5, ecp_entries=8
    ), 200


def _make_stream(n_segments: int, seed: int = 0) -> tuple[list, list]:
    bits, _ = make_image_dataset(
        n_segments + MAX_STREAM, SEGMENT * 8, n_classes=K, noise=0.06,
        seed=seed,
    )
    values = values_from_bits(bits)
    return values[:n_segments], values[n_segments:]


def _fresh(n_segments: int, wearout: WearOutConfig, seed_values: list):
    device = NVMDevice(
        capacity_bytes=n_segments * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=1,
        wearout=wearout,
    )
    controller = MemoryController(device)
    for i, value in enumerate(seed_values):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    return controller, device


def _sample(timeline: list, writes: int, controller) -> None:
    telemetry = controller.health_manager.telemetry()
    timeline.append(
        {
            "writes": writes,
            "usable_capacity_fraction": round(
                telemetry["usable_capacity_fraction"], 4
            ),
            "segments_retired": telemetry["segments_retired"],
            "stuck_cells": telemetry["stuck_cells"],
            "corrections_active": telemetry["corrections_active"],
        }
    )


def _finish(writes: int, timeline: list, controller) -> dict:
    _sample(timeline, writes, controller)
    return {
        "writes_to_death": writes,
        "timeline": timeline,
        "final_telemetry": controller.health_manager.telemetry(),
    }


def run_naive(
    n_segments: int, wearout: WearOutConfig, seed_values, stream, every: int
) -> dict:
    controller, _ = _fresh(n_segments, wearout, seed_values)
    free = deque(i * SEGMENT for i in range(n_segments))
    timeline: list[dict] = []
    writes = 0
    for value in stream:
        while True:
            if not free:
                return _finish(writes, timeline, controller)
            addr = free.popleft()
            try:
                controller.write(addr, value)
            except SegmentRetiredError:
                continue  # dead segment: drop it, try the next
            break
        free.append(addr)
        writes += 1
        if writes % every == 0:
            _sample(timeline, writes, controller)
    raise RuntimeError(
        "naive run outlived the stream; raise MAX_STREAM or lower budgets"
    )


def run_e2nvm(
    n_segments: int, wearout: WearOutConfig, seed_values, stream, every: int
) -> dict:
    controller, _ = _fresh(n_segments, wearout, seed_values)
    engine = E2NVM(controller, bench_config(n_clusters=K, seed=0))
    engine.train()
    timeline: list[dict] = []
    writes = 0
    for value in stream:
        try:
            addr, _ = engine.write(value)
        except PoolExhaustedError:
            return _finish(writes, timeline, controller)
        engine.release(addr)
        writes += 1
        if writes % every == 0:
            _sample(timeline, writes, controller)
    raise RuntimeError(
        "e2nvm run outlived the stream; raise MAX_STREAM or lower budgets"
    )


def run_lifetime(quick: bool = False) -> dict:
    n_segments, wearout, every = _sizes(quick)
    seed_values, stream = _make_stream(n_segments)
    naive = run_naive(n_segments, wearout, seed_values, stream, every)
    e2nvm = run_e2nvm(n_segments, wearout, seed_values, stream, every)
    return {
        "quick": quick,
        "segment_size": SEGMENT,
        "n_segments": n_segments,
        "wearout": {
            "endurance_mean": wearout.endurance_mean,
            "endurance_sigma": wearout.endurance_sigma,
            "seed": wearout.seed,
            "ecp_entries": wearout.ecp_entries,
        },
        "naive": naive,
        "e2nvm": e2nvm,
        "lifetime_gain_x": round(
            e2nvm["writes_to_death"] / max(1, naive["writes_to_death"]), 2
        ),
    }


def report(result: dict) -> None:
    rows = [
        [
            name,
            result[name]["writes_to_death"],
            result[name]["final_telemetry"]["segments_retired"],
            result[name]["final_telemetry"]["stuck_cells"],
        ]
        for name in ("naive", "e2nvm")
    ]
    print_table(
        "Writes absorbed before the pool dies (same endurance budgets)",
        ["placement", "writes", "segments retired", "stuck cells"],
        rows,
    )
    print(f"lifetime gain: {result['lifetime_gain_x']}x")


def check_lifetime(result: dict) -> int:
    """0 when E2-NVM strictly outlives naive placement, 1 otherwise."""
    naive, e2nvm = (
        result["naive"]["writes_to_death"],
        result["e2nvm"]["writes_to_death"],
    )
    if e2nvm <= naive:
        print(
            f"FAIL: e2nvm died after {e2nvm} writes, naive after {naive} — "
            "memory-aware placement must strictly extend lifetime"
        )
        return 1
    print(f"[lifetime check OK: e2nvm {e2nvm} > naive {naive} writes]")
    return 0


def main() -> None:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the E2-NVM lifetime strictly exceeds naive "
        "placement (does not overwrite the committed JSON)",
    )
    args = parser.parse_args()
    result = run_lifetime(quick=args.quick)
    report(result)
    if args.check:
        sys.exit(check_lifetime(result))
    emit_json(JSON_PATH, result)


if __name__ == "__main__":
    main()
