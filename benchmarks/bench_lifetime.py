"""Device lifetime under endurance exhaustion: E2-NVM vs arbitrary placement.

Byte-identical mortal devices (same lognormal per-cell endurance
budgets, same seed, same ECP capacity, verify-after-write on) serve the
same keyed workload — a Zipfian-skewed update stream over a live working
set that is seeded up front and held for the device's whole life — until
placement fails, the point the store degrades to read-only.  Holding the
same working set in every run is what makes the rows comparable: each
delta down the table isolates exactly one mechanism.

- **naive** — arbitrary FIFO placement (prior systems' behaviour, §1) over
  the DCW controller: content-oblivious, so most writes land on a
  dissimilar segment and pulse many cells;
- **e2nvm** — the trained VAE+K-means engine: similarity placement pulses
  fewer cells per write, so the same endurance budget absorbs strictly
  more writes.  Updates release old addresses at the engine level, which
  *strands* retiring segments in quarantine (the pre-reclamation
  behaviour of PRs 4-5);
- **gc** — the same engine under a KV store with the capacity-reclamation
  subsystem on: compaction drains retiring segments and reclaims them
  into the spares pool instead of stranding them, and static wear
  leveling parks the working set's cold tail on worn free segments so
  the fresh segments they vacate absorb the hot traffic.

The benchmark records writes-to-death, the usable-capacity timeline, the
*capacity floor* (usable fraction at the read-only transition) and
*writes at full capacity* (writes absorbed before the first segment
dies) for each run, plus the headline lifetime gains.  Results land in
``BENCH_lifetime.json`` at the repo root.  ``--quick`` shrinks the
device and budgets for CI smoke runs; ``--check`` additionally exits
non-zero unless reclamation improves both axes (writes-to-death and
time-at-full-capacity, E2-NVM strictly over naive and GC strictly over
E2-NVM on lifetime without regressing first retirement) instead of
overwriting the JSON.
"""

from __future__ import annotations

import sys
from collections import deque

from common import (
    REPO_ROOT,
    bench_arg_parser,
    bench_config,
    emit_json,
    print_table,
    values_from_bits,
)

from repro.core import E2NVM, PoolExhaustedError
from repro.core.kvstore import KVStore, StoreReadOnlyError
from repro.nvm import (
    Compactor,
    MemoryController,
    NVMDevice,
    SegmentRetiredError,
    WearOutConfig,
)
from repro.workloads.datasets import make_image_dataset
from repro.workloads.zipfian import ScrambledZipfianGenerator

SEGMENT = 64
K = 6
JSON_PATH = REPO_ROOT / "BENCH_lifetime.json"
MAX_STREAM = 60_000


def _sizes(quick: bool) -> tuple[int, WearOutConfig, int]:
    """(n_segments, wear-out config, telemetry sample period)."""
    if quick:
        return 48, WearOutConfig(
            endurance_mean=6, endurance_sigma=0.25, seed=5, ecp_entries=8
        ), 25
    return 96, WearOutConfig(
        endurance_mean=12, endurance_sigma=0.25, seed=5, ecp_entries=8
    ), 200


def _make_stream(n_segments: int, seed: int = 0) -> tuple[list, list]:
    bits, _ = make_image_dataset(
        n_segments + MAX_STREAM, SEGMENT * 8, n_classes=K, noise=0.06,
        seed=seed,
    )
    values = values_from_bits(bits)
    return values[:n_segments], values[n_segments:]


def _fresh(n_segments: int, wearout: WearOutConfig, seed_values: list):
    device = NVMDevice(
        capacity_bytes=n_segments * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=1,
        wearout=wearout,
    )
    controller = MemoryController(device)
    for i, value in enumerate(seed_values):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    return controller, device


def _sample(timeline: list, writes: int, controller) -> None:
    telemetry = controller.health_manager.telemetry()
    timeline.append(
        {
            "writes": writes,
            "usable_capacity_fraction": round(
                telemetry["usable_capacity_fraction"], 4
            ),
            "segments_retired": telemetry["segments_retired"],
            "stuck_cells": telemetry["stuck_cells"],
            "corrections_active": telemetry["corrections_active"],
        }
    )


def _finish(
    writes: int, timeline: list, controller, full_until: int
) -> dict:
    _sample(timeline, writes, controller)
    telemetry = controller.health_manager.telemetry()
    return {
        "writes_to_death": writes,
        # Writes absorbed before the first segment retired — how long the
        # device ran at its full advertised capacity.
        "writes_at_full_capacity": full_until,
        # Usable fraction at the read-only transition: the capacity the
        # store still had when it could no longer place a write.
        "capacity_floor": telemetry["usable_capacity_fraction"],
        "timeline": timeline,
        "final_telemetry": telemetry,
    }


def _working_set_size(n_segments: int) -> int:
    return max(4, int(n_segments * 0.46))


def _keys(n_segments: int):
    """The shared keyed workload: seed the whole working set once (so
    the Zipfian tail exists to go cold), then skewed updates forever.
    Every run draws the identical key sequence."""
    n_keys = _working_set_size(n_segments)
    for i in range(n_keys):
        yield b"obj%04d" % i
    chooser = ScrambledZipfianGenerator(n_keys, seed=3)
    while True:
        yield b"obj%04d" % chooser.next()


def run_naive(
    n_segments: int, wearout: WearOutConfig, seed_values, stream, every: int
) -> dict:
    controller, device = _fresh(n_segments, wearout, seed_values)
    free = deque(i * SEGMENT for i in range(n_segments))
    by_key: dict[bytes, int] = {}
    timeline: list[dict] = []
    writes = full_until = 0
    for key, value in zip(_keys(n_segments), stream):
        while True:
            if not free:
                return _finish(writes, timeline, controller, full_until)
            addr = free.popleft()
            try:
                controller.write(addr, value)
            except SegmentRetiredError:
                continue  # dead segment: drop it, try the next
            break
        old = by_key.get(key)
        by_key[key] = addr
        if old is not None:
            free.append(old)
        writes += 1
        if not device.health.retired:
            full_until = writes
        if writes % every == 0:
            _sample(timeline, writes, controller)
    raise RuntimeError(
        "naive run outlived the stream; raise MAX_STREAM or lower budgets"
    )


def run_e2nvm(
    n_segments: int, wearout: WearOutConfig, seed_values, stream, every: int
) -> dict:
    """Placement-only: old addresses are released at the engine level,
    so retiring segments are quarantined and *stranded* with endurance
    left — exactly the pre-reclamation behaviour this PR removes."""
    controller, device = _fresh(n_segments, wearout, seed_values)
    engine = E2NVM(controller, bench_config(n_clusters=K, seed=0))
    engine.train()
    by_key: dict[bytes, int] = {}
    timeline: list[dict] = []
    writes = full_until = 0
    for key, value in zip(_keys(n_segments), stream):
        try:
            addr, _ = engine.write(value)
        except PoolExhaustedError:
            return _finish(writes, timeline, controller, full_until)
        old = by_key.get(key)
        by_key[key] = addr
        if old is not None:
            engine.release(old)
        writes += 1
        if not device.health.retired:
            full_until = writes
        if writes % every == 0:
            _sample(timeline, writes, controller)
    raise RuntimeError(
        "e2nvm run outlived the stream; raise MAX_STREAM or lower budgets"
    )


def run_gc(
    n_segments: int, wearout: WearOutConfig, seed_values, stream, every: int
) -> dict:
    """The reclamation run: the same engine under a KV store with
    compaction + static wear leveling interleaved like a background
    worker's rounds.

    Skew is what gives wear leveling something to do: hot keys hammer a
    few segments while the Zipfian tail goes dormant, so the compactor
    parks tail values on the most-worn free segments (which then stop
    being pulsed) and the vacated fresh segments absorb the hot traffic.
    Drained retiring segments re-enter service through the spares pool
    instead of being stranded in quarantine.
    """
    controller, device = _fresh(n_segments, wearout, seed_values)
    engine = E2NVM(controller, bench_config(n_clusters=K, seed=0))
    engine.train()
    store = KVStore(engine)
    n_keys = _working_set_size(n_segments)
    compactor = Compactor(
        store,
        relocations_per_round=8,
        swaps_per_round=1,
        # Segments only absorb a handful of writes on this endurance
        # budget, so swaps must fire while the target still survives the
        # parking write itself — a wide gap would only ever pick targets
        # one write from death.
        min_wear_gap=2,
        # Cold enough that Zipf mid-rank keys (updated every ~n_keys
        # writes) are not parked just to be dirtied again — only the
        # true tail is worth the parking write.
        dormancy_writes=2 * n_keys,
    )
    timeline: list[dict] = []
    writes = full_until = 0
    for key, value in zip(_keys(n_segments), stream):
        try:
            store.put(key, value)
        except StoreReadOnlyError:
            result = _finish(writes, timeline, controller, full_until)
            result["compactor"] = compactor.telemetry()
            result["live_keys_at_death"] = sum(
                1 for _ in store.index.items()
            )
            return result
        writes += 1
        if not device.health.retired:
            full_until = writes
        if writes % 8 == 0:
            compactor.compact_round()
        if writes % every == 0:
            _sample(timeline, writes, controller)
    raise RuntimeError(
        "gc run outlived the stream; raise MAX_STREAM or lower budgets"
    )


def run_lifetime(quick: bool = False) -> dict:
    n_segments, wearout, every = _sizes(quick)
    seed_values, stream = _make_stream(n_segments)
    naive = run_naive(n_segments, wearout, seed_values, stream, every)
    e2nvm = run_e2nvm(n_segments, wearout, seed_values, stream, every)
    gc = run_gc(n_segments, wearout, seed_values, stream, every)
    return {
        "quick": quick,
        "segment_size": SEGMENT,
        "n_segments": n_segments,
        "wearout": {
            "endurance_mean": wearout.endurance_mean,
            "endurance_sigma": wearout.endurance_sigma,
            "seed": wearout.seed,
            "ecp_entries": wearout.ecp_entries,
        },
        "naive": naive,
        "e2nvm": e2nvm,
        "gc": gc,
        # Headline: the full stack (placement + reclamation) over naive;
        # the placement-only ratio is kept for comparison against PR 4.
        "lifetime_gain_x": round(
            gc["writes_to_death"] / max(1, naive["writes_to_death"]), 2
        ),
        "no_gc_gain_x": round(
            e2nvm["writes_to_death"] / max(1, naive["writes_to_death"]), 2
        ),
    }


def report(result: dict) -> None:
    rows = [
        [
            name,
            result[name]["writes_to_death"],
            result[name]["writes_at_full_capacity"],
            round(result[name]["capacity_floor"], 4),
            result[name]["final_telemetry"]["segments_retired"],
            result[name]["final_telemetry"]["stuck_cells"],
        ]
        for name in ("naive", "e2nvm", "gc")
    ]
    print_table(
        "Writes absorbed before the pool dies (same endurance budgets)",
        [
            "placement",
            "writes",
            "full-capacity writes",
            "capacity floor",
            "segments retired",
            "stuck cells",
        ],
        rows,
    )
    print(
        f"lifetime gain: {result['lifetime_gain_x']}x with reclamation "
        f"({result['no_gc_gain_x']}x placement-only)"
    )


def check_lifetime(result: dict) -> int:
    """0 when both axes improve down the stack, 1 otherwise.

    Gates: placement strictly outlives naive; reclamation strictly
    outlives placement-only; and reclamation holds full capacity at
    least as long as placement-only (time-at-full-capacity must not
    regress when the compactor is on).
    """
    naive, e2nvm, gc = (
        result["naive"]["writes_to_death"],
        result["e2nvm"]["writes_to_death"],
        result["gc"]["writes_to_death"],
    )
    failures = []
    if e2nvm <= naive:
        failures.append(
            f"e2nvm died after {e2nvm} writes, naive after {naive} — "
            "memory-aware placement must strictly extend lifetime"
        )
    if gc <= e2nvm:
        failures.append(
            f"gc died after {gc} writes, e2nvm after {e2nvm} — "
            "reclamation must strictly extend lifetime further"
        )
    full_gc = result["gc"]["writes_at_full_capacity"]
    full_e2 = result["e2nvm"]["writes_at_full_capacity"]
    if full_gc < full_e2:
        failures.append(
            f"gc held full capacity for {full_gc} writes, e2nvm for "
            f"{full_e2} — reclamation must not hasten the first retirement"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"[lifetime check OK: gc {gc} > e2nvm {e2nvm} > naive {naive} "
        f"writes; full capacity {full_gc} >= {full_e2}]"
    )
    return 0


def main() -> None:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless lifetime and time-at-full-capacity improve "
        "down the stack (naive < e2nvm < gc; does not overwrite the "
        "committed JSON)",
    )
    args = parser.parse_args()
    result = run_lifetime(quick=args.quick)
    report(result)
    if args.check:
        sys.exit(check_lifetime(result))
    emit_json(JSON_PATH, result)


if __name__ == "__main__":
    main()
