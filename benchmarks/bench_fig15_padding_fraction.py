"""Figure 15: bit flips as the padded fraction of a video frame grows.

Train on CCTV-like frames, then feed frames with an increasing fraction of
their tail cut off; the learned (LSTM) padding regenerates the missing part
for prediction.  With 0% padding placement is best; small fractions (~10%)
lose little; large fractions degrade prediction quality and flips rise
toward the unplaced baseline.  Flips are measured over written bits only —
padded bits never reach the media.
"""

from __future__ import annotations

import numpy as np

from common import bench_config, print_table, run_once, values_from_bits

from repro.core import E2NVM
from repro.core.padding import Padder
from repro.ml.lstm import LSTMPredictor
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.video import SyntheticVideo

SEGMENT = 96
N_SEGMENTS = 160
N_TEST = 100
PAD_PERCENTS = [0, 10, 25, 50, 75]


def run_figure15(seed: int = 0) -> list[list]:
    # Four scenes (four cameras) => four content modes plus frame drift.
    videos = [
        SyntheticVideo(width=32, height=24, noise=1.0, seed=seed + i * 37)
        for i in range(4)
    ]
    per_scene = (N_SEGMENTS + N_TEST) // 4
    frames = [
        f[:SEGMENT] for video in videos for f in video.frames(per_scene)
    ]
    rng = np.random.default_rng(seed)
    rng.shuffle(frames)
    bits = np.stack(
        [np.unpackbits(np.frombuffer(f, dtype=np.uint8)) for f in frames]
    ).astype(np.float64)
    train_bits, test_bits = bits[:N_SEGMENTS], bits[N_SEGMENTS:]

    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="zero",
    )
    controller = MemoryController(device)
    for i, value in enumerate(values_from_bits(train_bits)):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    engine = E2NVM(controller, bench_config(n_clusters=4, seed=seed))
    engine.train()

    lstm = LSTMPredictor(window_bits=64, chunk_bits=8, hidden_dim=24, seed=seed)
    lstm.fit(train_bits, epochs=4, lr=5e-3)

    rows = []
    for percent in PAD_PERCENTS:
        padder = Padder(
            SEGMENT * 8, strategy="learned", position="end", seed=seed, lstm=lstm
        )
        flips = []
        for item in test_bits:
            keep = item.size - int(item.size * percent / 100.0)
            keep -= keep % 8
            cropped = item[:keep]
            padded = padder.pad(cropped)
            cluster = engine.pipeline.model.predict_one(padded)
            addr = engine.dap.get(cluster, centroids=engine.pipeline.centroids)
            old_bits = np.unpackbits(engine.controller.peek(addr, SEGMENT))
            # Written bits only: the first `keep` bits.
            flips.append(
                float(np.abs(old_bits[:keep] - cropped).sum()) / (keep / 32)
            )
            engine.dap.add(cluster, addr)
        rows.append([percent, float(np.mean(flips)), float(np.std(flips))])
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 15: flips per 32-bit word vs padded fraction (learned pad)",
        ["padded_%", "flips_per_word", "stddev"],
        rows,
    )


def test_fig15_padding_fraction(benchmark):
    rows = run_once(benchmark, run_figure15)
    report(rows)
    base = rows[0][1]
    ten = rows[1][1]
    worst = max(r[1] for r in rows[2:])
    # 0% padding is (within noise) the best case.
    assert base <= min(r[1] for r in rows) * 1.1
    # 10% padding loses little (the paper's "minimal loss" point).
    assert ten <= base * 1.15
    # Heavy padding degrades placement markedly.
    assert worst >= base * 1.15


if __name__ == "__main__":
    report(run_figure15())
