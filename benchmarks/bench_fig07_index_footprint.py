"""Figure 7: DRAM footprint and energy vs. number of indexed segments.

Indexing more memory segments costs more DRAM for the Dynamic Address Pool
but gives the placer more choices, cutting bit flips and energy; beyond a
point the energy gain saturates (the paper's 100K–1M sweet spot, scaled
down here).

The paper runs this on the PubMed DocWord collection (730 M entries); we
model its content diversity with a 64-mode synthetic content pool — the
trend only needs *more distinct content modes than a small pool can hold*,
which tiny uniform DocWord triples scaled to laptop size do not exhibit.
"""

from __future__ import annotations

from common import (
    bench_config,
    print_table,
    run_once,
    seeded_engine,
    values_from_bits,
    write_release_stream,
)

from repro.workloads.datasets import make_image_dataset

SEGMENT = 32
SEGMENT_COUNTS = [64, 256, 1024, 4096]
N_WRITES = 400
N_CONTENT_MODES = 64


def run_figure7(seed: int = 0) -> list[list]:
    stream_bits, _ = make_image_dataset(
        N_WRITES, SEGMENT * 8, n_classes=N_CONTENT_MODES, noise=0.05, seed=seed + 1
    )
    stream = values_from_bits(stream_bits)
    rows = []
    for n_segments in SEGMENT_COUNTS:
        pool_bits, _ = make_image_dataset(
            n_segments, SEGMENT * 8, n_classes=N_CONTENT_MODES, noise=0.05,
            seed=seed + 1,
        )
        engine = seeded_engine(
            values_from_bits(pool_bits),
            SEGMENT,
            config=bench_config(n_clusters=12, seed=seed),
        )
        result = write_release_stream(engine, stream)
        rows.append(
            [
                n_segments,
                engine.memory_footprint_bytes() / 1024.0,  # KiB of DRAM
                result["bits_per_write"],
                result["energy_pj_per_write"] / 1000.0,  # nJ
            ]
        )
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 7: DAP footprint and write energy vs indexed segments",
        ["segments", "dap_KiB", "bits/write", "energy_nJ/write"],
        rows,
    )


def test_fig07_index_footprint(benchmark):
    rows = run_once(benchmark, run_figure7)
    report(rows)
    footprints = [r[1] for r in rows]
    assert footprints == sorted(footprints), "DRAM grows with segments"
    # More segments -> more placement choices -> fewer flips and energy.
    assert rows[-1][2] < rows[0][2] * 0.9
    assert rows[-1][3] < rows[0][3]


if __name__ == "__main__":
    report(run_figure7())
