"""Shared helpers for the per-figure benchmark harness.

Every benchmark follows the same pattern: a pure ``run_*`` function computes
the figure's rows/series, a pytest-benchmark wrapper times one run and
prints the table, and ``python benchmarks/bench_*.py`` prints it directly.
Sizes are scaled down from the paper's testbed (the shapes, not the absolute
numbers, are the reproduction target — see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import json
import pathlib

import numpy as np

from repro.core import E2NVM
from repro.core.config import E2NVMConfig
from repro.nvm import MemoryController, NVMDevice

#: Repository root (benchmarks/ lives directly under it) — JSON artifacts
#: land here so CI can diff them against committed baselines.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def bench_arg_parser(description: str | None = None) -> argparse.ArgumentParser:
    """Argument parser with the flags every benchmark shares.

    ``--quick`` asks for a reduced-size run (fewer ops/sweep points, same
    shapes) suitable for CI smoke jobs; benchmarks read ``args.quick`` and
    scale their counts accordingly.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced-size run for CI smoke checks",
    )
    return parser


def emit_json(path: pathlib.Path | str, payload: dict) -> pathlib.Path:
    """Write a benchmark result as stable (sorted, indented) JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[wrote {path}]")
    return path


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render one figure's data as an aligned text table."""
    str_rows = [
        [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def bench_config(**overrides) -> E2NVMConfig:
    """Benchmark-scale model settings (small but non-trivial)."""
    defaults = dict(
        n_clusters=6,
        latent_dim=6,
        hidden=(64,),
        pretrain_epochs=5,
        joint_epochs=2,
        batch_size=64,
        train_sample_limit=1024,
        lstm_epochs=3,
        lstm_hidden=16,
        seed=0,
    )
    defaults.update(overrides)
    return E2NVMConfig(**defaults)


def seeded_engine(
    seed_values: list[bytes],
    segment_size: int,
    n_segments: int | None = None,
    config: E2NVMConfig | None = None,
) -> E2NVM:
    """Build a device pre-filled with ``seed_values`` and a trained engine.

    Stats are reset after seeding so measurements cover the run phase only.
    """
    n_segments = n_segments or len(seed_values)
    if len(seed_values) > n_segments:
        raise ValueError("more seed values than segments")
    device = NVMDevice(
        capacity_bytes=n_segments * segment_size,
        segment_size=segment_size,
        initial_fill="random",
        seed=1,
    )
    controller = MemoryController(device)
    for i, value in enumerate(seed_values):
        controller.write(i * segment_size, value)
    device.reset_stats()
    engine = E2NVM(controller, config or bench_config())
    engine.train()
    return engine


def write_release_stream(engine: E2NVM, values: list[bytes]) -> dict:
    """Write every value through the engine, recycling each claimed segment,
    and return per-write averages."""
    stats_before = engine.stats.snapshot()
    for value in values:
        addr, _ = engine.write(value)
        engine.release(addr)
    delta = engine.stats.snapshot() - stats_before
    return {
        "bits_per_write": delta.bits_programmed / max(1, len(values)),
        "energy_pj_per_write": delta.write_energy_pj / max(1, len(values)),
        "latency_ns_per_write": delta.write_latency_ns / max(1, len(values)),
        "writes": delta.writes,
    }


def values_from_bits(bits: np.ndarray) -> list[bytes]:
    """Pack a 0/1 matrix into one bytes value per row."""
    packed = np.packbits((np.asarray(bits) > 0.5).astype(np.uint8), axis=1)
    return [row.tobytes() for row in packed]


def run_once(benchmark, fn):
    """Time ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
