"""Figure 2: bit updates vs. the wear-leveling swap period ψ.

The underlying memory controller swaps a segment every ψ writes (§2.1).  At
ψ=1 every placement decision is immediately swapped away, so E2-NVM's
choice is destroyed (and everyone pays swap-flip overhead); at realistic ψ
(tens of writes) the software-level placement survives and wins — exactly
the argument Figure 2 makes on the Amazon Access workload.
"""

from __future__ import annotations

import numpy as np

from common import bench_config, print_table, run_once

from repro.baselines import DCW, FNW, ArbitraryPlacer, Captopril
from repro.core import E2NVM
from repro.nvm import (
    MemoryController,
    NVMDevice,
    SegmentSwapWearLeveling,
    StartGapWearLeveling,
)
from repro.workloads.records import amazon_access_like

SEGMENT = 64
N_SEGMENTS = 128
PSI_VALUES = [1, 5, 10, 25, 50, 100]
N_WRITES = 300


def _seeded_controller(seed_values, psi, scheme=None, seed=1, leveler="swap"):
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
    )
    if leveler == "swap":
        wear = SegmentSwapWearLeveling(period=psi, seed=seed)
    else:
        wear = StartGapWearLeveling(period=psi)
    controller = MemoryController(device, scheme=scheme, wear_leveling=wear)
    for i, value in enumerate(seed_values[: controller.n_segments]):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    return controller, device


def run_figure2(seed: int = 0) -> list[list]:
    records = amazon_access_like(N_SEGMENTS + N_WRITES, record_size=SEGMENT, seed=seed)
    seed_values = records[:N_SEGMENTS]
    stream = records[N_SEGMENTS:]
    rng = np.random.default_rng(seed)

    rows = []
    for psi in PSI_VALUES:
        row = [psi]
        # E2-NVM: memory-aware placement above the swapping controller.
        controller, device = _seeded_controller(seed_values, psi)
        engine = E2NVM(controller, bench_config(n_clusters=6, seed=seed))
        engine.train()
        for value in stream:
            addr, _ = engine.write(value)
            engine.release(addr)
        row.append(device.stats.bits_programmed / len(stream))

        # E2-NVM above start-gap wear leveling (rotation, not random swap).
        controller, device = _seeded_controller(
            seed_values, psi, leveler="startgap"
        )
        engine = E2NVM(controller, bench_config(n_clusters=6, seed=seed))
        engine.train()
        for value in stream:
            addr, _ = engine.write(value)
            engine.release(addr)
        row.append(device.stats.bits_programmed / len(stream))

        # Hardware RBW baselines on arbitrary (FIFO-recycled) placement.
        for scheme_factory in (DCW, FNW, Captopril):
            controller, device = _seeded_controller(
                seed_values, psi, scheme=scheme_factory()
            )
            placer = ArbitraryPlacer(
                [i * SEGMENT for i in range(N_SEGMENTS)]
            )
            for value in stream:
                addr = placer.choose(None)
                controller.write(addr, value)
                placer.release(addr, None)
            row.append(
                (device.stats.bits_programmed + device.stats.aux_bits_programmed)
                / len(stream)
            )
        rows.append(row)
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 2: avg bit updates per write vs wear-leveling period psi",
        ["psi", "E2-NVM(swap)", "E2-NVM(start-gap)", "DCW", "FNW", "Captopril"],
        rows,
    )


def test_fig02_wear_swap(benchmark):
    rows = run_once(benchmark, run_figure2)
    report(rows)
    # At realistic psi (>= 10), E2-NVM must beat every RBW baseline.
    for row in rows:
        psi, e2_swap, e2_gap, dcw, fnw, cap = row
        if psi >= 25:
            assert e2_swap < dcw and e2_swap < fnw and e2_swap < cap, f"psi={psi}"
            assert e2_gap < dcw and e2_gap < fnw and e2_gap < cap, f"psi={psi}"
    # Swapping overhead: everyone's flips drop as psi grows.
    assert rows[0][2] > rows[-1][2]


if __name__ == "__main__":
    report(run_figure2())
