"""Figure 8: SSE elbow and the energy "valley" when sweeping K.

Sweeping the cluster count on CIFAR-like content: SSE falls with K and the
elbow marks the bend; total system energy forms a valley because NVM write
energy falls with K while the *K-dependent* model energy (K-means training
refreshes amortised over the retrain interval, plus per-write centroid
comparisons) rises with K.

Deployment-scale constants are declared below: the model side is costed as
if serving ``DEPLOYMENT_SEGMENTS`` segments (the measured pool) with one retrain every
``RETRAIN_INTERVAL_WRITES`` writes (the amortisation regime the paper's
testbed operates in); the K-independent VAE training cost is reported
separately since it does not shape the valley.
"""

from __future__ import annotations

from common import (
    bench_config,
    print_table,
    run_once,
    seeded_engine,
    values_from_bits,
    write_release_stream,
)

from repro.ml.metrics import elbow_k
from repro.profiling import ComputeCostModel
from repro.workloads.datasets import make_image_dataset

SEGMENT = 64
N_SEGMENTS = 256
N_WRITES = 300
KS = [2, 4, 6, 8, 12, 16, 24]
N_CLASSES = 16  # the planted content structure the elbow should find

DEPLOYMENT_SEGMENTS = N_SEGMENTS
RETRAIN_INTERVAL_WRITES = 90_000
KMEANS_ITERS = 20
KMEANS_REFRESHES = 3
LATENT = 6


DRAM_PJ_PER_BIT = 1.0  # §1: DRAM costs ~1 pJ/b


def model_k_energy_nj_per_write(k: int, compute: ComputeCostModel) -> float:
    """K-dependent model-side energy, amortised per write.

    Training: the K-means refreshes over the pool's latents, amortised over
    the retrain interval.  Prediction: each write streams K centroids
    (float64) from DRAM for the nearest-centroid search.
    """
    train_flops = (
        2.0 * DEPLOYMENT_SEGMENTS * k * LATENT * KMEANS_ITERS * KMEANS_REFRESHES
    )
    amortised = compute.energy_pj(train_flops) / RETRAIN_INTERVAL_WRITES
    per_write_predict = k * LATENT * 64 * DRAM_PJ_PER_BIT
    return (amortised + per_write_predict) / 1000.0


def run_figure8(seed: int = 0) -> list[list]:
    pool_bits, _ = make_image_dataset(
        N_SEGMENTS, SEGMENT * 8, n_classes=N_CLASSES, noise=0.08, seed=seed
    )
    stream_bits, _ = make_image_dataset(
        N_WRITES, SEGMENT * 8, n_classes=N_CLASSES, noise=0.08, seed=seed
    )
    stream = values_from_bits(stream_bits)
    compute = ComputeCostModel()

    rows = []
    for k in KS:
        config = bench_config(n_clusters=k, latent_dim=LATENT, seed=seed)
        engine = seeded_engine(values_from_bits(pool_bits), SEGMENT, config=config)
        sse = engine.pipeline.model.sse(pool_bits)
        result = write_release_stream(engine, stream)
        nvm_nj = result["energy_pj_per_write"] / 1000.0
        model_nj = model_k_energy_nj_per_write(k, compute)
        rows.append([k, sse, nvm_nj, model_nj, nvm_nj + model_nj])
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 8: SSE elbow vs energy valley over K (per-write nJ)",
        ["K", "SSE", "nvm_nJ/w", "modelK_nJ/w", "total_nJ/w"],
        rows,
    )
    ks = [r[0] for r in rows]
    sses = [r[1] for r in rows]
    best = min(rows, key=lambda r: r[4])
    print(f"elbow K = {elbow_k(ks, sses)}; energy-valley K = {best[0]}")


def test_fig08_elbow(benchmark):
    rows = run_once(benchmark, run_figure8)
    report(rows)
    ks = [r[0] for r in rows]
    sses = [r[1] for r in rows]
    assert sses[-1] < sses[0], "SSE falls with K"
    # NVM energy falls with K; the K-dependent model energy rises.
    assert rows[-1][2] <= rows[0][2]
    assert rows[-1][3] > rows[0][3]
    # The valley: the total is lower somewhere in the middle than at both
    # extremes.
    totals = [r[4] for r in rows]
    assert min(totals[1:-1]) < totals[0]
    assert min(totals[1:-1]) < totals[-1]
    # The elbow lands near the planted class count.
    knee = elbow_k(ks, sses)
    assert 4 <= knee <= 16


if __name__ == "__main__":
    report(run_figure8())
