"""Figure 1: latency and energy vs. overwrite similarity on "Optane".

The paper allocates 256 B blocks via PMDK, initialises them with random
data, then overwrites each block with content x% different (Hamming) and
measures per-round latency and energy, observing up to ~56% energy savings
for similar content.

We reproduce the exact protocol over the simulated device + pmem layer:
PMDK transactions persist the writes, and the controller's DCW substrate
programs only differing cells.
"""

from __future__ import annotations

import numpy as np

from common import print_table, run_once

from repro.nvm import MemoryController, NVMDevice
from repro.pmem import PersistentPool

BLOCK_SIZE = 256
N_BLOCKS = 64
PERCENTS = [0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]


def flip_fraction(data: np.ndarray, fraction: float, rng) -> np.ndarray:
    """Return a copy of ``data`` with exactly ``fraction`` of bits flipped."""
    bits = np.unpackbits(data)
    n_flip = int(round(bits.size * fraction))
    positions = rng.choice(bits.size, size=n_flip, replace=False)
    bits[positions] ^= 1
    return np.packbits(bits)


def run_figure1(seed: int = 0) -> list[list]:
    rng = np.random.default_rng(seed)
    rows = []
    for percent in PERCENTS:
        device = NVMDevice(
            capacity_bytes=(N_BLOCKS + 2) * BLOCK_SIZE,
            segment_size=BLOCK_SIZE,
            initial_fill="zero",
        )
        pool = PersistentPool(MemoryController(device), log_segments=2)
        blocks = [pool.alloc() for _ in range(N_BLOCKS)]
        # Round setup: initialise all blocks with random data.
        contents = {}
        for addr in blocks:
            data = rng.integers(0, 256, BLOCK_SIZE, dtype=np.uint8)
            pool.write(addr, data.tobytes())
            contents[addr] = data
        device.reset_stats()
        # The measured round: overwrite with x%-different content through
        # PMDK-style transactions.
        for addr in blocks:
            new = flip_fraction(contents[addr], percent / 100.0, rng)
            with pool.transaction() as tx:
                tx.write(addr, new.tobytes())
        stats = device.stats
        rows.append(
            [
                percent,
                stats.write_energy_pj / N_BLOCKS / 1000.0,  # nJ per block
                stats.write_latency_ns / N_BLOCKS / 1000.0,  # us per block
            ]
        )
    # Energy saving of each point relative to the 100%-different round.
    e_max = rows[-1][1]
    return [row + [100.0 * (1.0 - row[1] / e_max)] for row in rows]


def report(rows: list[list]) -> None:
    print_table(
        "Figure 1: energy & latency vs overwrite hamming distance",
        ["diff_%", "energy_nJ/block", "latency_us/block", "saving_vs_100%"],
        rows,
    )


def test_fig01_hamming_energy(benchmark):
    rows = run_once(benchmark, run_figure1)
    report(rows)
    energies = [r[1] for r in rows]
    assert energies == sorted(energies), "energy must rise with difference"
    assert rows[0][3] >= 45.0, "identical overwrite should save ~56%"


if __name__ == "__main__":
    report(run_figure1())
