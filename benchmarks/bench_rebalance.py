"""Rebalance benchmark: drain cost and foreground impact.

Runs a weighted-ring rebalance (:mod:`repro.sharding.rebalance`) on a
durable sharded store and reports what an operator planning a live
migration needs:

- **drain throughput**: keys/s and bytes/s moved by budgeted
  copy/verify/delete batches;
- **foreground impact**: GET latency (p50/p99) sampled *during* the drain
  vs a quiesced baseline on the same store — the price of dual routing
  plus batch interleaving;
- **movement efficiency**: bytes copied vs the theoretical minimum (the
  summed sizes of exactly the keys whose owner changed, from
  ``HashRing.diff``).  The foreground load is GET-only, so any ratio
  above 1.0 is protocol overhead, not overwrite churn.

Results land in ``BENCH_rebalance.json``.  ``--quick`` shrinks the store
for CI; ``--check`` exits non-zero unless the drain completed, nothing
was lost, and every byte moved was necessary (ratio == 1.0).
"""

from __future__ import annotations

import random
import sys
import tempfile
import time
from pathlib import Path

from common import REPO_ROOT, bench_arg_parser, emit_json, print_table

from repro.core.config import fast_test_config
from repro.sharding import ShardedKVStore

SEED = 7
JSON_PATH = REPO_ROOT / "BENCH_rebalance.json"
WEIGHTS = (2.0, 1.0, 0.5)


def _sizes(quick: bool) -> tuple[int, int, int]:
    """(n_keys, value_len, foreground_gets_per_batch)."""
    if quick:
        return 96, 48, 8
    return 240, 64, 16


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def run_rebalance(quick: bool = False) -> dict:
    n_keys, value_len, gets_per_batch = _sizes(quick)
    rng = random.Random(SEED)
    root = Path(tempfile.mkdtemp()) / "store"
    store = ShardedKVStore.create(
        root,
        3,
        segment_size=128,
        n_segments_per_shard=max(96, n_keys * 2),
        config=fast_test_config(),
        log_segments=4,
        key_capacity=32,
        ring_seed=SEED,
        vnodes=32,
        base_seed=SEED + 7,
    )
    oracle = {}
    for i in range(n_keys):
        key = f"key-{i:05d}".encode()
        value = bytes(rng.randrange(256) for _ in range(value_len))
        store.put(key, value)
        oracle[key] = value
    keys = sorted(oracle)

    def sample_gets(n: int) -> list[float]:
        out = []
        for key in rng.sample(keys, min(n, len(keys))):
            t0 = time.perf_counter()
            value = store.get(key)
            out.append((time.perf_counter() - t0) * 1e6)
            assert value == oracle[key]
        return out

    quiesced = sample_gets(max(64, gets_per_batch * 8))

    rebalancer = store.begin_rebalance(weights=list(WEIGHTS), batch_size=16)
    min_bytes = sum(
        len(value)
        for key, value in oracle.items()
        if rebalancer.diff.covers(key)
    )
    during: list[float] = []
    t_drain = time.perf_counter()
    while True:
        report = rebalancer.drain()
        if report.done:
            break
        during.extend(sample_gets(gets_per_batch))
    drain_s = time.perf_counter() - t_drain
    rebalancer.finalize()

    lost = sum(1 for key in keys if store.get(key) != oracle[key])
    status = rebalancer.status()
    store.close()
    import shutil

    shutil.rmtree(root.parent, ignore_errors=True)

    moved = status["keys_copied"]
    return {
        "quick": quick,
        "n_keys": n_keys,
        "value_len": value_len,
        "weights": list(WEIGHTS),
        "moved_keys": moved,
        "moved_fraction_space": status["moved_fraction"],
        "drain_s": drain_s,
        "drain_keys_per_s": moved / drain_s if drain_s else 0.0,
        "drain_bytes_per_s": (
            status["bytes_copied"] / drain_s if drain_s else 0.0
        ),
        "bytes_copied": status["bytes_copied"],
        "bytes_min": min_bytes,
        "bytes_ratio": (
            status["bytes_copied"] / min_bytes if min_bytes else 1.0
        ),
        "get_p50_quiesced_us": _percentile(quiesced, 0.50),
        "get_p99_quiesced_us": _percentile(quiesced, 0.99),
        "get_p50_during_us": _percentile(during, 0.50),
        "get_p99_during_us": _percentile(during, 0.99),
        "lost_keys": lost,
        "drained": True,
    }


def print_rebalance(result: dict) -> None:
    print_table(
        "rebalance: drain throughput",
        ["metric", "value"],
        [
            ["keys moved", result["moved_keys"]],
            ["moved fraction (hash space)", result["moved_fraction_space"]],
            ["drain (s)", result["drain_s"]],
            ["keys/s", result["drain_keys_per_s"]],
            ["bytes/s", result["drain_bytes_per_s"]],
        ],
    )
    print_table(
        "rebalance: foreground GET latency (us)",
        ["percentile", "quiesced", "during drain"],
        [
            [
                "p50",
                result["get_p50_quiesced_us"],
                result["get_p50_during_us"],
            ],
            [
                "p99",
                result["get_p99_quiesced_us"],
                result["get_p99_during_us"],
            ],
        ],
    )
    print_table(
        "rebalance: movement efficiency",
        ["metric", "value"],
        [
            ["bytes copied", result["bytes_copied"]],
            ["theoretical minimum", result["bytes_min"]],
            ["ratio", result["bytes_ratio"]],
            ["lost keys", result["lost_keys"]],
        ],
    )


def check_rebalance(result: dict) -> int:
    """Acceptance gate: complete, lossless, no wasted movement."""
    failures = []
    if not result["drained"]:
        failures.append("drain did not complete")
    if result["lost_keys"]:
        failures.append(f"{result['lost_keys']} key(s) unreadable after")
    if result["moved_keys"] < 1:
        failures.append("no key moved — benchmark inert")
    if result["bytes_ratio"] > 1.0:
        failures.append(
            f"bytes ratio {result['bytes_ratio']:.3f} > 1.0 — keys were "
            "copied more than once under a GET-only foreground"
        )
    if failures:
        for failure in failures:
            print(f"[rebalance check FAILED: {failure}]")
        return 1
    print(
        f"[rebalance check OK: {result['moved_keys']} keys in "
        f"{result['drain_s']:.2f}s, bytes ratio "
        f"{result['bytes_ratio']:.2f}, 0 lost]"
    )
    return 0


def main() -> None:
    parser = bench_arg_parser(
        "Rebalance: drain throughput, foreground impact, move efficiency"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the drain contract holds "
        "(instead of writing JSON)",
    )
    args = parser.parse_args()
    result = run_rebalance(quick=args.quick)
    print_rebalance(result)
    if args.check:
        sys.exit(check_rebalance(result))
    emit_json(JSON_PATH, result)


if __name__ == "__main__":
    main()
