"""Hot write-path throughput: per-op vs batched vs multi-threaded vs cached.

Measures the placement write path after the lock-narrowing, batched
inference, and two-tier fast placement overhauls:

- **single-thread ops/s** — per-op ``engine.write`` + ``engine.release``
  (the steady-state PUT/recycle stream every figure benchmark drives);
- **4-thread ops/s** — the same loop on one shared engine.  Forward passes
  run *outside* the swap lock, so concurrent writers overlap inside BLAS
  (which drops the GIL) and only serialise on the short DAP pop.  Skipped
  (annotated) when ``cpu_count == 1`` — on a 1-core box the number would
  only measure lock-contention overhead, not scaling;
- **batched ops/s** — ``engine.write_many`` + ``release_many`` for several
  batch sizes: one stacked forward pass, one DAP claim, one vectorised
  device write per batch;
- **p50/p99 place latency** — per-call ``engine.place`` wall time;
- **cached** — the same loops on a Zipfian-skewed trace (YCSB-style: a
  small working set re-written constantly) against an engine with the
  fingerprint memo cache and the distilled student placer enabled, plus
  the fast layer's telemetry.

Results land in ``BENCH_throughput.json`` at the repo root.  ``--quick``
shrinks op counts (same shapes) for CI smoke runs; ``--check`` compares
against the committed JSON instead of overwriting it and exits non-zero
when: single-thread ops/s regresses >30%; multi-thread ops/s regresses
>30% (only compared like-for-like — both runs measured it on the same
``cpu_count``); the cached-path p50 place latency exceeds its ceiling; or
the memo cache reports zero hits on the skewed trace.
"""

from __future__ import annotations

import os
import sys
import threading
import time

import numpy as np

from common import (
    REPO_ROOT,
    bench_arg_parser,
    bench_config,
    emit_json,
    print_table,
    seeded_engine,
)
from repro.workloads.zipfian import ZipfianGenerator

SEGMENT_SIZE = 1024
N_SEGMENTS = 256
N_THREADS = 4
BATCH_SIZES = (8, 32, 128)
#: Zipfian skew of the cached-path trace (YCSB's default theta) over a
#: working set small enough to live entirely in the memo cache.
ZIPF_THETA = 0.99
WORKING_SET = 64
JSON_PATH = REPO_ROOT / "BENCH_throughput.json"
#: ``--check`` fails when single-thread (or like-for-like multi-thread)
#: ops/s drops below this fraction of the committed baseline.
REGRESSION_FLOOR = 0.70
#: ``--check`` fails when the cached-path p50 place latency exceeds this —
#: 1/5 of the 308 µs teacher-path p50 the fast layer was built to beat.
CACHED_P50_CEILING_US = 61.6


def _make_values(n: int, seed: int = 11) -> list[bytes]:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(n, SEGMENT_SIZE), dtype=np.uint8)
    return [row.tobytes() for row in data]


def _make_skewed_values(n: int, seed: int = 23) -> list[bytes]:
    """A Zipfian re-write trace over a small working set of values."""
    pool = _make_values(WORKING_SET, seed=seed)
    gen = ZipfianGenerator(WORKING_SET, theta=ZIPF_THETA, seed=seed)
    return [pool[gen.next()] for _ in range(n)]


def _build_engine(cached: bool = False):
    # Full-segment values: padding is a no-op on this path, so the per-op
    # cost is prediction + claim + differential write, not padding.  The
    # ``cached`` engine turns the student tier on (the cache tier is on by
    # default); the plain engine measures the teacher-only path.
    config = bench_config(
        hidden=(64,),
        train_sample_limit=N_SEGMENTS,
        ones_fraction_refresh_writes=0,  # no mid-run content re-sampling
        fastpath_cache_size=4096 if cached else 0,
        student_enabled=cached,
        student_confidence=0.6,
    )
    return seeded_engine(
        _make_values(N_SEGMENTS, seed=3), SEGMENT_SIZE, config=config
    )


def _run_single(engine, values: list[bytes]) -> float:
    start = time.perf_counter()
    for value in values:
        addr, _ = engine.write(value)
        engine.release(addr)
    return len(values) / (time.perf_counter() - start)


def _run_threaded(engine, values: list[bytes], n_threads: int) -> float:
    chunks = [values[i::n_threads] for i in range(n_threads)]
    barrier = threading.Barrier(n_threads + 1)

    def worker(chunk: list[bytes]) -> None:
        barrier.wait()
        for value in chunk:
            addr, _ = engine.write(value)
            engine.release(addr)

    threads = [
        threading.Thread(target=worker, args=(chunk,)) for chunk in chunks
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return len(values) / (time.perf_counter() - start)


def _run_batched(engine, values: list[bytes], batch_size: int) -> float:
    start = time.perf_counter()
    done = 0
    while done < len(values):
        batch = values[done : done + batch_size]
        placed = engine.write_many(batch)
        engine.release_many([addr for addr, _ in placed])
        done += len(batch)
    return len(values) / (time.perf_counter() - start)


def _place_latencies(engine, values: list[bytes]) -> np.ndarray:
    out = np.empty(len(values))
    for i, value in enumerate(values):
        start = time.perf_counter()
        addr = engine.place(value)
        out[i] = time.perf_counter() - start
        engine.release(addr)  # restore the pool, untimed
    return out * 1e6  # µs


def _run_multi_thread_section(engine, values: list[bytes], single: float):
    """The 4-thread loop, or an annotated skip on a 1-core box where the
    number would be lock-contention noise presented as a scaling result."""
    cpu_count = os.cpu_count() or 1
    if cpu_count <= 1:
        return {
            "threads": N_THREADS,
            "skipped": True,
            "reason": "cpu_count == 1: thread scaling is unmeasurable",
        }
    threaded = _run_threaded(engine, values, N_THREADS)
    return {
        "threads": N_THREADS,
        "ops_per_s": round(threaded, 1),
        "scaling_x": round(threaded / single, 2),
    }


def _run_cached_section(quick: bool) -> dict:
    """The skewed-trace run against the cache+student engine."""
    n_ops = 400 if quick else 2000
    n_latency = 100 if quick else 500
    engine = _build_engine(cached=True)
    values = _make_skewed_values(n_ops)

    single = _run_single(engine, values)
    batched = {b: _run_batched(engine, values, b) for b in BATCH_SIZES}
    latencies = _place_latencies(engine, values[:n_latency])
    return {
        "working_set": WORKING_SET,
        "zipf_theta": ZIPF_THETA,
        "single_thread_ops_per_s": round(single, 1),
        "batched_ops_per_s": {
            str(b): round(ops, 1) for b, ops in batched.items()
        },
        "place_latency_us": {
            "p50": round(float(np.percentile(latencies, 50)), 1),
            "p99": round(float(np.percentile(latencies, 99)), 1),
        },
        "telemetry": engine.placement_telemetry(),
    }


def run_throughput(quick: bool = False) -> dict:
    n_ops = 400 if quick else 2000
    n_latency = 100 if quick else 500
    engine = _build_engine()
    values = _make_values(n_ops, seed=17)

    single = _run_single(engine, values)
    multi = _run_multi_thread_section(engine, values, single)
    batched = {b: _run_batched(engine, values, b) for b in BATCH_SIZES}
    latencies = _place_latencies(engine, values[:n_latency])

    return {
        "segment_size": SEGMENT_SIZE,
        "n_segments": N_SEGMENTS,
        "n_ops": n_ops,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "single_thread_ops_per_s": round(single, 1),
        "multi_thread": multi,
        "batched_ops_per_s": {
            str(b): round(ops, 1) for b, ops in batched.items()
        },
        "batched_speedup_32x": round(batched[32] / single, 2),
        "place_latency_us": {
            "p50": round(float(np.percentile(latencies, 50)), 1),
            "p99": round(float(np.percentile(latencies, 99)), 1),
        },
        "mean_prediction_latency_us": round(
            engine.pipeline.mean_prediction_latency_us, 1
        ),
        "cached": _run_cached_section(quick),
    }


def report(result: dict) -> None:
    rows = [
        ["single-thread write+release", result["single_thread_ops_per_s"]],
    ]
    multi = result["multi_thread"]
    if multi.get("skipped"):
        rows.append([f"{multi['threads']}-thread ({multi['reason']})", "-"])
    else:
        rows.append(
            [
                f"{multi['threads']}-thread write+release "
                f"({multi['scaling_x']}x)",
                multi["ops_per_s"],
            ]
        )
    for batch, ops in result["batched_ops_per_s"].items():
        rows.append([f"batched write_many (B={batch})", ops])
    cached = result["cached"]
    rows.append(
        [
            f"cached single (zipf {cached['zipf_theta']})",
            cached["single_thread_ops_per_s"],
        ]
    )
    for batch, ops in cached["batched_ops_per_s"].items():
        rows.append([f"cached batched (B={batch})", ops])
    print_table("Write-path throughput", ["path", "ops/s"], rows)
    lat = result["place_latency_us"]
    clat = cached["place_latency_us"]
    tel = cached["telemetry"]
    print(
        f"place latency: p50 {lat['p50']} us, p99 {lat['p99']} us; "
        f"mean prediction {result['mean_prediction_latency_us']} us"
    )
    print(
        f"cached place latency: p50 {clat['p50']} us, p99 {clat['p99']} us; "
        f"cache hits {tel['cache_hits']}, misses {tel['cache_misses']}, "
        f"student served {tel['student_served']}, "
        f"teacher served {tel['teacher_served']}"
    )


def _check_multi_thread(baseline: dict, result: dict) -> int:
    """Like-for-like multi-thread comparison: both runs must have measured
    it (not skipped) on the same core count, else the check is vacuous."""
    base_mt = baseline.get("multi_thread", {})
    cur_mt = result.get("multi_thread", {})
    if "ops_per_s" not in base_mt or "ops_per_s" not in cur_mt:
        print("[multi-thread check skipped: not measured in both runs]")
        return 0
    if baseline.get("cpu_count") != result.get("cpu_count"):
        print(
            f"[multi-thread check skipped: baseline ran on "
            f"{baseline.get('cpu_count')} cores, this run on "
            f"{result.get('cpu_count')}]"
        )
        return 0
    floor = base_mt["ops_per_s"] * REGRESSION_FLOOR
    if cur_mt["ops_per_s"] < floor:
        print(
            f"REGRESSION: multi-thread {cur_mt['ops_per_s']:.0f} ops/s is "
            f"below {REGRESSION_FLOOR:.0%} of the committed "
            f"{base_mt['ops_per_s']:.0f} ops/s"
        )
        return 1
    print(
        f"[multi-thread check OK: {cur_mt['ops_per_s']:.0f} ops/s vs "
        f"committed {base_mt['ops_per_s']:.0f}]"
    )
    return 0


def _check_cached(result: dict) -> int:
    """Gate the cache-hit path: p50 latency ceiling and non-zero hits."""
    cached = result.get("cached")
    if not cached:
        print("REGRESSION: no cached section in this run")
        return 1
    failures = 0
    p50 = cached["place_latency_us"]["p50"]
    if p50 > CACHED_P50_CEILING_US:
        print(
            f"REGRESSION: cached-path p50 place latency {p50:.1f} us "
            f"exceeds the {CACHED_P50_CEILING_US} us ceiling"
        )
        failures += 1
    hits = cached["telemetry"]["cache_hits"]
    if hits == 0:
        print(
            "REGRESSION: memo cache reported zero hits on the skewed "
            "trace — the cache tier is not being consulted"
        )
        failures += 1
    if not failures:
        print(
            f"[cached check OK: p50 {p50:.1f} us "
            f"(ceiling {CACHED_P50_CEILING_US}), {hits} cache hits]"
        )
    return failures


def check_regression(result: dict) -> int:
    """Compare against the committed baseline; 0 = OK, 1 = regressed."""
    if not JSON_PATH.exists():
        print(f"[no committed baseline at {JSON_PATH}; skipping check]")
        return 0
    import json

    baseline = json.loads(JSON_PATH.read_text())
    failures = 0
    floor = baseline["single_thread_ops_per_s"] * REGRESSION_FLOOR
    current = result["single_thread_ops_per_s"]
    if current < floor:
        print(
            f"REGRESSION: single-thread {current:.0f} ops/s is below "
            f"{REGRESSION_FLOOR:.0%} of the committed "
            f"{baseline['single_thread_ops_per_s']:.0f} ops/s"
        )
        failures += 1
    else:
        print(
            f"[perf check OK: {current:.0f} ops/s vs committed "
            f"{baseline['single_thread_ops_per_s']:.0f} ops/s, "
            f"floor {floor:.0f}]"
        )
    failures += _check_multi_thread(baseline, result)
    failures += _check_cached(result)
    return 1 if failures else 0


def main() -> None:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed BENCH_throughput.json instead "
        "of overwriting it; exit 1 on a >30%% throughput regression, a "
        "cached-path p50 over its ceiling, or zero cache hits on the "
        "skewed trace",
    )
    args = parser.parse_args()
    result = run_throughput(quick=args.quick)
    report(result)
    if args.check:
        sys.exit(check_regression(result))
    emit_json(JSON_PATH, result)


if __name__ == "__main__":
    main()
