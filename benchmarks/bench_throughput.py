"""Hot write-path throughput: per-op vs batched vs sharded vs cached.

Measures the placement write path after the lock-narrowing, batched
inference, two-tier fast placement, and sharded multi-channel overhauls:

- **single-thread ops/s** — per-op ``engine.write`` + ``engine.release``
  (the steady-state PUT/recycle stream every figure benchmark drives);
- **batched ops/s** — ``engine.write_many`` + ``release_many`` for several
  batch sizes: one stacked forward pass, one DAP claim, one vectorised
  device write per batch;
- **sharded ops/s** — batched overwrite PUTs against a
  ``ShardedKVStore`` at 1/2/4 shards on the *process* backend (one worker
  process per shard, shared-memory media).  Shards place, encode and
  write on real cores concurrently — this is the section that escapes the
  GIL.  Aggregate ops/s plus per-shard put-latency p50/p99; the scaling
  gate only arms on runners with enough cores (a 1-core box measures IPC
  overhead, not scaling, and is annotated as such);
- **p50/p99 place latency** — per-call ``engine.place`` wall time;
- **cached** — the same loops on a Zipfian-skewed trace (YCSB-style: a
  small working set re-written constantly) against an engine with the
  fingerprint memo cache and the distilled student placer enabled, plus
  the fast layer's telemetry.

Results land in ``BENCH_throughput.json`` at the repo root.  ``--quick``
shrinks op counts (same shapes) for CI smoke runs; ``--check`` compares
against the committed JSON instead of overwriting it and exits non-zero
when: single-thread ops/s regresses >30%; sharded aggregate ops/s
regresses >30% (only compared like-for-like — both runs on the same
``cpu_count`` and backend); 4-shard scaling falls below its floor on a
multi-core runner; the cached-path p50 place latency exceeds its ceiling;
the memo cache reports zero hits on the skewed trace; or the student
placer serves zero requests there (a dormant student is dead weight on
the fast path).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from common import (
    REPO_ROOT,
    bench_arg_parser,
    bench_config,
    emit_json,
    print_table,
    seeded_engine,
)
from repro.sharding import ShardedKVStore
from repro.workloads.zipfian import ZipfianGenerator

SEGMENT_SIZE = 1024
N_SEGMENTS = 256
BATCH_SIZES = (8, 32, 128)
#: Zipfian skew of the cached-path trace (YCSB's default theta) over a
#: working set small enough to live entirely in the memo cache.
ZIPF_THETA = 0.99
WORKING_SET = 64
JSON_PATH = REPO_ROOT / "BENCH_throughput.json"
#: ``--check`` fails when single-thread (or like-for-like sharded) ops/s
#: drops below this fraction of the committed baseline.
REGRESSION_FLOOR = 0.70
#: ``--check`` fails when the cached-path p50 place latency exceeds this —
#: 1/5 of the 308 µs teacher-path p50 the fast layer was built to beat.
CACHED_P50_CEILING_US = 61.6

#: Sharded-section sweep: aggregate throughput at each shard count.
SHARD_COUNTS = (1, 2, 4)
#: Smaller per-shard geometry than the single-engine sections — the sweep
#: builds (and trains) 1+2+4 = 7 full vertical slices per run.
SHARD_SEGMENT_SIZE = 256
SHARD_N_SEGMENTS = 128
#: Cores needed before the 4-shard scaling gate arms; below this the
#: process backend runs its workers on shared cores and the ratio
#: measures scheduling, not scaling.
SHARD_SCALING_MIN_CPUS = 4
#: Required 4-shard vs 1-shard aggregate speedup on a multi-core runner.
SHARD_SCALING_FLOOR = 2.5


def _make_values(n: int, seed: int = 11) -> list[bytes]:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(n, SEGMENT_SIZE), dtype=np.uint8)
    return [row.tobytes() for row in data]


def _make_skewed_values(n: int, seed: int = 23) -> list[bytes]:
    """A Zipfian re-write trace over a small working set of values."""
    pool = _make_values(WORKING_SET, seed=seed)
    gen = ZipfianGenerator(WORKING_SET, theta=ZIPF_THETA, seed=seed)
    return [pool[gen.next()] for _ in range(n)]


def _build_engine(cached: bool = False):
    # Full-segment values: padding is a no-op on this path, so the per-op
    # cost is prediction + claim + differential write, not padding.  The
    # ``cached`` engine turns the student tier on (the cache tier is on by
    # default); the plain engine measures the teacher-only path.
    config = bench_config(
        hidden=(64,),
        train_sample_limit=N_SEGMENTS,
        ones_fraction_refresh_writes=0,  # no mid-run content re-sampling
        fastpath_cache_size=4096 if cached else 0,
        student_enabled=cached,
        student_confidence=0.6,
    )
    return seeded_engine(
        _make_values(N_SEGMENTS, seed=3), SEGMENT_SIZE, config=config
    )


def _run_single(engine, values: list[bytes]) -> float:
    start = time.perf_counter()
    for value in values:
        addr, _ = engine.write(value)
        engine.release(addr)
    return len(values) / (time.perf_counter() - start)


def _run_batched(engine, values: list[bytes], batch_size: int) -> float:
    start = time.perf_counter()
    done = 0
    while done < len(values):
        batch = values[done : done + batch_size]
        placed = engine.write_many(batch)
        engine.release_many([addr for addr, _ in placed])
        done += len(batch)
    return len(values) / (time.perf_counter() - start)


def _place_latencies(engine, values: list[bytes]) -> np.ndarray:
    out = np.empty(len(values))
    for i, value in enumerate(values):
        start = time.perf_counter()
        addr = engine.place(value)
        out[i] = time.perf_counter() - start
        engine.release(addr)  # restore the pool, untimed
    return out * 1e6  # µs


def _sharded_config():
    return bench_config(
        hidden=(32,),
        train_sample_limit=SHARD_N_SEGMENTS,
        ones_fraction_refresh_writes=0,
        fastpath_cache_size=1024,
        student_enabled=True,
        student_confidence=0.6,
    )


def _run_one_shard_count(n_shards: int, n_ops: int, n_latency: int) -> dict:
    """Aggregate batched-PUT throughput and per-shard put latency for one
    shard count on the process backend."""
    store = ShardedKVStore.create_volatile(
        n_shards,
        segment_size=SHARD_SEGMENT_SIZE,
        n_segments_per_shard=SHARD_N_SEGMENTS,
        config=_sharded_config(),
        backend="process",
    )
    try:
        rng = np.random.default_rng(29 + n_shards)
        # Steady-state overwrite stream: a fixed key population (well under
        # per-shard capacity) rewritten with fresh full-segment values, so
        # every PUT exercises place + claim + differential write and the
        # old address recycles.
        keys = [b"bench-%05d" % i for i in range(32 * n_shards)]
        def fresh_items(count):
            data = rng.integers(
                0, 256, size=(count, SHARD_SEGMENT_SIZE), dtype=np.uint8
            )
            return [
                (keys[i % len(keys)], data[i].tobytes())
                for i in range(count)
            ]

        store.put_many(fresh_items(len(keys)))  # warm: populate every key

        items = fresh_items(n_ops)
        start = time.perf_counter()
        for done in range(0, n_ops, 32):
            store.put_many(items[done : done + 32])
        aggregate = n_ops / (time.perf_counter() - start)

        by_shard: dict[int, list[float]] = {}
        for key, value in fresh_items(n_latency):
            t0 = time.perf_counter()
            store.put(key, value)
            by_shard.setdefault(store.shard_of(key), []).append(
                (time.perf_counter() - t0) * 1e6
            )
        latency = {
            str(shard): {
                "p50": round(float(np.percentile(lats, 50)), 1),
                "p99": round(float(np.percentile(lats, 99)), 1),
                "n": len(lats),
            }
            for shard, lats in sorted(by_shard.items())
        }
        return {
            "aggregate_ops_per_s": round(aggregate, 1),
            "put_latency_us": latency,
        }
    finally:
        store.close()


def _run_sharded_section(quick: bool) -> dict:
    """The 1/2/4-shard process-backend sweep."""
    cpu_count = os.cpu_count() or 1
    n_ops = 240 if quick else 1200
    n_latency = 64 if quick else 240
    out: dict = {
        "backend": "process",
        "segment_size": SHARD_SEGMENT_SIZE,
        "n_segments_per_shard": SHARD_N_SEGMENTS,
        "cpu_count": cpu_count,
        "scaling_measurable": cpu_count >= SHARD_SCALING_MIN_CPUS,
        "shards": {},
    }
    for n_shards in SHARD_COUNTS:
        out["shards"][str(n_shards)] = _run_one_shard_count(
            n_shards, n_ops, n_latency
        )
    first = out["shards"][str(SHARD_COUNTS[0])]["aggregate_ops_per_s"]
    last = out["shards"][str(SHARD_COUNTS[-1])]["aggregate_ops_per_s"]
    out["scaling_x_4"] = round(last / first, 2)
    if not out["scaling_measurable"]:
        out["scaling_note"] = (
            f"cpu_count {cpu_count} < {SHARD_SCALING_MIN_CPUS}: shard "
            "workers share cores, ratio is not a scaling measurement"
        )
    return out


def _run_cached_section(quick: bool) -> dict:
    """The skewed-trace run against the cache+student engine."""
    n_ops = 400 if quick else 2000
    n_latency = 100 if quick else 500
    engine = _build_engine(cached=True)
    values = _make_skewed_values(n_ops)

    single = _run_single(engine, values)
    batched = {b: _run_batched(engine, values, b) for b in BATCH_SIZES}
    latencies = _place_latencies(engine, values[:n_latency])
    return {
        "working_set": WORKING_SET,
        "zipf_theta": ZIPF_THETA,
        "single_thread_ops_per_s": round(single, 1),
        "batched_ops_per_s": {
            str(b): round(ops, 1) for b, ops in batched.items()
        },
        "place_latency_us": {
            "p50": round(float(np.percentile(latencies, 50)), 1),
            "p99": round(float(np.percentile(latencies, 99)), 1),
        },
        "telemetry": engine.placement_telemetry(),
    }


def run_throughput(quick: bool = False) -> dict:
    n_ops = 400 if quick else 2000
    n_latency = 100 if quick else 500
    engine = _build_engine()
    values = _make_values(n_ops, seed=17)

    single = _run_single(engine, values)
    batched = {b: _run_batched(engine, values, b) for b in BATCH_SIZES}
    latencies = _place_latencies(engine, values[:n_latency])

    return {
        "segment_size": SEGMENT_SIZE,
        "n_segments": N_SEGMENTS,
        "n_ops": n_ops,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "single_thread_ops_per_s": round(single, 1),
        "sharded": _run_sharded_section(quick),
        "batched_ops_per_s": {
            str(b): round(ops, 1) for b, ops in batched.items()
        },
        "batched_speedup_32x": round(batched[32] / single, 2),
        "place_latency_us": {
            "p50": round(float(np.percentile(latencies, 50)), 1),
            "p99": round(float(np.percentile(latencies, 99)), 1),
        },
        "mean_prediction_latency_us": round(
            engine.pipeline.mean_prediction_latency_us, 1
        ),
        "cached": _run_cached_section(quick),
    }


def report(result: dict) -> None:
    rows = [
        ["single-thread write+release", result["single_thread_ops_per_s"]],
    ]
    sharded = result["sharded"]
    for n_shards, entry in sharded["shards"].items():
        rows.append(
            [
                f"sharded put_many ({n_shards} shard(s), "
                f"{sharded['backend']})",
                entry["aggregate_ops_per_s"],
            ]
        )
    for batch, ops in result["batched_ops_per_s"].items():
        rows.append([f"batched write_many (B={batch})", ops])
    cached = result["cached"]
    rows.append(
        [
            f"cached single (zipf {cached['zipf_theta']})",
            cached["single_thread_ops_per_s"],
        ]
    )
    for batch, ops in cached["batched_ops_per_s"].items():
        rows.append([f"cached batched (B={batch})", ops])
    print_table("Write-path throughput", ["path", "ops/s"], rows)
    note = sharded.get("scaling_note")
    print(
        f"sharded scaling 4-vs-1: {sharded['scaling_x_4']}x"
        + (f" [{note}]" if note else "")
    )
    lat = result["place_latency_us"]
    clat = cached["place_latency_us"]
    tel = cached["telemetry"]
    print(
        f"place latency: p50 {lat['p50']} us, p99 {lat['p99']} us; "
        f"mean prediction {result['mean_prediction_latency_us']} us"
    )
    print(
        f"cached place latency: p50 {clat['p50']} us, p99 {clat['p99']} us; "
        f"cache hits {tel['cache_hits']}, misses {tel['cache_misses']}, "
        f"student served {tel['student_served']}, "
        f"teacher served {tel['teacher_served']}"
    )


def _check_sharded(baseline: dict, result: dict) -> int:
    """Gate the sharded section.

    Two checks, each only where it is meaningful:

    - **scaling**: on a runner with at least ``SHARD_SCALING_MIN_CPUS``
      cores, 4-shard aggregate ops/s must reach ``SHARD_SCALING_FLOOR``x
      the 1-shard number *within this run* — no baseline needed.  On
      smaller runners it is skipped with the reason printed.
    - **regression**: like-for-like vs the committed baseline (same
      ``cpu_count``, same backend, baseline has a sharded section): each
      shard count's aggregate ops/s must stay above ``REGRESSION_FLOOR``.
    """
    cur = result.get("sharded")
    if not cur:
        print("REGRESSION: no sharded section in this run")
        return 1
    failures = 0
    if cur["scaling_measurable"]:
        if cur["scaling_x_4"] < SHARD_SCALING_FLOOR:
            print(
                f"REGRESSION: 4-shard aggregate scaling {cur['scaling_x_4']}x "
                f"is below the {SHARD_SCALING_FLOOR}x floor on a "
                f"{cur['cpu_count']}-core runner"
            )
            failures += 1
        else:
            print(
                f"[sharded scaling OK: {cur['scaling_x_4']}x at 4 shards]"
            )
    else:
        print(
            f"[sharded scaling gate skipped: cpu_count {cur['cpu_count']} "
            f"< {SHARD_SCALING_MIN_CPUS}]"
        )
    base = baseline.get("sharded")
    if (
        not base
        or base.get("cpu_count") != cur.get("cpu_count")
        or base.get("backend") != cur.get("backend")
    ):
        print("[sharded regression check skipped: no like-for-like baseline]")
        return failures
    for n_shards, cur_entry in cur["shards"].items():
        base_entry = base["shards"].get(n_shards)
        if not base_entry:
            continue
        floor = base_entry["aggregate_ops_per_s"] * REGRESSION_FLOOR
        if cur_entry["aggregate_ops_per_s"] < floor:
            print(
                f"REGRESSION: {n_shards}-shard aggregate "
                f"{cur_entry['aggregate_ops_per_s']:.0f} ops/s is below "
                f"{REGRESSION_FLOOR:.0%} of the committed "
                f"{base_entry['aggregate_ops_per_s']:.0f} ops/s"
            )
            failures += 1
        else:
            print(
                f"[sharded {n_shards}-shard OK: "
                f"{cur_entry['aggregate_ops_per_s']:.0f} ops/s vs committed "
                f"{base_entry['aggregate_ops_per_s']:.0f}]"
            )
    return failures


def _check_cached(result: dict) -> int:
    """Gate the fast-path tiers: p50 latency ceiling, non-zero cache hits,
    and a non-dormant student."""
    cached = result.get("cached")
    if not cached:
        print("REGRESSION: no cached section in this run")
        return 1
    failures = 0
    p50 = cached["place_latency_us"]["p50"]
    if p50 > CACHED_P50_CEILING_US:
        print(
            f"REGRESSION: cached-path p50 place latency {p50:.1f} us "
            f"exceeds the {CACHED_P50_CEILING_US} us ceiling"
        )
        failures += 1
    hits = cached["telemetry"]["cache_hits"]
    if hits == 0:
        print(
            "REGRESSION: memo cache reported zero hits on the skewed "
            "trace — the cache tier is not being consulted"
        )
        failures += 1
    served = cached["telemetry"]["student_served"]
    if served == 0:
        print(
            "REGRESSION: the student placer served zero requests on the "
            "skewed trace — tier 2 is dormant (agreement "
            f"{cached['telemetry']['student_train_agreement']:.2f} vs "
            "confidence gate)"
        )
        failures += 1
    if not failures:
        print(
            f"[cached check OK: p50 {p50:.1f} us "
            f"(ceiling {CACHED_P50_CEILING_US}), {hits} cache hits, "
            f"student served {served}]"
        )
    return failures


def check_regression(result: dict) -> int:
    """Compare against the committed baseline; 0 = OK, 1 = regressed."""
    if not JSON_PATH.exists():
        print(f"[no committed baseline at {JSON_PATH}; skipping check]")
        return 0
    import json

    baseline = json.loads(JSON_PATH.read_text())
    failures = 0
    floor = baseline["single_thread_ops_per_s"] * REGRESSION_FLOOR
    current = result["single_thread_ops_per_s"]
    if current < floor:
        print(
            f"REGRESSION: single-thread {current:.0f} ops/s is below "
            f"{REGRESSION_FLOOR:.0%} of the committed "
            f"{baseline['single_thread_ops_per_s']:.0f} ops/s"
        )
        failures += 1
    else:
        print(
            f"[perf check OK: {current:.0f} ops/s vs committed "
            f"{baseline['single_thread_ops_per_s']:.0f} ops/s, "
            f"floor {floor:.0f}]"
        )
    failures += _check_sharded(baseline, result)
    failures += _check_cached(result)
    return 1 if failures else 0


def main() -> None:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed BENCH_throughput.json instead "
        "of overwriting it; exit 1 on a >30%% throughput regression "
        "(single-thread or like-for-like sharded), 4-shard scaling below "
        f"{SHARD_SCALING_FLOOR}x on a multi-core runner, a cached-path "
        "p50 over its ceiling, zero cache hits, or a dormant student on "
        "the skewed trace",
    )
    args = parser.parse_args()
    result = run_throughput(quick=args.quick)
    report(result)
    if args.check:
        sys.exit(check_regression(result))
    emit_json(JSON_PATH, result)


if __name__ == "__main__":
    main()
