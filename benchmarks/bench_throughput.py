"""Hot write-path throughput: per-op vs batched vs multi-threaded.

Measures the placement write path after the lock-narrowing and
batched-inference overhaul:

- **single-thread ops/s** — per-op ``engine.write`` + ``engine.release``
  (the steady-state PUT/recycle stream every figure benchmark drives);
- **4-thread ops/s** — the same loop on one shared engine.  Forward passes
  run *outside* the swap lock, so concurrent writers overlap inside BLAS
  (which drops the GIL) and only serialise on the short DAP pop;
- **batched ops/s** — ``engine.write_many`` + ``release_many`` for several
  batch sizes: one stacked forward pass, one DAP claim, one vectorised
  device write per batch;
- **p50/p99 place latency** — per-call ``engine.place`` wall time.

Results land in ``BENCH_throughput.json`` at the repo root.  ``--quick``
shrinks op counts (same shapes) for CI smoke runs; ``--check`` compares
the single-thread ops/s against the committed JSON and exits non-zero on a
>30% regression instead of overwriting it.
"""

from __future__ import annotations

import os
import sys
import threading
import time

import numpy as np

from common import (
    REPO_ROOT,
    bench_arg_parser,
    bench_config,
    emit_json,
    print_table,
    seeded_engine,
)

SEGMENT_SIZE = 1024
N_SEGMENTS = 256
N_THREADS = 4
BATCH_SIZES = (8, 32, 128)
JSON_PATH = REPO_ROOT / "BENCH_throughput.json"
#: ``--check`` fails when single-thread ops/s drops below this fraction of
#: the committed baseline.
REGRESSION_FLOOR = 0.70


def _make_values(n: int, seed: int = 11) -> list[bytes]:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(n, SEGMENT_SIZE), dtype=np.uint8)
    return [row.tobytes() for row in data]


def _build_engine():
    # Full-segment values: padding is a no-op on this path, so the per-op
    # cost is prediction + claim + differential write, not padding.
    config = bench_config(
        hidden=(64,),
        train_sample_limit=N_SEGMENTS,
        ones_fraction_refresh_writes=0,  # no mid-run content re-sampling
    )
    return seeded_engine(
        _make_values(N_SEGMENTS, seed=3), SEGMENT_SIZE, config=config
    )


def _run_single(engine, values: list[bytes]) -> float:
    start = time.perf_counter()
    for value in values:
        addr, _ = engine.write(value)
        engine.release(addr)
    return len(values) / (time.perf_counter() - start)


def _run_threaded(engine, values: list[bytes], n_threads: int) -> float:
    chunks = [values[i::n_threads] for i in range(n_threads)]
    barrier = threading.Barrier(n_threads + 1)

    def worker(chunk: list[bytes]) -> None:
        barrier.wait()
        for value in chunk:
            addr, _ = engine.write(value)
            engine.release(addr)

    threads = [
        threading.Thread(target=worker, args=(chunk,)) for chunk in chunks
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return len(values) / (time.perf_counter() - start)


def _run_batched(engine, values: list[bytes], batch_size: int) -> float:
    start = time.perf_counter()
    done = 0
    while done < len(values):
        batch = values[done : done + batch_size]
        placed = engine.write_many(batch)
        engine.release_many([addr for addr, _ in placed])
        done += len(batch)
    return len(values) / (time.perf_counter() - start)


def _place_latencies(engine, values: list[bytes]) -> np.ndarray:
    out = np.empty(len(values))
    for i, value in enumerate(values):
        start = time.perf_counter()
        addr = engine.place(value)
        out[i] = time.perf_counter() - start
        engine.release(addr)  # restore the pool, untimed
    return out * 1e6  # µs


def run_throughput(quick: bool = False) -> dict:
    n_ops = 400 if quick else 2000
    n_latency = 100 if quick else 500
    engine = _build_engine()
    values = _make_values(n_ops, seed=17)

    single = _run_single(engine, values)
    threaded = _run_threaded(engine, values, N_THREADS)
    batched = {b: _run_batched(engine, values, b) for b in BATCH_SIZES}
    latencies = _place_latencies(engine, values[:n_latency])

    return {
        "segment_size": SEGMENT_SIZE,
        "n_segments": N_SEGMENTS,
        "n_ops": n_ops,
        "quick": quick,
        # Thread scaling is bounded by the core count: on a 1-core box the
        # 4-thread number only measures lock-contention overhead.
        "cpu_count": os.cpu_count(),
        "single_thread_ops_per_s": round(single, 1),
        "multi_thread": {
            "threads": N_THREADS,
            "ops_per_s": round(threaded, 1),
            "scaling_x": round(threaded / single, 2),
        },
        "batched_ops_per_s": {
            str(b): round(ops, 1) for b, ops in batched.items()
        },
        "batched_speedup_32x": round(batched[32] / single, 2),
        "place_latency_us": {
            "p50": round(float(np.percentile(latencies, 50)), 1),
            "p99": round(float(np.percentile(latencies, 99)), 1),
        },
        "mean_prediction_latency_us": round(
            engine.pipeline.mean_prediction_latency_us, 1
        ),
    }


def report(result: dict) -> None:
    rows = [
        ["single-thread write+release", result["single_thread_ops_per_s"]],
        [
            f"{result['multi_thread']['threads']}-thread write+release "
            f"({result['multi_thread']['scaling_x']}x)",
            result["multi_thread"]["ops_per_s"],
        ],
    ]
    for batch, ops in result["batched_ops_per_s"].items():
        rows.append([f"batched write_many (B={batch})", ops])
    print_table("Write-path throughput", ["path", "ops/s"], rows)
    lat = result["place_latency_us"]
    print(
        f"place latency: p50 {lat['p50']} us, p99 {lat['p99']} us; "
        f"mean prediction {result['mean_prediction_latency_us']} us"
    )


def check_regression(result: dict) -> int:
    """Compare against the committed baseline; 0 = OK, 1 = regressed."""
    if not JSON_PATH.exists():
        print(f"[no committed baseline at {JSON_PATH}; skipping check]")
        return 0
    import json

    baseline = json.loads(JSON_PATH.read_text())
    floor = baseline["single_thread_ops_per_s"] * REGRESSION_FLOOR
    current = result["single_thread_ops_per_s"]
    if current < floor:
        print(
            f"REGRESSION: single-thread {current:.0f} ops/s is below "
            f"{REGRESSION_FLOOR:.0%} of the committed "
            f"{baseline['single_thread_ops_per_s']:.0f} ops/s"
        )
        return 1
    print(
        f"[perf check OK: {current:.0f} ops/s vs committed "
        f"{baseline['single_thread_ops_per_s']:.0f} ops/s, "
        f"floor {floor:.0f}]"
    )
    return 0


def main() -> None:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed BENCH_throughput.json instead "
        "of overwriting it; exit 1 on a >30%% single-thread regression",
    )
    args = parser.parse_args()
    result = run_throughput(quick=args.quick)
    report(result)
    if args.check:
        sys.exit(check_regression(result))
    emit_json(JSON_PATH, result)


if __name__ == "__main__":
    main()
