"""Ablation: the full placement-strategy spectrum on one stream.

Orders every placement strategy the paper discusses on the same clustered
write stream: arbitrary FIFO (prior systems' behaviour), PNW K-means [26],
Hamming-Tree [28, 30] (exact nearest-neighbour over free contents), E2-NVM
(VAE + K-means + first fit), and the exhaustive best-fit oracle — with the
per-write placement latency each pays.
"""

from __future__ import annotations

import time

import numpy as np

from common import bench_config, print_table, run_once, values_from_bits

from repro.baselines import (
    ArbitraryPlacer,
    DataConPlacer,
    HammingTreePlacer,
    PNWPlacer,
)
from repro.baselines.naive import BestFitPlacer
from repro.core import E2NVM
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.datasets import make_image_dataset

SEGMENT = 64
N_SEGMENTS = 160
N_WRITES = 200
K = 8


def fresh_controller(seed_values, seed=1):
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
    )
    controller = MemoryController(device)
    for i, value in enumerate(seed_values):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    return controller, device


def drive_placer(controller, device, placer, stream, needs_bits: bool):
    t0 = time.perf_counter()
    for value in stream:
        bits = (
            np.unpackbits(np.frombuffer(value, dtype=np.uint8))
            if needs_bits
            else None
        )
        addr = placer.choose(bits)
        controller.write(addr, value)
        placer.release(
            addr,
            np.unpackbits(controller.peek(addr, SEGMENT)) if needs_bits else None,
        )
    elapsed = time.perf_counter() - t0
    return (
        device.stats.bits_programmed / len(stream),
        elapsed / len(stream) * 1e6,
    )


def run_ablation(seed: int = 0) -> list[list]:
    bits, _ = make_image_dataset(
        N_SEGMENTS + N_WRITES, SEGMENT * 8, n_classes=K, noise=0.06, seed=seed
    )
    values = values_from_bits(bits)
    seed_values, stream = values[:N_SEGMENTS], values[N_SEGMENTS:]
    rows = []

    controller, device = fresh_controller(seed_values)
    placer = ArbitraryPlacer([i * SEGMENT for i in range(N_SEGMENTS)])
    rows.append(["arbitrary FIFO", *drive_placer(controller, device, placer, stream, False)])

    controller, device = fresh_controller(seed_values)
    contents = {
        i * SEGMENT: np.unpackbits(controller.peek(i * SEGMENT, SEGMENT))
        for i in range(N_SEGMENTS)
    }
    datacon = DataConPlacer().fit(list(contents), contents)
    rows.append(
        ["DATACON (density)", *drive_placer(controller, device, datacon, stream, True)]
    )

    controller, device = fresh_controller(seed_values)
    contents = {
        i * SEGMENT: np.unpackbits(controller.peek(i * SEGMENT, SEGMENT))
        for i in range(N_SEGMENTS)
    }
    pnw = PNWPlacer(K, pca_components=12, seed=seed).fit(list(contents), contents)
    rows.append(["PNW (PCA+K-means)", *drive_placer(controller, device, pnw, stream, True)])

    controller, device = fresh_controller(seed_values)
    contents = {
        i * SEGMENT: np.unpackbits(controller.peek(i * SEGMENT, SEGMENT))
        for i in range(N_SEGMENTS)
    }
    tree = HammingTreePlacer(list(contents), contents)
    rows.append(["Hamming-Tree", *drive_placer(controller, device, tree, stream, True)])

    controller, device = fresh_controller(seed_values)
    engine = E2NVM(controller, bench_config(n_clusters=K, seed=seed))
    engine.train()
    t0 = time.perf_counter()
    for value in stream:
        addr, _ = engine.write(value)
        engine.release(addr)
    elapsed = time.perf_counter() - t0
    rows.append(
        [
            "E2-NVM (VAE+K-means)",
            device.stats.bits_programmed / len(stream),
            elapsed / len(stream) * 1e6,
        ]
    )

    controller, device = fresh_controller(seed_values)
    contents = {
        i * SEGMENT: np.unpackbits(controller.peek(i * SEGMENT, SEGMENT))
        for i in range(N_SEGMENTS)
    }
    best = BestFitPlacer(list(contents), contents)
    rows.append(["best-fit oracle", *drive_placer(controller, device, best, stream, True)])
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Ablation: placement strategies on one clustered stream",
        ["placer", "bits/write", "us/write"],
        rows,
    )


def test_ablation_placers(benchmark):
    rows = run_once(benchmark, run_ablation)
    report(rows)
    by_name = {r[0]: r for r in rows}
    arbitrary = by_name["arbitrary FIFO"][1]
    oracle = by_name["best-fit oracle"][1]
    # Every memory-aware strategy beats arbitrary placement.
    for name in ("PNW (PCA+K-means)", "Hamming-Tree", "E2-NVM (VAE+K-means)"):
        assert by_name[name][1] < arbitrary, name
    # Coarse density bucketing (DATACON) sits between arbitrary and the
    # clustering strategies.
    assert by_name["DATACON (density)"][1] <= arbitrary
    assert by_name["DATACON (density)"][1] >= by_name["E2-NVM (VAE+K-means)"][1] * 0.9
    # Nothing meaningfully beats the greedy best-fit "oracle" (greedy
    # sequences are not globally optimal, so exact-NN search with different
    # tie-breaking may edge it by a hair).
    for name, bits, _ in rows:
        assert bits >= oracle * 0.95, name
    # Hamming-Tree (exact NN) places at least as well as the clusterers.
    assert by_name["Hamming-Tree"][1] <= by_name["E2-NVM (VAE+K-means)"][1] * 1.1


if __name__ == "__main__":
    report(run_ablation())
