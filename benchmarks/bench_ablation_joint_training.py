"""Ablation: joint VAE+K-means training vs. sequential VAE then K-means.

§3.2 claims that integrating the K-means loss into VAE training ("jointly
train cluster label assignment and learning of suitable features") beats
clustering a latent space trained for reconstruction alone.  This bench
trains both variants on the same data and compares latent-space clustering
quality (SSE) and end-to-end placement flips.
"""

from __future__ import annotations

import numpy as np

from common import print_table, run_once

from repro.ml.joint import JointVAEKMeans
from repro.ml.kmeans import KMeans
from repro.workloads.datasets import make_image_dataset

INPUT_BITS = 512
N_TRAIN = 400
N_TEST = 150
K = 12


def placement_flips(train_bits, test_bits, predict_fn) -> float:
    labels = predict_fn(train_bits)
    pools: dict[int, list[int]] = {}
    for idx, label in enumerate(labels):
        pools.setdefault(int(label), []).append(idx)
    fallback = max(pools, key=lambda c: len(pools[c]))
    cursor: dict[int, int] = {}
    total = 0.0
    for row in test_bits:
        cluster = int(predict_fn(row[None, :])[0])
        if cluster not in pools:
            cluster = fallback
        pool = pools[cluster]
        pick = pool[cursor.get(cluster, 0) % len(pool)]
        cursor[cluster] = cursor.get(cluster, 0) + 1
        total += float(np.abs(train_bits[pick] - row).sum())
    return total / len(test_bits)


def normalized_sse(model, X) -> float:
    """SSE divided by the latent total sum of squares (scale-invariant:
    raw SSE is not comparable across differently-scaled latent spaces)."""
    Z = model.transform(X)
    total = float(((Z - Z.mean(axis=0)) ** 2).sum())
    return model.sse(X) / max(total, 1e-12)


def purity(pred, truth, k) -> float:
    total = 0
    for c in range(k):
        mask = pred == c
        if mask.any():
            total += np.bincount(truth[mask]).max()
    return total / len(truth)


def run_ablation(seed: int = 0) -> list[list]:
    bits, labels = make_image_dataset(
        N_TRAIN + N_TEST, INPUT_BITS, n_classes=12, noise=0.1, seed=seed
    )
    train, test = bits[:N_TRAIN], bits[N_TRAIN:]
    truth = labels[:N_TRAIN]
    rows = []

    # Joint training (the paper's design).
    joint = JointVAEKMeans(
        INPUT_BITS, K, latent_dim=8, hidden=(64,),
        pretrain_epochs=8, joint_epochs=4, lr=3e-3, gamma=0.5, seed=seed,
    ).fit(train)
    rows.append(
        [
            "joint (paper)",
            normalized_sse(joint, train),
            purity(joint.predict(train), truth, K),
            placement_flips(train, test, joint.predict),
        ]
    )

    # Sequential: same VAE budget, zero joint epochs, K-means afterwards.
    sequential = JointVAEKMeans(
        INPUT_BITS, K, latent_dim=8, hidden=(64,),
        pretrain_epochs=12, joint_epochs=0, lr=3e-3, seed=seed,
    )
    sequential.vae.fit(
        train, epochs=sequential.pretrain_epochs,
        batch_size=sequential.batch_size, lr=sequential.lr,
    )
    sequential.kmeans = KMeans(K, seed=seed).fit(sequential.vae.transform(train))
    rows.append(
        [
            "sequential (VAE->KM)",
            normalized_sse(sequential, train),
            purity(sequential.predict(train), truth, K),
            placement_flips(train, test, sequential.predict),
        ]
    )
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Ablation: joint vs sequential VAE+K-means",
        ["variant", "normalized SSE", "cluster purity", "placement flips"],
        rows,
    )


def test_ablation_joint_training(benchmark):
    rows = run_once(benchmark, run_ablation)
    report(rows)
    joint, sequential = rows
    # The joint clustering loss tightens the latent clusters (relative to
    # the latent space's own spread).
    assert joint[1] <= sequential[1] * 1.05
    # Clustering quality and placement quality do not regress.
    assert joint[2] >= sequential[2] * 0.95
    assert joint[3] <= sequential[3] * 1.1


if __name__ == "__main__":
    report(run_ablation())
