"""Figure 13: updated-bit ratio and energy vs. (segment size, pool size).

Over a mixture of all the real-like workloads, the paper observes that
energy and the updated-bits ratio grow with the ratio of segment size to
pool size: more (smaller) segments per pool mean more placement choices,
hence fewer flips per written bit.
"""

from __future__ import annotations

import numpy as np

from common import bench_config, print_table, run_once, seeded_engine, write_release_stream

from repro.workloads.datasets import make_image_dataset
from repro.workloads.records import amazon_access_like
from repro.workloads.video import SyntheticVideo

SEGMENT_SIZES = [32, 64, 128]
POOL_BYTES = [16 * 1024, 64 * 1024]
N_WRITES = 300


def mixed_values(size: int, count: int, seed: int) -> list[bytes]:
    """A mixture of the paper's real-workload families, cut to ``size``."""
    video = SyntheticVideo(width=32, height=32, seed=seed)
    frames = [f[:size] for f in video.frames(count // 3 + 1)]
    amazon = amazon_access_like(count // 3 + 1, record_size=size, seed=seed)
    image_bits, _ = make_image_dataset(
        count // 3 + 1, size * 8, n_classes=8, noise=0.08, seed=seed
    )
    images = [
        np.packbits(row.astype(np.uint8)).tobytes() for row in image_bits
    ]
    mixture = []
    for triple in zip(frames, amazon, images):
        mixture.extend(triple)
    return mixture[:count]


def run_figure13(seed: int = 0) -> list[list]:
    rows = []
    for pool_bytes in POOL_BYTES:
        for segment in SEGMENT_SIZES:
            n_segments = pool_bytes // segment
            both = mixed_values(segment, n_segments + N_WRITES, seed)
            seed_values, stream = both[:n_segments], both[n_segments:]
            engine = seeded_engine(
                seed_values,
                segment,
                config=bench_config(n_clusters=8, seed=seed),
            )
            result = write_release_stream(engine, stream)
            ratio = result["bits_per_write"] / (segment * 8)
            rows.append(
                [
                    pool_bytes // 1024,
                    segment,
                    segment / pool_bytes,
                    ratio,
                    result["energy_pj_per_write"] / 1000.0,
                ]
            )
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 13: updated-bit ratio & energy vs segment/pool sizes",
        ["pool_KiB", "segment_B", "seg/pool", "updated_ratio", "energy_nJ/write"],
        rows,
    )


def test_fig13_pool_segment_grid(benchmark):
    rows = run_once(benchmark, run_figure13)
    report(rows)
    # Within each pool size, smaller segments give a lower updated ratio.
    for pool_kib in sorted({r[0] for r in rows}):
        group = sorted(r for r in rows if r[0] == pool_kib)
        ratios = [r[3] for r in sorted(group, key=lambda r: r[1])]
        assert ratios[0] <= ratios[-1] * 1.05, f"pool={pool_kib}KiB"
    # For the same segment size, the bigger pool is at least as good.
    for segment in SEGMENT_SIZES:
        group = sorted(
            (r for r in rows if r[1] == segment), key=lambda r: r[0]
        )
        assert group[-1][3] <= group[0][3] * 1.1, f"segment={segment}"


if __name__ == "__main__":
    report(run_figure13())
