"""Figure 10: bits updated per access and prediction latency vs. everyone.

The paper compares E2-NVM against the RBW schemes (DCW [52], MinShift [37],
FNW [10], Captopril [23]) and the clustering-based PNW [26] across textual
and multimedia datasets, sweeping the cluster count k from 1 to 30:

- at k=1, DCW, PNW and E2-NVM coincide (no clustering benefit);
- increasing k helps only the clustering methods;
- E2-NVM ends up to ~3.2x better than PNW and ~4.2x better than the RBW
  baselines, at the price of a higher prediction latency than PNW
  (two-model prediction).
"""

from __future__ import annotations

import numpy as np

from common import bench_config, print_table, run_once, values_from_bits

from repro.baselines import (
    DCW,
    FMR,
    FNW,
    FPC,
    ArbitraryPlacer,
    Captopril,
    MinShift,
    PNWPlacer,
)
from repro.core import E2NVM
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.datasets import make_image_dataset
from repro.workloads.records import amazon_access_like
from repro.workloads.video import SyntheticVideo

SEGMENT = 64
N_SEGMENTS = 192
N_WRITES = 300
K_VALUES = [1, 5, 15, 30]


def dataset_streams(seed: int) -> dict:
    image_bits, _ = make_image_dataset(
        N_SEGMENTS + N_WRITES, SEGMENT * 8, n_classes=12, noise=0.06, seed=seed
    )
    amazon = amazon_access_like(
        N_SEGMENTS + N_WRITES, record_size=SEGMENT, n_users=12, seed=seed
    )
    # Multimedia: six surveillance scenes, shuffled (the paper's CCTV sets).
    videos = [
        SyntheticVideo(width=32, height=16, noise=1.5, seed=seed + i * 13)
        for i in range(6)
    ]
    per_scene = (N_SEGMENTS + N_WRITES) // 6 + 1
    frames = [
        f[:SEGMENT] for video in videos for f in video.frames(per_scene)
    ]
    np.random.default_rng(seed).shuffle(frames)
    return {
        "mnist-like": values_from_bits(image_bits),
        "amazon-like": amazon,
        "cctv-like": frames[: N_SEGMENTS + N_WRITES],
    }


def fresh_controller(seed_values, scheme=None, seed=1):
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
    )
    controller = MemoryController(device, scheme=scheme)
    for i, value in enumerate(seed_values):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    return controller, device


def run_rbw(seed_values, stream, scheme) -> float:
    controller, device = fresh_controller(seed_values, scheme=scheme)
    placer = ArbitraryPlacer([i * SEGMENT for i in range(N_SEGMENTS)])
    for value in stream:
        addr = placer.choose(None)
        controller.write(addr, value)
        placer.release(addr, None)
    return (
        device.stats.bits_programmed + device.stats.aux_bits_programmed
    ) / len(stream)


def run_pnw(seed_values, stream, k, seed) -> tuple[float, float]:
    import time

    controller, device = fresh_controller(seed_values)
    contents = {
        i * SEGMENT: np.unpackbits(controller.peek(i * SEGMENT, SEGMENT))
        for i in range(N_SEGMENTS)
    }
    placer = PNWPlacer(k, pca_components=min(16, k + 4), seed=seed)
    placer.fit(list(contents), contents)
    latency = 0.0
    for value in stream:
        bits = np.unpackbits(np.frombuffer(value, dtype=np.uint8))
        t0 = time.perf_counter()
        addr = placer.choose(bits)
        latency += time.perf_counter() - t0
        controller.write(addr, value)
        placer.release(addr, np.unpackbits(controller.peek(addr, SEGMENT)))
    return device.stats.bits_programmed / len(stream), latency / len(stream) * 1e6


def run_e2nvm(seed_values, stream, k, seed) -> tuple[float, float]:
    controller, device = fresh_controller(seed_values)
    engine = E2NVM(
        controller,
        bench_config(
            n_clusters=k, hidden=(128,), latent_dim=10,
            pretrain_epochs=10, joint_epochs=3, lr=3e-3, seed=seed,
        ),
    )
    engine.train()
    for value in stream:
        addr, _ = engine.write(value)
        engine.release(addr)
    return (
        device.stats.bits_programmed / len(stream),
        engine.pipeline.mean_prediction_latency_us,
    )


def run_figure10(seed: int = 0) -> dict:
    results = {}
    for name, values in dataset_streams(seed).items():
        seed_values, stream = values[:N_SEGMENTS], values[N_SEGMENTS:]
        rbw = {
            scheme.name: run_rbw(seed_values, stream, scheme)
            for scheme in (DCW(), MinShift(), FNW(), Captopril(), FMR(), FPC())
        }
        rows = []
        for k in K_VALUES:
            if k == 1:
                # k=1 degenerates to DCW for the clustering methods.
                rows.append([k, rbw["dcw"], 0.0, rbw["dcw"], 0.0] + list(rbw.values()))
                continue
            pnw_bits, pnw_lat = run_pnw(seed_values, stream, k, seed)
            e2_bits, e2_lat = run_e2nvm(seed_values, stream, k, seed)
            rows.append([k, pnw_bits, pnw_lat, e2_bits, e2_lat] + list(rbw.values()))
        results[name] = rows
    return results


def report(results: dict) -> None:
    for name, rows in results.items():
        print_table(
            f"Figure 10 ({name}): bits updated per write and prediction latency",
            [
                "k",
                "PNW_bits", "PNW_lat_us", "E2NVM_bits", "E2NVM_lat_us",
                "DCW", "MinShift", "FNW", "Captopril", "FMR", "FPC",
            ],
            rows,
        )


def test_fig10_baseline_comparison(benchmark):
    results = run_once(benchmark, run_figure10)
    report(results)
    for name, rows in results.items():
        best = rows[-1]  # k=30
        dcw = best[5]
        # Clustering methods improve with k and beat the RBW baselines.
        assert best[3] < dcw, name
        assert best[3] <= best[1] * 1.15, f"{name}: E2-NVM should match PNW"
        # k=1 coincides with DCW for the clustering methods.
        assert rows[0][1] == rows[0][5] == rows[0][3]
        # Increasing k helps E2-NVM.
        assert rows[-1][3] < rows[0][3]


if __name__ == "__main__":
    report(run_figure10())
