"""Figure 19: wear-leveling CDFs under E2-NVM (k=30).

Protocol (§5.3): warm the data zone with a MNIST+Fashion mixture, stream
~4 updates per word with interleaved deletes, then plot (a) the CDF of the
maximum number of times each address was written and (b) the CDF of per-bit
programming counts.  The paper reads off P(address written <= 10) ~ 81% and
P(bit programmed <= 7) ~ 98% — i.e. E2-NVM spreads both writes and flips
across the zone instead of concentrating them.
"""

from __future__ import annotations

import numpy as np

from common import bench_config, print_table, run_once, values_from_bits

from repro.core import E2NVM
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.datasets import fashion_mnist_like, mnist_like

SEGMENT = 64
N_SEGMENTS = 256
N_WRITES = 1024  # = 4 updates per segment on average
K = 30


def run_figure19(seed: int = 0):
    width = SEGMENT * 8
    mnist = values_from_bits(mnist_like(N_SEGMENTS + N_WRITES, n_pixels=width, seed=seed)[0])
    fashion = values_from_bits(
        fashion_mnist_like(N_SEGMENTS + N_WRITES, n_pixels=width, seed=seed + 1)[0]
    )
    rng = np.random.default_rng(seed)
    mixture = [
        (mnist if rng.random() < 0.5 else fashion)[i]
        for i in range(N_SEGMENTS + N_WRITES)
    ]
    seed_values, stream = mixture[:N_SEGMENTS], mixture[N_SEGMENTS:]

    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="zero",
        track_bit_wear=True,
    )
    controller = MemoryController(device)
    for i, value in enumerate(seed_values):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    device.segment_write_count[:] = 0
    device.bit_wear[:] = 0

    engine = E2NVM(controller, bench_config(n_clusters=K, seed=seed))
    engine.train()
    live: list[int] = []
    for value in stream:
        addr, _ = engine.write(value)
        live.append(addr)
        # Deletes make space, as in the paper's protocol.
        if len(live) > N_SEGMENTS // 4:
            engine.release(live.pop(0))
    return (
        device.segment_write_count.copy(),
        device.bit_wear.copy(),
    )


def cdf_points(values: np.ndarray, thresholds) -> list[tuple[int, float]]:
    values = np.asarray(values)
    return [
        (t, float((values <= t).mean())) for t in thresholds
    ]


def report(result) -> None:
    seg_writes, bit_wear = result
    rows = [
        [t, p]
        for t, p in cdf_points(seg_writes, [1, 2, 5, 10, 15, 20, 30])
    ]
    print_table(
        "Figure 19a: CDF of per-address write counts",
        ["writes<=", "P"],
        rows,
    )
    rows = [
        [t, p] for t, p in cdf_points(bit_wear, [0, 1, 2, 3, 5, 7, 10])
    ]
    print_table(
        "Figure 19b: CDF of per-bit programming counts",
        ["programs<=", "P"],
        rows,
    )
    print(
        f"max address writes = {int(seg_writes.max())}, "
        f"max bit programs = {int(bit_wear.max())}"
    )


def test_fig19_wear_cdf(benchmark):
    seg_writes, bit_wear = run_once(benchmark, run_figure19)
    report((seg_writes, bit_wear))
    # Writes are spread: no address absorbs a disproportionate share.
    mean_writes = seg_writes.mean()
    assert seg_writes.max() <= mean_writes * 8
    # Most addresses sit near the mean (the paper's P(X<=10)=81% analogue:
    # 4 updates/word average -> the bulk is under ~2.5x the mean).
    assert (seg_writes <= 2.5 * mean_writes).mean() >= 0.75
    # Bit programming is spread thinner than address writes: a cell is
    # pulsed on only a fraction of its segment's writes (DCW programs only
    # differing cells).
    assert bit_wear.mean() < seg_writes.mean()
    assert (bit_wear <= 7).mean() >= 0.85


if __name__ == "__main__":
    report(run_figure19())
