"""Scrub overhead vs. retention loss: the read-side acceptance pair.

Two byte-identical durable KV stores sit on drifting media (same lognormal
per-cell retention budgets, same seed) and age through the same rounds of
retention time.  One runs the background scrubber's refresh loop (executed
synchronously here for determinism); the other has no scrubber at all:

- **scrubbed** — every round the scrubber margin-reads live segments in
  wear/age-priority order and refresh-writes drifted ones through the
  normal DCW path; a GET that still catches a freshly drifted value heals
  it in place.  Every read of every round must return the exact stored
  bytes, with zero ``CorruptValueError``.
- **unscrubbed** — drift accumulates unrepaired.  The catalog CRC turns
  the decay into *detected* failures: GETs raise ``CorruptValueError``
  (the acceptance criterion demands at least one) and never silently
  return wrong bytes (zero tolerated).

The cost of that durability is quantified from the device counters: the
scrubbed store's extra writes, programmed bits and write energy relative
to the unscrubbed baseline, plus the scrubber's own telemetry (bits
healed, refresh writes).  Results land in ``BENCH_scrub.json``;
``--quick`` shrinks the store for CI smoke runs and ``--check`` exits
non-zero unless the acceptance pair holds instead of overwriting the
JSON.
"""

from __future__ import annotations

import sys
import time

from common import REPO_ROOT, bench_arg_parser, emit_json, print_table

from repro.core.config import fast_test_config
from repro.core.kvstore import CorruptValueError, KVStore
from repro.nvm import DriftConfig, MemoryController, NVMDevice, Scrubber
from repro.pmem.catalog import PersistentCatalog
from repro.pmem.pool import PersistentPool

SEGMENT = 64
LOG_SEGMENTS = 4
KEY_CAPACITY = 16
SEED = 7
JSON_PATH = REPO_ROOT / "BENCH_scrub.json"


def _sizes(quick: bool) -> tuple[int, int, int, int]:
    """(n_segments, n_keys, rounds, ticks_per_round)."""
    if quick:
        return 48, 12, 6, 12
    return 96, 32, 10, 12


def _drift_config(meta_segments: int) -> DriftConfig:
    # Budgets centred well inside rounds * ticks so an unscrubbed store
    # demonstrably decays; the log/catalog prefix models over-provisioned
    # metadata media and never drifts.
    return DriftConfig(
        retention_mean=40,
        retention_sigma=0.4,
        seed=3,
        immortal_prefix_segments=LOG_SEGMENTS + meta_segments,
    )


def _fresh_store(n_segments: int, pipeline=None) -> KVStore:
    meta_segments = PersistentCatalog.meta_segments_for(
        n_segments, LOG_SEGMENTS, SEGMENT, KEY_CAPACITY
    )
    device = NVMDevice(
        capacity_bytes=n_segments * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=SEED,
        drift=_drift_config(meta_segments),
    )
    pool = PersistentPool(
        MemoryController(device),
        log_segments=LOG_SEGMENTS,
        meta_segments=meta_segments,
    )
    return KVStore.create(
        pool,
        config=fast_test_config(),
        key_capacity=KEY_CAPACITY,
        pipeline=pipeline,
    )


def _load(store: KVStore, n_keys: int) -> dict[bytes, bytes]:
    import numpy as np

    rng = np.random.default_rng(11)
    oracle = {}
    for i in range(n_keys):
        key = b"key-%03d" % i
        value = rng.integers(0, 256, size=48, dtype=np.uint8).tobytes()
        store.put(key, value)
        oracle[key] = value
    return oracle


def _sweep(store: KVStore, oracle: dict) -> dict:
    """GET every key once; classify each read."""
    correct = corrupt = silent_wrong = 0
    start = time.perf_counter()
    for key, value in oracle.items():
        try:
            got = store.get(key)
        except CorruptValueError:
            corrupt += 1
            continue
        if got == value:
            correct += 1
        else:
            silent_wrong += 1
    elapsed = time.perf_counter() - start
    return {
        "correct": correct,
        "corrupt_errors": corrupt,
        "silent_wrong": silent_wrong,
        "gets_per_s": round(len(oracle) / elapsed) if elapsed > 0 else 0,
    }


def run_scrub_overhead(quick: bool = False) -> dict:
    n_segments, n_keys, rounds, ticks = _sizes(quick)

    scrubbed = _fresh_store(n_segments)
    unscrubbed = _fresh_store(n_segments, pipeline=scrubbed.engine.pipeline)
    scrubber = Scrubber(scrubbed, segments_per_round=n_segments)

    oracle = _load(scrubbed, n_keys)
    assert _load(unscrubbed, n_keys) == oracle

    scrubbed_device = scrubbed.engine.controller.device
    unscrubbed_device = unscrubbed.engine.controller.device
    base_scrubbed = scrubbed_device.stats.snapshot()
    base_unscrubbed = unscrubbed_device.stats.snapshot()

    timeline = []
    totals = {"scrubbed": None, "unscrubbed": None}
    for r in range(1, rounds + 1):
        scrubbed_device.advance_time(ticks)
        unscrubbed_device.advance_time(ticks)
        scrubber.scrub_round()
        round_row = {
            "round": r,
            "drifted_cells_unscrubbed": (
                unscrubbed_device.drifted_cell_count()
            ),
            "bits_healed_total": scrubber.stats.bits_healed,
            "scrubbed": _sweep(scrubbed, oracle),
            "unscrubbed": _sweep(unscrubbed, oracle),
        }
        timeline.append(round_row)
    for name, store, base in (
        ("scrubbed", scrubbed, base_scrubbed),
        ("unscrubbed", unscrubbed, base_unscrubbed),
    ):
        delta = store.engine.controller.device.stats.snapshot() - base
        totals[name] = {
            "reads": sum(t[name]["correct"] for t in timeline)
            + sum(t[name]["corrupt_errors"] for t in timeline)
            + sum(t[name]["silent_wrong"] for t in timeline),
            "correct": sum(t[name]["correct"] for t in timeline),
            "corrupt_errors": sum(
                t[name]["corrupt_errors"] for t in timeline
            ),
            "silent_wrong": sum(t[name]["silent_wrong"] for t in timeline),
            "writes": delta.writes,
            "bits_programmed": delta.bits_programmed,
            "write_energy_pj": round(delta.write_energy_pj, 1),
        }

    s, u = totals["scrubbed"], totals["unscrubbed"]
    return {
        "quick": quick,
        "segment_size": SEGMENT,
        "n_segments": n_segments,
        "n_keys": n_keys,
        "rounds": rounds,
        "ticks_per_round": ticks,
        "retention_mean": 40,
        "timeline": timeline,
        "totals": totals,
        "scrubber": scrubber.telemetry(),
        "overhead": {
            "extra_writes": s["writes"] - u["writes"],
            "extra_bits_programmed": (
                s["bits_programmed"] - u["bits_programmed"]
            ),
            "extra_write_energy_pj": round(
                s["write_energy_pj"] - u["write_energy_pj"], 1
            ),
            "bits_programmed_x": round(
                s["bits_programmed"] / max(1, u["bits_programmed"]), 2
            ),
        },
    }


def report(result: dict) -> None:
    rows = [
        [
            name,
            result["totals"][name]["reads"],
            result["totals"][name]["correct"],
            result["totals"][name]["corrupt_errors"],
            result["totals"][name]["silent_wrong"],
            result["totals"][name]["writes"],
            result["totals"][name]["bits_programmed"],
        ]
        for name in ("scrubbed", "unscrubbed")
    ]
    print_table(
        "Aged reads over identical drifting media (catalog CRC on)",
        ["store", "reads", "correct", "corrupt errors", "silent wrong",
         "writes", "bits programmed"],
        rows,
    )
    telemetry = result["scrubber"]
    print(
        f"scrub overhead: +{result['overhead']['extra_writes']} writes, "
        f"+{result['overhead']['extra_bits_programmed']} bits programmed "
        f"({result['overhead']['bits_programmed_x']}x), "
        f"{telemetry['bits_healed']} drifted bits healed in "
        f"{telemetry['refresh_writes']} refresh writes"
    )


def check_scrub(result: dict) -> int:
    """0 when the acceptance pair holds, 1 otherwise: the scrubbed store
    serves 100% correct reads with zero errors, the unscrubbed one raises
    ``CorruptValueError`` (>0) and never silently returns wrong bytes."""
    s, u = result["totals"]["scrubbed"], result["totals"]["unscrubbed"]
    failures = []
    if s["corrupt_errors"] or s["correct"] != s["reads"]:
        failures.append(
            f"scrubbed store: {s['correct']}/{s['reads']} correct, "
            f"{s['corrupt_errors']} CorruptValueError — must be 100%/0"
        )
    if u["corrupt_errors"] == 0:
        failures.append(
            "unscrubbed store never raised CorruptValueError — drift "
            "pressure too low to demonstrate the contrast"
        )
    if s["silent_wrong"] or u["silent_wrong"]:
        failures.append(
            f"silent wrong bytes served (scrubbed {s['silent_wrong']}, "
            f"unscrubbed {u['silent_wrong']}) — CRC must catch every one"
        )
    if result["scrubber"]["bits_healed"] <= 0:
        failures.append("scrubber healed zero bits — nothing was exercised")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(
            f"[scrub check OK: scrubbed {s['correct']}/{s['reads']} correct, "
            f"unscrubbed detected {u['corrupt_errors']} corrupt reads, "
            f"0 silent]"
        )
    return 1 if failures else 0


def main() -> None:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the acceptance pair holds (does not overwrite "
        "the committed JSON)",
    )
    args = parser.parse_args()
    result = run_scrub_overhead(quick=args.quick)
    report(result)
    if args.check:
        sys.exit(check_scrub(result))
    emit_json(JSON_PATH, result)


if __name__ == "__main__":
    main()
