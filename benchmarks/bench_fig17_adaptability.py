"""Figure 17: adaptability to workload and content drift (five scenarios).

The paper streams image data through the store while the content
distribution shifts, tracking bit updates over time:

1. random-seeded memory, MNIST stream + deletes — flips fall as recycling
   populates the clusters with real content;
2. retrain, more MNIST — low and stable;
3. a 1:2 Fashion-MNIST:MNIST mixture — flips jump (unseen content);
4. CIFAR stream — flips jump further and fluctuate;
5. retrain on current content, more CIFAR — flips recover quickly.

A companion scenario drives the same drift through the *lazy* auto-retrain
path (§5.3): retrains are deferred while the pool runs below ``n_clusters``
free segments and completed in the background once capacity returns, with
zero failed PUTs throughout; the engine's retrain/recovery counters are
reported.
"""

from __future__ import annotations

import numpy as np

from common import bench_config, print_table, run_once, values_from_bits

from repro.core import E2NVM
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.datasets import (
    cifar_like,
    fashion_mnist_like,
    mnist_like,
)
from repro.workloads.mixing import DriftSchedule

SEGMENT = 96
N_SEGMENTS = 192
PHASE_ITEMS = 180
WINDOW = 30


def build_schedule(seed: int) -> DriftSchedule:
    width = SEGMENT * 8
    mnist = values_from_bits(mnist_like(PHASE_ITEMS * 3, n_pixels=width, seed=seed)[0])
    fashion = values_from_bits(
        fashion_mnist_like(PHASE_ITEMS * 2, n_pixels=width, seed=seed + 1)[0]
    )
    cifar = values_from_bits(
        cifar_like(PHASE_ITEMS * 3, n_pixels=width, seed=seed + 2)[0]
    )
    schedule = DriftSchedule()
    schedule.add_phase("1:mnist-cold", mnist[:PHASE_ITEMS])
    schedule.add_phase("2:mnist-retrained", mnist[PHASE_ITEMS : 2 * PHASE_ITEMS],
                       retrain_before=True)
    schedule.add_mixture(
        "3:fashion+mnist", [fashion, mnist[2 * PHASE_ITEMS :]], [1.0, 2.0],
        PHASE_ITEMS, seed=seed,
    )
    schedule.add_phase("4:cifar-cold", cifar[:PHASE_ITEMS])
    schedule.add_phase("5:cifar-retrained", cifar[PHASE_ITEMS : 2 * PHASE_ITEMS],
                       retrain_before=True)
    return schedule


def run_figure17(seed: int = 0):
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
    )
    controller = MemoryController(device)
    engine = E2NVM(controller, bench_config(n_clusters=6, seed=seed))
    engine.train()  # scenario 1: trained on the random seed content

    rng = np.random.default_rng(seed)
    live: list[int] = []
    series: list[tuple[str, float]] = []
    for phase in build_schedule(seed):
        if phase.retrain_before:
            engine.train()
        for value in phase.values:
            addr, result = engine.write(value)
            live.append(addr)
            series.append((phase.name, float(result.bits_programmed)))
            # Keep the pool dynamic: delete about half of what we write.
            if len(live) > N_SEGMENTS // 3 or rng.random() < 0.5:
                victim = live.pop(int(rng.integers(0, len(live))))
                engine.release(victim)
    return series


def run_fig17_lazy_retrain(seed: int = 0):
    """Drift under ``auto_retrain``: writes never block and never fail.

    The live set is held just below capacity so the pool runs at fewer
    free segments than clusters — retrain triggers must defer, writes fall
    back to first-fit placement, and the deferred retrain completes in the
    background once deletes return capacity.
    """
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
    )
    controller = MemoryController(device)
    engine = E2NVM(
        controller,
        bench_config(
            n_clusters=6,
            seed=seed,
            auto_retrain=True,
            retrain_threshold=4,
            # The cooldown expires only once the live set has filled past
            # the high-water mark, so the first trigger lands while fewer
            # than n_clusters segments are free and must defer.
            retrain_cooldown_writes=200,
        ),
    )
    engine.train()

    width = SEGMENT * 8
    stream = values_from_bits(
        mnist_like(150, n_pixels=width, seed=seed)[0]
    ) + values_from_bits(cifar_like(150, n_pixels=width, seed=seed + 2)[0])
    rng = np.random.default_rng(seed)
    live: list[int] = []
    failed_puts = 0
    high_water = N_SEGMENTS - 4  # pool runs at < n_clusters free segments
    for value in stream:
        try:
            addr, _ = engine.write(value)
            live.append(addr)
        except Exception:
            failed_puts += 1
            continue
        if len(live) > high_water:
            victim = live.pop(int(rng.integers(0, len(live))))
            engine.release(victim)
    # Deletes return capacity: the deferred retrain can now complete.
    while len(live) > N_SEGMENTS // 2:
        engine.release(live.pop())
    for value in stream[:60]:
        try:
            addr, _ = engine.write(value)
            engine.release(addr)
        except Exception:
            failed_puts += 1
    engine.wait_for_retrain(timeout=300)
    return failed_puts, engine


def report_lazy(failed_puts, engine) -> None:
    rows = [[k, float(v)] for k, v in engine.retrain_stats.as_dict().items()]
    rows.append(["failed_puts", float(failed_puts)])
    rows.append(["failed_writes", float(engine.failed_writes)])
    print_table(
        "Figure 17 companion: lazy auto-retrain resilience",
        ["metric", "value"],
        rows,
    )


def summarise(series) -> list[list]:
    rows = []
    by_phase: dict[str, list[float]] = {}
    for name, flips in series:
        by_phase.setdefault(name, []).append(flips)
    for name, flips in by_phase.items():
        arr = np.array(flips)
        early = arr[: WINDOW].mean()
        late = arr[-WINDOW:].mean()
        rows.append([name, arr.mean(), early, late, arr.std()])
    return rows


def report(series) -> None:
    print_table(
        "Figure 17: bits programmed per write across drift scenarios",
        ["phase", "mean", "first-30", "last-30", "stddev"],
        summarise(series),
    )


def test_fig17_adaptability(benchmark):
    series = run_once(benchmark, run_figure17)
    report(series)
    rows = {r[0]: r for r in summarise(series)}
    cold = rows["1:mnist-cold"]
    warm = rows["2:mnist-retrained"]
    mixed = rows["3:fashion+mnist"]
    cifar_cold = rows["4:cifar-cold"]
    cifar_warm = rows["5:cifar-retrained"]
    # Scenario 1: flips shrink over the phase as recycling takes hold.
    assert cold[3] < cold[2]
    # Scenario 2: retraining on real content beats the cold phase.
    assert warm[1] < cold[1]
    # Scenario 3: unseen content degrades performance.
    assert mixed[1] > warm[1]
    # Scenario 5: retraining on the new distribution recovers quickly.
    assert cifar_warm[1] < cifar_cold[1]


def test_fig17_lazy_auto_retrain(benchmark):
    failed_puts, engine = run_once(benchmark, run_fig17_lazy_retrain)
    report_lazy(failed_puts, engine)
    stats = engine.retrain_stats
    # The operational claim of §5.3: retraining never stops or fails a PUT.
    assert failed_puts == 0
    assert engine.failed_writes == 0
    assert stats.deferred >= 1
    assert stats.succeeded >= 1


if __name__ == "__main__":
    report(run_figure17())
    report_lazy(*run_fig17_lazy_retrain())
