"""Ablation: small-write batching (§4.1.4).

Small key-value pairs waste a whole segment each and bloat the DAP; the
paper proposes grouping them "to form larger writes to memory segments".
This bench writes a stream of 12-byte records both ways and compares device
writes, energy per payload byte, and segments consumed.
"""

from __future__ import annotations

from common import bench_config, print_table, run_once

from repro.core import E2NVM
from repro.core.batching import WriteBatcher
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.records import pubmed_like

SEGMENT = 64
N_SEGMENTS = 256
N_VALUES = 600
VALUE_BYTES = 12


def fresh_engine(seed: int) -> tuple[E2NVM, NVMDevice]:
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
    )
    controller = MemoryController(device)
    engine = E2NVM(controller, bench_config(n_clusters=6, seed=seed))
    engine.train()
    device.reset_stats()
    return engine, device


def run_ablation(seed: int = 0) -> list[list]:
    values = pubmed_like(N_VALUES, record_size=VALUE_BYTES, seed=seed)
    payload_bytes = sum(len(v) for v in values)
    rows = []

    # Direct: one engine write (whole segment claimed) per tiny value.
    engine, device = fresh_engine(seed)
    locators = []
    for value in values:
        addr, _ = engine.write(value)
        locators.append(addr)
        if len(locators) > N_SEGMENTS - 8:
            engine.release(locators.pop(0))
    rows.append(
        [
            "direct (1 value / segment)",
            device.stats.writes,
            device.stats.write_energy_pj / payload_bytes,
            engine.allocated_count,
        ]
    )

    # Batched: values grouped into segment-sized batch writes.
    engine, device = fresh_engine(seed)
    batcher = WriteBatcher(engine)
    handles = []
    for value in values:
        handles.append(batcher.put(value))
    batcher.flush()
    rows.append(
        [
            "batched (WriteBatcher)",
            device.stats.writes,
            device.stats.write_energy_pj / payload_bytes,
            engine.allocated_count,
        ]
    )
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Ablation: small-write batching",
        ["mode", "device writes", "energy_pJ/payload-byte", "segments held"],
        rows,
    )


def test_ablation_batching(benchmark):
    rows = run_once(benchmark, run_ablation)
    report(rows)
    direct, batched = rows
    # Batching collapses device writes by roughly the grouping factor.
    assert batched[1] < direct[1] / 3
    # And cuts per-payload-byte energy (fewer command/line overheads).
    assert batched[2] < direct[2]
    # And holds far fewer segments for the same live data.
    assert batched[3] < direct[3]


if __name__ == "__main__":
    report(run_ablation())
