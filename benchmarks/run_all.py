"""Run every figure/ablation benchmark and print all tables.

Usage:  python benchmarks/run_all.py [--quick] [--csv DIR]

``--quick`` skips the slowest sweeps (Figures 11, 14, 15) for a fast pass;
``--csv DIR`` additionally dumps each benchmark's raw rows as CSV files for
downstream plotting.
"""

from __future__ import annotations

import csv
import importlib
import pathlib
import time

from common import bench_arg_parser


def dump_csv(directory: pathlib.Path, name: str, result) -> None:
    """Serialise a benchmark result (rows / dict-of-rows) to CSV files."""
    def write_rows(path: pathlib.Path, rows) -> None:
        with path.open("w", newline="") as handle:
            csv.writer(handle).writerows(rows)

    if isinstance(result, list) and result and isinstance(result[0], list):
        write_rows(directory / f"{name}.csv", result)
    elif isinstance(result, dict):
        for key, value in result.items():
            slug = str(key).replace("/", "_").replace(" ", "_")
            if isinstance(value, list) and value and isinstance(value[0], list):
                write_rows(directory / f"{name}.{slug}.csv", value)
            elif isinstance(value, dict):  # e.g. loss-curve dicts
                series = list(value.values())
                header = list(value.keys())
                rows = [header] + list(map(list, zip(*series)))
                write_rows(directory / f"{name}.{slug}.csv", rows)

BENCHES = [
    ("bench_fig01_hamming_energy", "run_figure1", False),
    ("bench_fig02_wear_swap", "run_figure2", False),
    ("bench_fig04_model_scaling", "run_figure4", False),
    ("bench_fig07_index_footprint", "run_figure7", False),
    ("bench_fig08_elbow", "run_figure8", False),
    ("bench_fig09_learning_curves", "run_figure9", False),
    ("bench_fig10_baseline_comparison", "run_figure10", False),
    ("bench_fig11_ycsb_segment_size", "run_figure11", True),
    ("bench_fig12_index_plugging", "run_figure12", False),
    ("bench_fig13_pool_segment_grid", "run_figure13", False),
    ("bench_fig14_padding_strategies", "run_figure14", True),
    ("bench_fig15_padding_fraction", "run_figure15", True),
    ("bench_fig16_energy_timeline", "run_figure16", False),
    ("bench_fig17_adaptability", "run_figure17", False),
    ("bench_fig18_training_cost", "run_figure18", False),
    ("bench_fig19_wear_cdf", "run_figure19", False),
    ("bench_ablation_joint_training", "run_ablation", False),
    ("bench_ablation_first_fit", "run_ablation", False),
    ("bench_ablation_placers", "run_ablation", False),
    ("bench_ablation_batching", "run_ablation", False),
]


def main() -> None:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="additionally dump each benchmark's raw rows as CSV files",
    )
    args = parser.parse_args()
    quick = args.quick
    csv_dir = None
    if args.csv:
        csv_dir = pathlib.Path(args.csv)
        csv_dir.mkdir(parents=True, exist_ok=True)
    total_start = time.perf_counter()
    for module_name, runner_name, slow in BENCHES:
        if quick and slow:
            print(f"\n[skipped in --quick mode: {module_name}]")
            continue
        module = importlib.import_module(module_name)
        runner = getattr(module, runner_name)
        start = time.perf_counter()
        result = runner()
        module.report(result)
        if csv_dir is not None:
            try:
                dump_csv(csv_dir, module_name, result)
            except Exception as exc:  # CSV export must never kill the run
                print(f"[csv export failed for {module_name}: {exc}]")
        print(f"[{module_name}: {time.perf_counter() - start:.1f}s]")
    print(f"\nall benchmarks done in {time.perf_counter() - total_start:.0f}s")


if __name__ == "__main__":
    main()
