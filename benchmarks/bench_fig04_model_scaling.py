"""Figure 4: K-means vs PCA+K-means (PNW) vs VAE (E2-NVM) as features grow.

The paper trains each clustering model on MNIST at feature counts from 32
to 16384 and reports (a) preprocessing/training latency and (b) the number
of bit flips when the model places a held-out stream.  Raw K-means blows up
with dimensionality; PCA+K-means stays fast but loses information; the VAE
is both fast and accurate.

Feature counts are scaled to laptop sizes; the trend across the sweep is
the reproduction target.
"""

from __future__ import annotations

import time

import numpy as np

from common import print_table, run_once

from repro.ml.joint import JointVAEKMeans
from repro.ml.kmeans import KMeans
from repro.ml.pca import PCA
from repro.workloads.datasets import make_image_dataset

FEATURE_COUNTS = [32, 128, 512, 2048]
N_TRAIN = 600
N_TEST = 200
K = 20
N_CLASSES = 20
PCA_COMPONENTS = 4


def placement_flips(train_bits, test_bits, predict_fn) -> float:
    """Average Hamming distance between each test item and the first free
    training segment of its predicted cluster (first-fit placement)."""
    train_labels = predict_fn(train_bits)
    pools: dict[int, list[int]] = {}
    for idx, label in enumerate(train_labels):
        pools.setdefault(int(label), []).append(idx)
    fallback = max(pools, key=lambda c: len(pools[c]))
    cursor: dict[int, int] = {}
    total = 0.0
    for row in test_bits:
        cluster = int(predict_fn(row[None, :])[0])
        if cluster not in pools:
            cluster = fallback
        pool = pools[cluster]
        pick = pool[cursor.get(cluster, 0) % len(pool)]
        cursor[cluster] = cursor.get(cluster, 0) + 1
        total += float(np.abs(train_bits[pick] - row).sum())
    return total / len(test_bits)


def run_figure4(seed: int = 0) -> list[list]:
    rows = []
    for n_features in FEATURE_COUNTS:
        bits, _ = make_image_dataset(
            N_TRAIN + N_TEST, n_features, n_classes=N_CLASSES, noise=0.08, seed=seed
        )
        train, test = bits[:N_TRAIN], bits[N_TRAIN:]

        # Raw K-means over the full bit vectors (PNW without PCA).
        t0 = time.perf_counter()
        km = KMeans(K, seed=seed).fit(train)
        t_kmeans = time.perf_counter() - t0
        flips_kmeans = placement_flips(train, test, km.predict)

        # PCA + K-means (PNW's scaling mode).
        t0 = time.perf_counter()
        pca = PCA(PCA_COMPONENTS).fit(train)
        km_pca = KMeans(K, seed=seed).fit(pca.transform(train))
        t_pca = time.perf_counter() - t0
        flips_pca = placement_flips(
            train, test, lambda X: km_pca.predict(pca.transform(X))
        )

        # VAE + K-means (E2-NVM).
        t0 = time.perf_counter()
        vae = JointVAEKMeans(
            n_features, K, latent_dim=10, hidden=(128,),
            pretrain_epochs=12, joint_epochs=3, batch_size=64, lr=3e-3,
            seed=seed,
        ).fit(train)
        t_vae = time.perf_counter() - t0
        flips_vae = placement_flips(train, test, vae.predict)

        rows.append(
            [
                n_features,
                t_kmeans, t_pca, t_vae,
                flips_kmeans, flips_pca, flips_vae,
            ]
        )
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 4: model training latency (s) and placement bit flips",
        [
            "features",
            "t_kmeans_s", "t_pca+km_s", "t_vae_s",
            "flips_kmeans", "flips_pca+km", "flips_vae",
        ],
        rows,
    )


def test_fig04_model_scaling(benchmark):
    rows = run_once(benchmark, run_figure4)
    report(rows)
    largest = rows[-1]
    # At high dimensionality the VAE matches or beats both baselines' flip
    # quality (the paper's headline for this figure).
    assert largest[6] <= largest[4] * 1.02
    assert largest[6] <= largest[5] * 1.05
    # Raw K-means training cost grows steeply with the feature count.
    assert rows[-1][1] > 5 * rows[0][1]


if __name__ == "__main__":
    report(run_figure4())
