"""Figure 11: energy per cache-line access for YCSB vs. segment size and k.

The paper runs YCSB A–F over a real Optane KV store and reports the average
energy per PMem cache-line access while varying the memory segment size and
the cluster count: smaller segments and more clusters both cut energy
(higher prediction accuracy, fewer flips per line).
"""

from __future__ import annotations

from common import bench_config, print_table, run_once

from repro.core import E2NVM, KVStore
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.ycsb import WORKLOADS, YCSBWorkload

SEGMENT_SIZES = [64, 128, 256]
K_VALUES = [5, 15]
RECORDS = 120
OPERATIONS = 250
WORKLOAD_NAMES = ["A", "B", "D", "F"]  # the write-bearing workloads


def run_workload(name: str, segment: int, k: int, seed: int) -> float:
    n_segments = max(256, RECORDS * 3)
    device = NVMDevice(
        capacity_bytes=n_segments * segment,
        segment_size=segment,
        initial_fill="random",
        seed=seed,
    )
    controller = MemoryController(device)
    engine = E2NVM(
        controller,
        bench_config(n_clusters=k, seed=seed, train_sample_limit=512),
    )
    store = KVStore(engine)
    workload = YCSBWorkload(
        WORKLOADS[name],
        record_count=RECORDS,
        operation_count=OPERATIONS,
        value_size=segment - 8,
        seed=seed,
    )
    # Load phase (the 10 GB "old data" of §5.2.1, scaled down).
    records = dict(workload.load_phase())
    engine.train()
    for key, value in records.items():
        store.put(key, value)
    device.reset_stats()
    # Run phase.
    for op in workload.operations():
        if op[0] == "read":
            store.get(op[1])
        elif op[0] in ("update", "insert", "rmw"):
            if op[0] == "rmw":
                store.get(op[1])
            store.put(op[1], op[2])
        elif op[0] == "scan":
            store.scan(op[1], op[1] + b"\xff")
    stats = device.stats
    lines = max(1, stats.dirty_lines_written)
    # Cell-programming energy per dirty cache line: the component that
    # placement accuracy controls (command overheads amortise trivially
    # with segment size and would mask the effect).
    programming_pj = stats.bits_programmed * device.energy_model.flip_energy_pj
    return programming_pj / lines / 1000.0  # nJ per dirty line


def run_figure11(seed: int = 0) -> list[list]:
    rows = []
    for name in WORKLOAD_NAMES:
        for segment in SEGMENT_SIZES:
            row = [name, segment]
            for k in K_VALUES:
                row.append(run_workload(name, segment, k, seed))
            rows.append(row)
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 11: YCSB programming energy per written cache line (nJ)",
        ["workload", "segment_B"] + [f"k={k}" for k in K_VALUES],
        rows,
    )


def test_fig11_ycsb_segment_size(benchmark):
    rows = run_once(benchmark, run_figure11)
    report(rows)
    by_workload: dict = {}
    for name, segment, *energies in rows:
        by_workload.setdefault(name, []).append((segment, energies))
    for name, entries in by_workload.items():
        entries.sort()
        # Smaller segments cost less programming energy per line.
        assert entries[0][1][-1] <= entries[-1][1][-1] * 1.1, name
        # More clusters never hurt much (within noise) on write-heavy mixes.
        if name in ("A", "F"):
            small_seg = entries[0][1]
            assert small_seg[1] <= small_seg[0] * 1.15, name


if __name__ == "__main__":
    report(run_figure11())
