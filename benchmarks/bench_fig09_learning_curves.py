"""Figure 9: VAE training and validation loss curves per dataset.

The paper shows the model converging quickly on each dataset's memory
contents with the validation loss tracking the training loss (no
overfitting) — evidence the VAE "generalises" the bit patterns.
"""

from __future__ import annotations

from common import print_table, run_once

from repro.ml.vae import VAE
from repro.workloads.datasets import cifar_like, fashion_mnist_like, mnist_like
from repro.workloads.records import amazon_access_like, records_to_bits

EPOCHS = 12


def datasets() -> dict:
    return {
        "mnist-like": mnist_like(600)[0],
        "fashion-like": fashion_mnist_like(600)[0],
        "cifar-like": cifar_like(600)[0],
        "amazon-like": records_to_bits(amazon_access_like(600, seed=4)),
    }


def run_figure9(seed: int = 0) -> dict:
    curves = {}
    for name, bits in datasets().items():
        vae = VAE(
            bits.shape[1], latent_dim=8, hidden=(64,), seed=seed
        )
        history = vae.fit(bits, epochs=EPOCHS, batch_size=64, lr=3e-3)
        curves[name] = history
    return curves


def report(curves: dict) -> None:
    for name, history in curves.items():
        rows = [
            [epoch + 1, tr, va]
            for epoch, (tr, va) in enumerate(
                zip(history["train_loss"], history["val_loss"])
            )
        ]
        print_table(
            f"Figure 9 ({name}): loss per epoch",
            ["epoch", "train_loss", "val_loss"],
            rows,
        )


def test_fig09_learning_curves(benchmark):
    curves = run_once(benchmark, run_figure9)
    report(curves)
    for name, history in curves.items():
        train = history["train_loss"]
        val = history["val_loss"]
        # The model learns: a large early drop...
        assert train[-1] < train[0] * 0.9, name
        # ...and most of it happens fast (convergence by mid-training).
        assert train[len(train) // 2] < train[0], name
        # Validation tracks training (generalisation, no divergence).
        assert val[-1] < val[0], name
        assert val[-1] < train[0], name


if __name__ == "__main__":
    report(run_figure9())
