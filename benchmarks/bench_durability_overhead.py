"""Durability overhead: volatile vs transactional KV write path.

The paper's Figure 1 experiment "use[s] PMDK's transactions to persist
writes" and pays the undo-log traffic on every write; this benchmark
quantifies that price for the full KV store.  The same seeded YCSB-style
trace runs twice over byte-identical devices:

- **volatile** — the historical simulator mode (DRAM index and flags,
  values written straight through the engine);
- **durable** — every PUT/DELETE routed through an undo-log transaction
  that also maintains the persistent per-segment catalog.

The multipliers are the PMDK-style overhead: each durable PUT writes the
undo records (old value + old catalog record), the value, and the catalog
record, plus the log's active-flag toggles — versus a single value write.
"""

from __future__ import annotations

from common import print_table, run_once

from repro.core import KVStore
from repro.core.config import fast_test_config
from repro.nvm import MemoryController, NVMDevice
from repro.pmem import PersistentCatalog, PersistentPool
from repro.testing.crash_sweep import make_ycsb_trace

SEGMENT_SIZE = 64
N_SEGMENTS = 96
LOG_SEGMENTS = 4
KEY_CAPACITY = 16
N_OPS = 300


def _device(seed: int = 7) -> NVMDevice:
    return NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT_SIZE,
        segment_size=SEGMENT_SIZE,
        initial_fill="random",
        seed=seed,
    )


def _apply(store: KVStore, trace) -> None:
    for op in trace:
        if op[0] == "put":
            store.put(op[1], op[2])
        elif op[0] == "delete":
            if store.index.get(op[1]) is not None:
                store.delete(op[1])
        else:
            store.get(op[1])


def run_durability_overhead(seed: int = 0) -> list[list]:
    trace = make_ycsb_trace(
        N_OPS, n_keys=10, value_size=SEGMENT_SIZE, seed=seed
    )
    config = fast_test_config()

    volatile_device = _device()
    from repro.core import E2NVM

    engine = E2NVM(
        MemoryController(volatile_device),
        config,
        reserved_segments=LOG_SEGMENTS
        + PersistentCatalog.meta_segments_for(
            N_SEGMENTS, LOG_SEGMENTS, SEGMENT_SIZE, KEY_CAPACITY
        ),
    )
    engine.train()
    volatile_device.reset_stats()
    _apply(KVStore(engine), trace)

    durable_device = _device()
    pool = PersistentPool(
        MemoryController(durable_device),
        log_segments=LOG_SEGMENTS,
        meta_segments=PersistentCatalog.meta_segments_for(
            N_SEGMENTS, LOG_SEGMENTS, SEGMENT_SIZE, KEY_CAPACITY
        ),
    )
    durable = KVStore.create(pool, config=config, key_capacity=KEY_CAPACITY)
    durable_device.reset_stats()
    _apply(durable, trace)

    rows = []
    for name, metric in [
        ("device writes", "writes"),
        ("bytes written", "bytes_written"),
        ("bits programmed", "bits_programmed"),
        ("write energy (pJ)", "write_energy_pj"),
        ("write latency (ns)", "write_latency_ns"),
    ]:
        v = getattr(volatile_device.stats, metric)
        d = getattr(durable_device.stats, metric)
        rows.append([name, float(v), float(d), d / max(v, 1e-12)])
    return rows


HEADERS = ["metric", "volatile", "durable", "multiplier"]
TITLE = (
    f"Durability overhead: transactional KV write path "
    f"({N_OPS}-op YCSB-style trace)"
)


def test_bench_durability_overhead(benchmark):
    rows = run_once(benchmark, run_durability_overhead)
    print_table(TITLE, HEADERS, rows)
    by_name = {row[0]: row for row in rows}
    # Transactions must cost more (log traffic is real device traffic)...
    assert by_name["device writes"][3] > 1.5
    assert by_name["write energy (pJ)"][3] > 1.0
    # ...but not absurdly more: the undo log roughly doubles-to-quadruples
    # the media traffic of a PUT, as PMDK does in Figure 1.
    assert by_name["bytes written"][3] < 10.0


if __name__ == "__main__":
    print_table(TITLE, HEADERS, run_durability_overhead())
