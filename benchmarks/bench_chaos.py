"""Chaos drill benchmark: recovery time and availability under faults.

Runs the seeded chaos drill from :mod:`repro.testing.chaos` — random
kill / SIGSTOP / in-transaction-crash faults against live shard worker
processes mid-``put_many``, with wearout and drift clocks advancing and
the in-worker scrubber/compactor/retrain loops running — and reports what
a storage operator would ask of a self-healing array:

- **recovery time**: seconds from fault detection to the shard serving
  again (mean and max across all supervised recoveries);
- **availability**: fraction of attempted batch items acknowledged while
  the fleet was being attacked (the ``partial`` degraded policy keeps
  survivors serving);
- **safety**: lost acknowledged writes and post-drill fsck must both be
  zero/clean — a fast recovery that drops data counts for nothing.

Results land in ``BENCH_chaos.json``.  ``--quick`` runs fewer, smaller
rounds for CI; ``--check`` re-runs the drill and exits non-zero unless
the safety contract holds (all shards healthy, zero lost acknowledged
writes, zero torn values, fsck clean on every shard).
"""

from __future__ import annotations

import sys
import time

from common import REPO_ROOT, bench_arg_parser, emit_json, print_table

from repro.testing.chaos import run_chaos_drill

SEED = 7
JSON_PATH = REPO_ROOT / "BENCH_chaos.json"


def _sizes(quick: bool) -> tuple[int, int]:
    """(rounds, batch_size)."""
    if quick:
        return 4, 16
    return 10, 24


def run_chaos(quick: bool = False) -> dict:
    rounds, batch_size = _sizes(quick)
    t0 = time.perf_counter()
    report = run_chaos_drill(
        rounds=rounds,
        batch_size=batch_size,
        seed=SEED,
        heal_timeout_s=120.0,
    )
    wall_s = time.perf_counter() - t0
    result = report.summary()
    result["wall_s"] = wall_s
    result["quick"] = quick
    return result


def print_chaos(result: dict) -> None:
    print_table(
        "chaos drill: faults injected",
        ["fault", "count"],
        [[kind, count] for kind, count in sorted(result["faults"].items())],
    )
    print_table(
        "chaos drill: recovery & availability",
        ["metric", "value"],
        [
            ["rounds", result["rounds"]],
            ["restarts", result["restarts"]],
            ["watchdog kills", result["watchdog_kills"]],
            ["recoveries", result["recovery_count"]],
            ["recovery time mean (s)", result["recovery_time_mean_s"]],
            ["recovery time max (s)", result["recovery_time_max_s"]],
            ["availability", result["availability"]],
            ["acked items", result["acked_items"]],
            ["attempted items", result["total_items"]],
            ["converge (s)", result["converge_s"]],
            ["wall (s)", result["wall_s"]],
        ],
    )
    print_table(
        "chaos drill: safety contract",
        ["check", "value"],
        [
            ["all shards healthy", result["all_healthy"]],
            ["lost acked writes", result["lost_writes"]],
            ["corrupt keys", result["corrupt_keys"]],
            ["fsck clean", result["fsck_ok"]],
            ["ok", result["ok"]],
        ],
    )


def check_chaos(result: dict) -> int:
    """The drill's acceptance gate: convergence and zero data loss."""
    failures = []
    if not result["all_healthy"]:
        failures.append("fleet did not converge to all-shards-healthy")
    if result["lost_writes"]:
        failures.append(
            f"{result['lost_writes']} acknowledged write(s) lost"
        )
    if result["corrupt_keys"]:
        failures.append(f"{result['corrupt_keys']} torn/corrupt value(s)")
    if not result["fsck_ok"]:
        failures.append("post-drill fsck found errors")
    if result["availability"] < 0.6:
        # BENCH_chaos.json reports 0.7625; a supervision regression can
        # tank availability without losing a single byte (breakers stuck
        # open, slow reopens) — losing data is not the only way to fail.
        failures.append(
            f"availability {result['availability']:.4f} below the 0.6 floor"
        )
    if result["restarts"] < 1:
        failures.append("no supervised restart happened — drill inert")
    if failures:
        for failure in failures:
            print(f"[chaos check FAILED: {failure}]")
        return 1
    print(
        f"[chaos check OK: {result['restarts']} restarts, "
        f"{result['watchdog_kills']} watchdog kills, "
        f"availability {result['availability']:.2f}, "
        f"recovery mean {result['recovery_time_mean_s']:.2f}s, "
        "0 lost acked writes, fsck clean]"
    )
    return 0


def main() -> None:
    parser = bench_arg_parser("Chaos drill: supervised recovery under faults")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the safety contract holds "
        "(instead of writing JSON)",
    )
    args = parser.parse_args()
    result = run_chaos(quick=args.quick)
    print_chaos(result)
    if args.check:
        sys.exit(check_chaos(result))
    emit_json(JSON_PATH, result)


if __name__ == "__main__":
    main()
