"""Ablation: first-fit within the predicted cluster vs. exhaustive best-fit.

§3.3.1 argues that because a cluster already groups similar contents,
taking "the first available address in the cluster" sacrifices little
versus searching the whole pool for the perfect match — while best-fit
search is linear in pool size per write.

We compare three placers on the same stream: E2-NVM (cluster + first fit),
exhaustive best-fit (the oracle), and arbitrary FIFO (the floor).
"""

from __future__ import annotations

import time

import numpy as np

from common import bench_config, print_table, run_once, values_from_bits

from repro.baselines import ArbitraryPlacer
from repro.baselines.naive import BestFitPlacer
from repro.core import E2NVM
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.datasets import make_image_dataset

SEGMENT = 64
N_SEGMENTS = 192
N_WRITES = 250


def fresh_controller(seed_values, seed=1):
    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="random",
        seed=seed,
    )
    controller = MemoryController(device)
    for i, value in enumerate(seed_values):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    return controller, device


def run_ablation(seed: int = 0) -> list[list]:
    bits, _ = make_image_dataset(
        N_SEGMENTS + N_WRITES, SEGMENT * 8, n_classes=10, noise=0.07, seed=seed
    )
    values = values_from_bits(bits)
    seed_values, stream = values[:N_SEGMENTS], values[N_SEGMENTS:]
    rows = []

    # E2-NVM: predicted cluster + first fit.
    controller, device = fresh_controller(seed_values)
    engine = E2NVM(controller, bench_config(n_clusters=10, seed=seed))
    engine.train()
    t0 = time.perf_counter()
    for value in stream:
        addr, _ = engine.write(value)
        engine.release(addr)
    elapsed = time.perf_counter() - t0
    rows.append(
        [
            "cluster+first-fit (E2-NVM)",
            device.stats.bits_programmed / len(stream),
            elapsed / len(stream) * 1e6,
        ]
    )

    # Oracle: exhaustive best-fit over the whole free pool.
    controller, device = fresh_controller(seed_values)
    contents = {
        i * SEGMENT: np.unpackbits(controller.peek(i * SEGMENT, SEGMENT))
        for i in range(N_SEGMENTS)
    }
    best = BestFitPlacer(list(contents), contents)
    t0 = time.perf_counter()
    for value in stream:
        value_bits = np.unpackbits(np.frombuffer(value, dtype=np.uint8))
        addr = best.choose(value_bits)
        controller.write(addr, value)
        best.release(addr, np.unpackbits(controller.peek(addr, SEGMENT)))
    elapsed = time.perf_counter() - t0
    rows.append(
        [
            "exhaustive best-fit (oracle)",
            device.stats.bits_programmed / len(stream),
            elapsed / len(stream) * 1e6,
        ]
    )

    # Floor: arbitrary FIFO.
    controller, device = fresh_controller(seed_values)
    placer = ArbitraryPlacer([i * SEGMENT for i in range(N_SEGMENTS)])
    t0 = time.perf_counter()
    for value in stream:
        addr = placer.choose(None)
        controller.write(addr, value)
        placer.release(addr, None)
    elapsed = time.perf_counter() - t0
    rows.append(
        [
            "arbitrary FIFO",
            device.stats.bits_programmed / len(stream),
            elapsed / len(stream) * 1e6,
        ]
    )
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Ablation: first-fit vs best-fit vs arbitrary placement",
        ["placer", "bits/write", "us/write"],
        rows,
    )


def test_ablation_first_fit(benchmark):
    rows = run_once(benchmark, run_ablation)
    report(rows)
    e2, oracle, arbitrary = rows
    # First-fit captures most of the oracle's benefit over arbitrary.
    assert oracle[1] <= e2[1] <= arbitrary[1]
    captured = (arbitrary[1] - e2[1]) / max(arbitrary[1] - oracle[1], 1e-9)
    assert captured >= 0.6, f"first-fit captured only {captured:.0%}"


if __name__ == "__main__":
    report(run_ablation())
