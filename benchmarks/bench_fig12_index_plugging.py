"""Figure 12: plugging NVM data structures into E2-NVM.

B+-Tree [9], WiscKey [35], Path Hashing [54], FP-Tree [45] and NoveLSM [25]
each run a KV insert/update stream twice: standalone (values placed by the
structure's own layout) and plugged into E2-NVM (values placed by the
trained engine; the structure stores a 12-byte pointer).  Metric: bit
updates per written data bit.  The paper reports up to 91% improvement,
with the plain B+-tree worst standalone (sorted-leaf shifting).
"""

from __future__ import annotations

import numpy as np

from common import bench_config, print_table, run_once, values_from_bits

from repro.core import E2NVM
from repro.index import (
    BPlusTree,
    FPTree,
    NoveLSMStore,
    PathHashingTable,
    PluggedValues,
    WiscKeyStore,
)
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.datasets import make_image_dataset

VALUE_BYTES = 48
N_KEYS = 120
N_OPS = 360
ENGINE_SEGMENTS = 256
INDEX_SEGMENT = 256


def factories():
    return {
        "B+-Tree": lambda c, v: BPlusTree(c, values=v),
        "WiscKey": lambda c, v: WiscKeyStore(
            c, values=v, vlog_segments=48, memtable_limit=16
        ),
        "PathHash": lambda c, v: PathHashingTable(
            c, values=v, root_cells=256, cell_size=128
        ),
        "FP-Tree": lambda c, v: FPTree(c, values=v, slots=3, slot_size=64),
        "NoveLSM": lambda c, v: NoveLSMStore(
            c, values=v, memtable_slots=64, slot_size=128
        ),
    }


def index_controller(seed: int) -> MemoryController:
    device = NVMDevice(
        capacity_bytes=768 * INDEX_SEGMENT,
        segment_size=INDEX_SEGMENT,
        initial_fill="random",
        seed=seed,
    )
    return MemoryController(device)


def _all_values(seed: int) -> list[bytes]:
    """One content distribution shared by the engine pool and the workload
    (the engine trains on the same kind of data the store later writes)."""
    bits, _ = make_image_dataset(
        ENGINE_SEGMENTS + N_OPS, VALUE_BYTES * 8, n_classes=6, noise=0.06,
        seed=seed,
    )
    return values_from_bits(bits)


def trained_engine(seed: int) -> E2NVM:
    segment = VALUE_BYTES
    seed_values = _all_values(seed)[:ENGINE_SEGMENTS]
    device = NVMDevice(
        capacity_bytes=ENGINE_SEGMENTS * segment,
        segment_size=segment,
        initial_fill="zero",
    )
    controller = MemoryController(device)
    for i, value in enumerate(seed_values):
        controller.write(i * segment, value)
    device.reset_stats()
    engine = E2NVM(controller, bench_config(n_clusters=6, seed=seed))
    engine.train()
    return engine


def workload(seed: int):
    payloads = _all_values(seed)[ENGINE_SEGMENTS:]
    rng = np.random.default_rng(seed)
    keys = [b"key%04d" % i for i in range(N_KEYS)]
    return [
        (keys[int(rng.integers(0, N_KEYS))], payloads[i])
        for i in range(N_OPS)
    ]


def run_figure12(seed: int = 0) -> list[list]:
    ops = workload(seed)
    rows = []
    for name, factory in factories().items():
        standalone = factory(index_controller(seed), None)
        for key, value in ops:
            standalone.put(key, value)
        before = standalone.bit_updates_per_data_bit()

        plugged = factory(
            index_controller(seed), PluggedValues(trained_engine(seed))
        )
        for key, value in ops:
            plugged.put(key, value)
        after = plugged.bit_updates_per_data_bit()
        improvement = 100.0 * (1.0 - after / before)
        rows.append([name, before, after, improvement])
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 12: bit updates per data bit, standalone vs plugged",
        ["structure", "standalone", "with E2-NVM", "improvement_%"],
        rows,
    )


def test_fig12_index_plugging(benchmark):
    rows = run_once(benchmark, run_figure12)
    report(rows)
    by_name = {r[0]: r for r in rows}
    # Plugging helps every structure.
    for name, (_, before, after, imp) in by_name.items():
        assert after < before, name
    # The plain B+-tree is the worst standalone performer (sorted leaves).
    worst = max(rows, key=lambda r: r[1])
    assert worst[0] == "B+-Tree"
    # Improvements are substantial for the structure the paper highlights.
    assert by_name["B+-Tree"][3] > 40.0


if __name__ == "__main__":
    report(run_figure12())
