"""Figure 14: bit flips per word under each padding strategy and position.

Protocol (§5.3): train the model on 80% of the dataset; build the test set
by cropping one-third of each test item (so it is shorter than the model
width), pad it back with each of the 7 strategies x 3 positions, and
measure the bit flips of the resulting placements.

Expected ordering: data-aware (IB/DB/MB) beats data-agnostic (0/1/random);
learned (LSTM) padding is best; edge padding is the most variable.

The paper runs this per dataset; we use the multi-class image-like dataset,
where cluster identity (and therefore padding quality) matters most —
single-scene video content collapses to one cluster and all paddings tie.
"""

from __future__ import annotations

import numpy as np

from common import bench_config, print_table, run_once, values_from_bits

from repro.core import E2NVM
from repro.core.padding import Padder
from repro.ml.lstm import LSTMPredictor
from repro.nvm import MemoryController, NVMDevice
from repro.workloads.datasets import make_image_dataset

SEGMENT = 64
N_SEGMENTS = 192
N_TEST = 120
STRATEGIES = ["zero", "one", "random", "input", "dataset", "memory", "learned"]
POSITIONS = ["begin", "edges", "end"]
WORD_BITS = 32


def build_engine_and_data(seed: int):
    bits, _ = make_image_dataset(
        N_SEGMENTS + N_TEST, SEGMENT * 8, n_classes=8, noise=0.05, seed=seed
    )
    train_bits, test_bits = bits[:N_SEGMENTS], bits[N_SEGMENTS:]

    device = NVMDevice(
        capacity_bytes=N_SEGMENTS * SEGMENT,
        segment_size=SEGMENT,
        initial_fill="zero",
    )
    controller = MemoryController(device)
    for i, value in enumerate(values_from_bits(train_bits)):
        controller.write(i * SEGMENT, value)
    device.reset_stats()
    engine = E2NVM(controller, bench_config(n_clusters=6, seed=seed))
    engine.train()

    lstm = LSTMPredictor(window_bits=64, chunk_bits=8, hidden_dim=24, seed=seed)
    lstm.fit(train_bits, epochs=4, lr=5e-3)
    return engine, train_bits, test_bits, lstm


def crop(item: np.ndarray, position: str, keep_fraction: float = 2 / 3):
    """Crop one third of the item away, from the side the padding will
    later fill (begin-padding fills a beginning crop, and so on)."""
    n_keep = int(item.size * keep_fraction)
    n_keep -= n_keep % 8
    if position == "begin":
        return item[item.size - n_keep :]
    if position == "end":
        return item[:n_keep]
    # edges: keep the middle.
    start = (item.size - n_keep) // 2
    return item[start : start + n_keep]


def run_figure14(seed: int = 0) -> list[list]:
    engine, train_bits, test_bits, lstm = build_engine_and_data(seed)
    memory_fraction = float(train_bits.mean())
    rows = []
    for position in POSITIONS:
        for strategy in STRATEGIES:
            padder = Padder(
                SEGMENT * 8,
                strategy=strategy,
                position=position,
                seed=seed,
                lstm=lstm if strategy == "learned" else None,
            )
            flips = []
            for item in test_bits:
                cropped = crop(item, position)
                padded = padder.pad(cropped, memory_ones_fraction=memory_fraction)
                cluster = engine.pipeline.model.predict_one(padded)
                addr = engine.dap.get(cluster, centroids=engine.pipeline.centroids)
                old_bits = np.unpackbits(engine.controller.peek(addr, SEGMENT))
                # Only the real (cropped) bits are written; measure their
                # flips against the matching region of the old content.
                if position == "begin":
                    region = old_bits[-cropped.size :]
                elif position == "end":
                    region = old_bits[: cropped.size]
                else:
                    start = (old_bits.size - cropped.size) // 2
                    region = old_bits[start : start + cropped.size]
                flips.append(float(np.abs(region - cropped).sum()))
                engine.dap.add(cluster, addr)  # non-destructive probe
            per_word = np.mean(flips) / (len(flips) and (cropped.size / WORD_BITS))
            rows.append([position, strategy, per_word, float(np.std(flips))])
    return rows


def report(rows: list[list]) -> None:
    print_table(
        "Figure 14: bit flips per 32-bit word by padding strategy/position",
        ["position", "strategy", "flips_per_word", "stddev"],
        rows,
    )


def test_fig14_padding_strategies(benchmark):
    rows = run_once(benchmark, run_figure14)
    report(rows)
    by_pos = {}
    for position, strategy, flips, std in rows:
        by_pos.setdefault(position, {})[strategy] = (flips, std)
    for position, strategies in by_pos.items():
        agnostic_best = min(
            strategies[s][0] for s in ("zero", "one", "random")
        )
        aware_best = min(
            strategies[s][0] for s in ("input", "dataset", "memory")
        )
        # Data-aware padding is at least competitive with data-agnostic.
        assert aware_best <= agnostic_best * 1.15, position
        # Learned padding is the best (or ties) overall.
        assert strategies["learned"][0] <= aware_best * 1.1, position


if __name__ == "__main__":
    report(run_figure14())
