"""Figure 16: package-energy timeline across train/write/retrain phases.

Protocol (§5.3): seed an object pool with ImageNet-like items, (1) train the
model, (2) overwrite the pool 5 times with items from the same distribution,
(3) retrain, (4) overwrite 4 more times.  The timeline shows training
spikes whose cost is repaid by the energy saved on similar-content writes;
the wear-leveling-only baseline has no spikes but writes far more bits.

Hardware power counters are replaced by :class:`PhaseTimeline`: NVM events
carry the energy/latency from the device models, model training/prediction
carry the FLOP-based compute cost.
"""

from __future__ import annotations

from common import bench_config, print_table, run_once, values_from_bits

from repro.baselines import ArbitraryPlacer
from repro.core import E2NVM
from repro.nvm import MemoryController, NVMDevice, SegmentSwapWearLeveling
from repro.profiling import ComputeCostModel, PhaseTimeline
from repro.workloads.datasets import make_image_dataset

SEGMENT = 64
N_SEGMENTS = 192
ROUNDS_BEFORE_RETRAIN = 5
ROUNDS_AFTER_RETRAIN = 4
WRITES_PER_ROUND = 96


def _record_device_delta(timeline, device, before):
    delta = device.stats.snapshot() - before
    timeline.record(
        delta.write_energy_pj + delta.read_energy_pj,
        (delta.write_latency_ns + delta.read_latency_ns) * 1e-9,
    )


def run_figure16(seed: int = 0):
    n_rounds = ROUNDS_BEFORE_RETRAIN + ROUNDS_AFTER_RETRAIN
    bits, _ = make_image_dataset(
        N_SEGMENTS + n_rounds * WRITES_PER_ROUND,
        SEGMENT * 8,
        n_classes=8,
        noise=0.06,
        seed=seed,
    )
    all_values = values_from_bits(bits)
    seed_values = all_values[:N_SEGMENTS]
    stream = all_values[N_SEGMENTS:]
    compute = ComputeCostModel()
    config = bench_config(n_clusters=8, seed=seed)

    def seeded(wear=None):
        device = NVMDevice(
            capacity_bytes=N_SEGMENTS * SEGMENT,
            segment_size=SEGMENT,
            initial_fill="random",
            seed=seed,
        )
        controller = MemoryController(device, wear_leveling=wear)
        limit = controller.n_segments
        for i, value in enumerate(seed_values[:limit]):
            controller.write(i * SEGMENT, value)
        device.reset_stats()
        return controller, device

    def training_burst(timeline):
        flops = compute.vae_training_flops(
            SEGMENT * 8, config.hidden, config.latent_dim, N_SEGMENTS,
            config.pretrain_epochs + config.joint_epochs,
        )
        timeline.record(
            compute.energy_pj(flops), compute.latency_seconds(flops)
        )

    # --- E2-NVM timeline --------------------------------------------------
    controller, device = seeded()
    engine = E2NVM(controller, config)
    timeline = PhaseTimeline()
    timeline.begin_phase("train")
    engine.train()
    training_burst(timeline)

    cursor = 0
    phases = []
    for round_idx in range(n_rounds):
        if round_idx == ROUNDS_BEFORE_RETRAIN:
            timeline.begin_phase("retrain")
            engine.train()
            training_burst(timeline)
        timeline.begin_phase(f"write-{round_idx + 1}")
        before = device.stats.snapshot()
        for _ in range(WRITES_PER_ROUND):
            value = stream[cursor % len(stream)]
            cursor += 1
            addr, _ = engine.write(value)
            engine.release(addr)
        _record_device_delta(timeline, device, before)
        phases.append(f"write-{round_idx + 1}")

    # --- wear-leveling-only baseline ---------------------------------------
    wl_controller, wl_device = seeded(
        wear=SegmentSwapWearLeveling(period=25, seed=seed)
    )
    wl_timeline = PhaseTimeline()
    placer = ArbitraryPlacer(
        [i * SEGMENT for i in range(wl_controller.n_segments)]
    )
    cursor = 0
    for round_idx in range(n_rounds):
        wl_timeline.begin_phase(f"write-{round_idx + 1}")
        before = wl_device.stats.snapshot()
        for _ in range(WRITES_PER_ROUND):
            value = stream[cursor % len(stream)]
            cursor += 1
            addr = placer.choose(None)
            wl_controller.write(addr, value)
            placer.release(addr, None)
        _record_device_delta(wl_timeline, wl_device, before)

    return timeline, wl_timeline, device, wl_device


def report(result) -> None:
    timeline, wl_timeline, device, wl_device = result
    marks = timeline.phase_marks()
    rows = []
    for (t, name), (t_next, _) in zip(marks, marks[1:] + [(timeline.now, "-")]):
        energy = timeline.total_energy_pj(name)
        rows.append([name, t, t_next - t, energy / 1e6])  # uJ
    print_table(
        "Figure 16 (E2-NVM): phase timeline",
        ["phase", "t_start_s", "duration_s", "energy_uJ"],
        rows,
    )
    print(
        f"E2-NVM total: {timeline.total_energy_pj() / 1e6:.1f} uJ over "
        f"{timeline.now:.3f} s; NVM bits programmed: "
        f"{device.stats.bits_programmed}"
    )
    print(
        f"wear-leveling-only total: {wl_timeline.total_energy_pj() / 1e6:.1f} "
        f"uJ over {wl_timeline.now:.4f} s; NVM bits programmed: "
        f"{wl_device.stats.bits_programmed}"
    )
    # At this scaled-down round size the training spike dominates; report
    # the amortisation point where the per-write savings repay it (the
    # paper's full-scale rounds sit beyond it).
    n_writes = (ROUNDS_BEFORE_RETRAIN + ROUNDS_AFTER_RETRAIN) * WRITES_PER_ROUND
    saving_per_write = (
        wl_timeline.total_energy_pj() - sum(
            timeline.total_energy_pj(f"write-{i + 1}") for i in range(9)
        )
    ) / n_writes
    if saving_per_write > 0:
        breakeven = timeline.total_energy_pj("train") / saving_per_write
        print(f"training cost amortised after ~{breakeven / 1e6:.1f}M writes")


def test_fig16_energy_timeline(benchmark):
    timeline, wl_timeline, device, wl_device = run_once(benchmark, run_figure16)
    report((timeline, wl_timeline, device, wl_device))
    # Training spikes exist and dominate their phases.
    assert timeline.total_energy_pj("train") > 0
    assert timeline.total_energy_pj("retrain") > 0
    # The placement savings show on the NVM side: far fewer programmed bits.
    assert device.stats.bits_programmed < 0.6 * wl_device.stats.bits_programmed
    # NVM-side energy per write phase is lower than the baseline's.
    e2_write_energy = sum(
        timeline.total_energy_pj(f"write-{i + 1}") for i in range(9)
    )
    wl_write_energy = sum(
        wl_timeline.total_energy_pj(f"write-{i + 1}") for i in range(9)
    )
    assert e2_write_energy < wl_write_energy


if __name__ == "__main__":
    report(run_figure16())
