"""Flip-N-Write — Cho & Lee, MICRO 2009 [10].

Per data word the controller stores either the value or its bitwise
complement, whichever programs fewer cells, and records the choice in one
flag cell per word.  Worst-case programmed cells per word drop from ``w`` to
``w/2 + 1``.

The flag cells live in a per-logical-address side table here (hardware keeps
them in dedicated tag cells); flag changes are accounted as ``aux_bits``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WritePlan, WriteScheme
from repro.util.bits import POPCOUNT_TABLE


class FNW(WriteScheme):
    """Flip-N-Write with a configurable word size.

    Args:
        word_bytes: word granularity; the original paper uses 32-bit words
            (4 bytes) plus one flag bit per word.
    """

    name = "fnw"

    def __init__(self, word_bytes: int = 4) -> None:
        if word_bytes <= 0:
            raise ValueError("word_bytes must be positive")
        self.word_bytes = word_bytes
        self._flags: dict[int, np.ndarray] = {}

    def reset(self) -> None:
        self._flags.clear()

    def prepare(
        self, logical_addr: int, old_stored: np.ndarray, new_logical: np.ndarray
    ) -> WritePlan:
        wb = self.word_bytes
        n = int(new_logical.size)
        n_words = -(-n // wb)
        padded_len = n_words * wb

        old = np.zeros(padded_len, dtype=np.uint8)
        old[:n] = old_stored
        new = np.zeros(padded_len, dtype=np.uint8)
        new[:n] = new_logical
        valid = np.zeros(padded_len, dtype=np.uint8)
        valid[:n] = 0xFF

        old_flags = self._flags.get(logical_addr)
        if old_flags is None or old_flags.size != n_words:
            old_flags = np.zeros(n_words, dtype=bool)

        # Candidate 0: store the plain value; candidate 1: store the
        # complement (complementing only the valid bytes).
        cand0 = new
        cand1 = np.bitwise_or(
            np.bitwise_and(np.bitwise_not(new), valid),
            np.bitwise_and(old, np.bitwise_not(valid)),
        )
        diff0 = np.bitwise_and(np.bitwise_xor(old, cand0), valid)
        diff1 = np.bitwise_and(np.bitwise_xor(old, cand1), valid)
        cost0 = POPCOUNT_TABLE[diff0].reshape(n_words, wb).sum(axis=1).astype(np.int64)
        cost1 = POPCOUNT_TABLE[diff1].reshape(n_words, wb).sum(axis=1).astype(np.int64)
        # Changing a word's flag programs one extra (flag) cell.
        cost0 += old_flags.astype(np.int64)
        cost1 += (~old_flags).astype(np.int64)

        use_flip = cost1 < cost0
        stored = np.where(
            np.repeat(use_flip, wb), cand1, cand0
        ).astype(np.uint8)
        mask = np.where(
            np.repeat(use_flip, wb), diff1, diff0
        ).astype(np.uint8)
        aux_bits = int(np.count_nonzero(use_flip != old_flags))

        self._flags[logical_addr] = use_flip
        return WritePlan(
            stored=stored[:n], program_mask=mask[:n], aux_bits=aux_bits
        )

    def decode(self, logical_addr: int, stored: np.ndarray) -> np.ndarray:
        flags = self._flags.get(logical_addr)
        if flags is None or not flags.any():
            return stored
        wb = self.word_bytes
        n = int(stored.size)
        n_words = -(-n // wb)
        padded = np.zeros(n_words * wb, dtype=np.uint8)
        padded[:n] = stored
        flip_bytes = np.repeat(flags[:n_words], wb)
        decoded = np.where(flip_bytes, np.bitwise_not(padded), padded)
        return decoded[:n].astype(np.uint8)
