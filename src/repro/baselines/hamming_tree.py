"""Hamming-Tree placement — Kargar & Nawab, CIDR 2021 / SIGMOD 2023 [28, 30].

Free memory segments are organised in a metric tree keyed by their content's
Hamming distance; an incoming write claims the (approximately) nearest free
segment.  We implement the metric tree as a BK-tree, which supports exact
nearest-neighbour search with triangle-inequality pruning.

Claimed segments are tombstoned in place; the tree is rebuilt when live nodes
drop below half, keeping amortised insert/search costs logarithmic in pool
size for clustered contents.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Placer
from repro.util.bits import bits_to_bytes, hamming_distance


class _Node:
    __slots__ = ("addr", "content", "active", "children")

    def __init__(self, addr: int, content: bytes) -> None:
        self.addr = addr
        self.content = content
        self.active = True
        self.children: dict[int, _Node] = {}


class HammingTreePlacer(Placer):
    """BK-tree over free-segment contents with nearest-neighbour claiming."""

    name = "hamming-tree"

    def __init__(self, free_addresses, contents) -> None:
        """``contents`` maps address -> current bit vector of that segment."""
        self._root: _Node | None = None
        self._live = 0
        self._total = 0
        for addr in free_addresses:
            self._insert(addr, bits_to_bytes(np.asarray(contents[addr])))

    def choose(self, value_bits: np.ndarray) -> int:
        if self._live == 0:
            raise RuntimeError("no free segments available")
        target = bits_to_bytes(np.asarray(value_bits))
        node = self._nearest(target)
        assert node is not None
        node.active = False
        self._live -= 1
        if self._total > 16 and self._live * 2 < self._total:
            self._rebuild()
        return node.addr

    def release(self, addr: int, content_bits: np.ndarray) -> None:
        self._insert(addr, bits_to_bytes(np.asarray(content_bits)))

    def free_count(self) -> int:
        return self._live

    def _insert(self, addr: int, content: bytes) -> None:
        node = _Node(addr, content)
        self._live += 1
        self._total += 1
        if self._root is None:
            self._root = node
            return
        cursor = self._root
        while True:
            dist = hamming_distance(content, cursor.content)
            child = cursor.children.get(dist)
            if child is None:
                cursor.children[dist] = node
                return
            cursor = child

    def _nearest(self, target: bytes) -> _Node | None:
        best: _Node | None = None
        best_dist = len(target) * 8 + 1
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            dist = hamming_distance(target, node.content)
            if node.active and dist < best_dist:
                best, best_dist = node, dist
                if dist == 0:
                    break
            # Triangle inequality: a child at edge distance d can hold points
            # no closer than |dist - d| to the target.
            for edge, child in node.children.items():
                if abs(dist - edge) < best_dist:
                    stack.append(child)
        return best

    def _rebuild(self) -> None:
        survivors: list[tuple[int, bytes]] = []
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            if node.active:
                survivors.append((node.addr, node.content))
            stack.extend(node.children.values())
        self._root = None
        self._live = 0
        self._total = 0
        for addr, content in survivors:
            self._insert(addr, content)
