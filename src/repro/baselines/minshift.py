"""MinShift — Luo et al., RTCSA 2014 [37]: bit-shifting to reduce flips.

For every data word the controller considers circular rotations of the new
value and stores the rotation that programs the fewest cells, recording the
shift amount in per-word tag cells.  We rotate at byte granularity (a word of
``word_bytes`` bytes has ``word_bytes`` candidate rotations and
``ceil(log2(word_bytes))`` tag bits), which preserves the mechanism while
keeping decode exact.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import WritePlan, WriteScheme
from repro.util.bits import POPCOUNT_TABLE


class MinShift(WriteScheme):
    """Per-word minimum-cost circular rotation with tag-bit accounting."""

    name = "minshift"

    def __init__(self, word_bytes: int = 4) -> None:
        if word_bytes <= 1:
            raise ValueError("word_bytes must be >= 2 for shifting to help")
        self.word_bytes = word_bytes
        self.tag_bits_per_word = max(1, math.ceil(math.log2(word_bytes)))
        self._shifts: dict[int, np.ndarray] = {}

    def reset(self) -> None:
        self._shifts.clear()

    def prepare(
        self, logical_addr: int, old_stored: np.ndarray, new_logical: np.ndarray
    ) -> WritePlan:
        wb = self.word_bytes
        n = int(new_logical.size)
        n_full = n // wb
        tail = n - n_full * wb
        n_words = n_full + (1 if tail else 0)

        old_shifts = self._shifts.get(logical_addr)
        if old_shifts is None or old_shifts.size != n_words:
            old_shifts = np.zeros(n_words, dtype=np.int64)

        stored = np.empty(n, dtype=np.uint8)
        mask = np.empty(n, dtype=np.uint8)
        new_shifts = np.zeros(n_words, dtype=np.int64)
        aux_bits = 0

        if n_full:
            old_words = old_stored[: n_full * wb].reshape(n_full, wb)
            new_words = new_logical[: n_full * wb].reshape(n_full, wb)
            # costs[r, w] = programmed cells if word w is stored rotated by r.
            costs = np.empty((wb, n_full), dtype=np.int64)
            diffs = np.empty((wb, n_full, wb), dtype=np.uint8)
            for r in range(wb):
                cand = np.roll(new_words, r, axis=1)
                diff = np.bitwise_xor(old_words, cand)
                diffs[r] = diff
                costs[r] = POPCOUNT_TABLE[diff].sum(axis=1)
            # Tag rewrite cost: changing the shift programs up to tag_bits.
            tag_penalty = (
                np.arange(wb)[:, None] != old_shifts[:n_full][None, :]
            ) * self.tag_bits_per_word
            best = np.argmin(costs + tag_penalty, axis=0)
            rows = np.arange(n_full)
            chosen_diff = diffs[best, rows]
            chosen_cand = np.empty_like(new_words)
            for r in range(wb):
                sel = best == r
                if sel.any():
                    chosen_cand[sel] = np.roll(new_words[sel], r, axis=1)
            stored[: n_full * wb] = chosen_cand.reshape(-1)
            mask[: n_full * wb] = chosen_diff.reshape(-1)
            new_shifts[:n_full] = best
            aux_bits += int(
                np.count_nonzero(best != old_shifts[:n_full])
            ) * self.tag_bits_per_word

        if tail:
            # The final partial word cannot rotate without spilling; store it
            # plainly (shift 0) with a DCW mask.
            old_tail = old_stored[n_full * wb :]
            new_tail = new_logical[n_full * wb :]
            stored[n_full * wb :] = new_tail
            mask[n_full * wb :] = np.bitwise_xor(old_tail, new_tail)
            if old_shifts[n_full] != 0:
                aux_bits += self.tag_bits_per_word

        self._shifts[logical_addr] = new_shifts
        return WritePlan(stored=stored, program_mask=mask, aux_bits=aux_bits)

    def decode(self, logical_addr: int, stored: np.ndarray) -> np.ndarray:
        shifts = self._shifts.get(logical_addr)
        if shifts is None or not shifts.any():
            return stored
        wb = self.word_bytes
        n = int(stored.size)
        n_full = n // wb
        decoded = stored.copy()
        if n_full:
            words = decoded[: n_full * wb].reshape(n_full, wb)
            for r in np.unique(shifts[:n_full]):
                if r == 0:
                    continue
                sel = shifts[:n_full] == r
                words[sel] = np.roll(words[sel], -int(r), axis=1)
            decoded[: n_full * wb] = words.reshape(-1)
        return decoded
