"""Flip-Mirror-Rotate — Palangappa & Mohanram, GLSVLSI 2015 [46].

Per 32-bit word the controller considers four encodings — identity, bitwise
flip, mirror (bit reversal), and rotate-right-by-one — and stores whichever
programs the fewest cells, recording the choice in two tag bits per word.
A strict superset of Flip-N-Write's search space.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WritePlan, WriteScheme
from repro.util.bits import POPCOUNT_TABLE

#: Bit-reversal lookup table for a single byte.
_BIT_REVERSE = np.array(
    [int(f"{b:08b}"[::-1], 2) for b in range(256)], dtype=np.uint8
)

_IDENTITY, _FLIP, _MIRROR, _ROTATE = 0, 1, 2, 3
_TAG_BITS = 2
_WORD_BYTES = 4


def _mirror_words(words: np.ndarray) -> np.ndarray:
    """Reverse the bit order of each 4-byte word (rows)."""
    return _BIT_REVERSE[words[:, ::-1]]

def _rotate_words(words: np.ndarray) -> np.ndarray:
    """Rotate each 32-bit word right by one bit."""
    as_u32 = words.copy().view(">u4").reshape(-1)
    rotated = (as_u32 >> np.uint32(1)) | (as_u32 << np.uint32(31))
    return rotated.astype(">u4").view(np.uint8).reshape(-1, _WORD_BYTES)

def _unrotate_words(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_rotate_words` (rotate left by one bit)."""
    as_u32 = words.copy().view(">u4").reshape(-1)
    rotated = (as_u32 << np.uint32(1)) | (as_u32 >> np.uint32(31))
    return rotated.astype(">u4").view(np.uint8).reshape(-1, _WORD_BYTES)


class FMR(WriteScheme):
    """Per-word minimum over {identity, flip, mirror, rotate-1}."""

    name = "fmr"

    def __init__(self) -> None:
        self._tags: dict[int, np.ndarray] = {}

    def reset(self) -> None:
        self._tags.clear()

    def prepare(
        self, logical_addr: int, old_stored: np.ndarray, new_logical: np.ndarray
    ) -> WritePlan:
        wb = _WORD_BYTES
        n = int(new_logical.size)
        n_full = n // wb
        tail = n - n_full * wb
        n_words = n_full + (1 if tail else 0)

        old_tags = self._tags.get(logical_addr)
        if old_tags is None or old_tags.size != n_words:
            old_tags = np.zeros(n_words, dtype=np.int64)

        stored = np.empty(n, dtype=np.uint8)
        mask = np.empty(n, dtype=np.uint8)
        new_tags = np.zeros(n_words, dtype=np.int64)
        aux_bits = 0

        if n_full:
            old_words = old_stored[: n_full * wb].reshape(n_full, wb)
            new_words = new_logical[: n_full * wb].reshape(n_full, wb)
            candidates = np.stack(
                [
                    new_words,
                    np.bitwise_not(new_words),
                    _mirror_words(new_words),
                    _rotate_words(new_words),
                ]
            )  # (4, n_full, wb)
            diffs = np.bitwise_xor(candidates, old_words[None, :, :])
            costs = POPCOUNT_TABLE[diffs].sum(axis=2).astype(np.int64)
            tag_penalty = (
                np.arange(4)[:, None] != old_tags[:n_full][None, :]
            ) * _TAG_BITS
            best = np.argmin(costs + tag_penalty, axis=0)
            rows = np.arange(n_full)
            stored[: n_full * wb] = candidates[best, rows].reshape(-1)
            mask[: n_full * wb] = diffs[best, rows].reshape(-1)
            new_tags[:n_full] = best
            aux_bits += int(np.count_nonzero(best != old_tags[:n_full])) * _TAG_BITS

        if tail:
            # Partial trailing word: store plainly (identity tag).
            old_tail = old_stored[n_full * wb :]
            new_tail = new_logical[n_full * wb :]
            stored[n_full * wb :] = new_tail
            mask[n_full * wb :] = np.bitwise_xor(old_tail, new_tail)
            if old_tags[n_full] != _IDENTITY:
                aux_bits += _TAG_BITS

        self._tags[logical_addr] = new_tags
        return WritePlan(stored=stored, program_mask=mask, aux_bits=aux_bits)

    def decode(self, logical_addr: int, stored: np.ndarray) -> np.ndarray:
        tags = self._tags.get(logical_addr)
        if tags is None or not tags.any():
            return stored
        wb = _WORD_BYTES
        n = int(stored.size)
        n_full = n // wb
        decoded = stored.copy()
        if n_full:
            words = decoded[: n_full * wb].reshape(n_full, wb)
            for tag in np.unique(tags[:n_full]):
                sel = tags[:n_full] == tag
                if tag == _FLIP:
                    words[sel] = np.bitwise_not(words[sel])
                elif tag == _MIRROR:
                    words[sel] = _mirror_words(words[sel])
                elif tag == _ROTATE:
                    words[sel] = _unrotate_words(words[sel])
            decoded[: n_full * wb] = words.reshape(-1)
        return decoded
