"""The no-optimisation baselines: program every cell, place anywhere.

``NaiveWrite`` models a controller without read-before-write: every cell in
the written range receives a pulse.  ``ArbitraryPlacer`` models the placement
behaviour the paper ascribes to prior systems (§1): "new data items select an
arbitrary location in memory" — a FIFO free list.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.baselines.base import Placer, WritePlan, WriteScheme
from repro.util.bits import bits_to_bytes


class NaiveWrite(WriteScheme):
    """Program all cells on every write (no read-before-write)."""

    name = "naive"

    def prepare(
        self, logical_addr: int, old_stored: np.ndarray, new_logical: np.ndarray
    ) -> WritePlan:
        return WritePlan(stored=new_logical, program_mask=None)


class ArbitraryPlacer(Placer):
    """Content-oblivious placement: a FIFO free list of segment addresses."""

    name = "arbitrary"

    def __init__(self, free_addresses) -> None:
        self._free: deque[int] = deque(free_addresses)

    def choose(self, value_bits: np.ndarray) -> int:
        if not self._free:
            raise RuntimeError("no free segments available")
        return self._free.popleft()

    def release(self, addr: int, content_bits: np.ndarray) -> None:
        self._free.append(addr)

    def free_count(self) -> int:
        return len(self._free)


class BestFitPlacer(Placer):
    """Oracle placement: exhaustively scan every free segment for the minimum
    Hamming distance.

    This is the upper bound that clustering approximates; it is quadratic in
    pool size and exists for the first-fit-vs-best-fit ablation bench.
    """

    name = "best-fit"

    def __init__(self, free_addresses, contents) -> None:
        """``contents`` maps address -> current bit vector of that segment."""
        self._free: dict[int, np.ndarray] = {
            addr: np.asarray(contents[addr], dtype=np.float32)
            for addr in free_addresses
        }

    def choose(self, value_bits: np.ndarray) -> int:
        if not self._free:
            raise RuntimeError("no free segments available")
        value_bits = np.asarray(value_bits, dtype=np.float32)
        best_addr, best_dist = -1, None
        for addr, content in self._free.items():
            dist = float(np.sum(np.abs(content - value_bits)))
            if best_dist is None or dist < best_dist:
                best_addr, best_dist = addr, dist
        del self._free[best_addr]
        return best_addr

    def release(self, addr: int, content_bits: np.ndarray) -> None:
        self._free[addr] = np.asarray(content_bits, dtype=np.float32)

    def free_count(self) -> int:
        return len(self._free)

    def content_of(self, addr: int) -> bytes:
        """Current content bytes tracked for a free segment (testing aid)."""
        return bits_to_bytes(self._free[addr])
