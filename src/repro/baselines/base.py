"""Interfaces shared by write schemes and placement strategies.

A :class:`WriteScheme` answers "given this address already holds X and I want
it to logically hold Y, which cells do I pulse and what do I store?".  A
:class:`Placer` answers "which free address should this value be written to?".
The two compose: E2-NVM (a placer) runs above DCW (a scheme), as do all the
baselines in Figure 10.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WritePlan:
    """The physical effect of one logical write.

    Attributes:
        stored: bytes to place on the media (possibly an encoded form of the
            logical data, e.g. bit-flipped words under FNW).
        program_mask: ``uint8`` mask of cells to pulse; ``None`` pulses all.
        aux_bits: metadata cells (flags/tags) programmed alongside the data.
    """

    stored: np.ndarray
    program_mask: np.ndarray | None
    aux_bits: int = 0


class WriteScheme(abc.ABC):
    """A controller-level data encoding that reduces programmed cells.

    Schemes may keep per-address decode metadata (the hardware keeps these in
    tag bits); metadata is keyed by logical address, so it survives wear-
    leveling remapping of physical segments.
    """

    name: str = "scheme"

    @abc.abstractmethod
    def prepare(
        self, logical_addr: int, old_stored: np.ndarray, new_logical: np.ndarray
    ) -> WritePlan:
        """Plan the media write for ``new_logical`` over ``old_stored``.

        Implementations must also update their decode metadata so that a
        subsequent :meth:`decode` at ``logical_addr`` recovers
        ``new_logical``.
        """

    def prepare_many(
        self,
        logical_addrs,
        old_stored: np.ndarray,
        new_logical: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Plan a batch of equal-length writes as dense matrices.

        Args:
            logical_addrs: one logical address per row.
            old_stored: ``(B, L)`` currently-stored bytes.
            new_logical: ``(B, L)`` bytes to logically store.

        Returns ``(stored, program_masks, aux_bits)`` where ``stored`` and
        ``program_masks`` are ``(B, L)`` ``uint8`` matrices and ``aux_bits``
        is a length-``B`` ``int64`` vector.  The default implementation
        loops :meth:`prepare` row by row (preserving any per-address decode
        metadata updates, in batch order); schemes with content-independent
        plans override it with a vectorised version.
        """
        new_logical = np.atleast_2d(np.asarray(new_logical, dtype=np.uint8))
        old_stored = np.atleast_2d(np.asarray(old_stored, dtype=np.uint8))
        stored = np.empty_like(new_logical)
        masks = np.empty_like(new_logical)
        aux = np.zeros(new_logical.shape[0], dtype=np.int64)
        for i, logical_addr in enumerate(logical_addrs):
            plan = self.prepare(int(logical_addr), old_stored[i], new_logical[i])
            stored[i] = plan.stored
            if plan.program_mask is None:
                masks[i] = 0xFF
            else:
                masks[i] = plan.program_mask
            aux[i] = plan.aux_bits
        return stored, masks, aux

    def decode(self, logical_addr: int, stored: np.ndarray) -> np.ndarray:
        """Recover the logical bytes from the stored (encoded) bytes."""
        return stored

    def reset(self) -> None:
        """Drop all decode metadata (e.g. when the device is re-initialised)."""


class Placer(abc.ABC):
    """A software strategy choosing which free segment receives a write."""

    name: str = "placer"

    @abc.abstractmethod
    def choose(self, value_bits: np.ndarray) -> int:
        """Pick and claim a free segment address for a value (bit vector).

        Raises:
            RuntimeError: when no free segment is available.
        """

    @abc.abstractmethod
    def release(self, addr: int, content_bits: np.ndarray) -> None:
        """Return segment ``addr`` (holding ``content_bits``) to the free set."""

    @abc.abstractmethod
    def free_count(self) -> int:
        """Number of free segments currently claimable."""
