"""Interfaces shared by write schemes and placement strategies.

A :class:`WriteScheme` answers "given this address already holds X and I want
it to logically hold Y, which cells do I pulse and what do I store?".  A
:class:`Placer` answers "which free address should this value be written to?".
The two compose: E2-NVM (a placer) runs above DCW (a scheme), as do all the
baselines in Figure 10.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WritePlan:
    """The physical effect of one logical write.

    Attributes:
        stored: bytes to place on the media (possibly an encoded form of the
            logical data, e.g. bit-flipped words under FNW).
        program_mask: ``uint8`` mask of cells to pulse; ``None`` pulses all.
        aux_bits: metadata cells (flags/tags) programmed alongside the data.
    """

    stored: np.ndarray
    program_mask: np.ndarray | None
    aux_bits: int = 0


class WriteScheme(abc.ABC):
    """A controller-level data encoding that reduces programmed cells.

    Schemes may keep per-address decode metadata (the hardware keeps these in
    tag bits); metadata is keyed by logical address, so it survives wear-
    leveling remapping of physical segments.
    """

    name: str = "scheme"

    @abc.abstractmethod
    def prepare(
        self, logical_addr: int, old_stored: np.ndarray, new_logical: np.ndarray
    ) -> WritePlan:
        """Plan the media write for ``new_logical`` over ``old_stored``.

        Implementations must also update their decode metadata so that a
        subsequent :meth:`decode` at ``logical_addr`` recovers
        ``new_logical``.
        """

    def decode(self, logical_addr: int, stored: np.ndarray) -> np.ndarray:
        """Recover the logical bytes from the stored (encoded) bytes."""
        return stored

    def reset(self) -> None:
        """Drop all decode metadata (e.g. when the device is re-initialised)."""


class Placer(abc.ABC):
    """A software strategy choosing which free segment receives a write."""

    name: str = "placer"

    @abc.abstractmethod
    def choose(self, value_bits: np.ndarray) -> int:
        """Pick and claim a free segment address for a value (bit vector).

        Raises:
            RuntimeError: when no free segment is available.
        """

    @abc.abstractmethod
    def release(self, addr: int, content_bits: np.ndarray) -> None:
        """Return segment ``addr`` (holding ``content_bits``) to the free set."""

    @abc.abstractmethod
    def free_count(self) -> int:
        """Number of free segments currently claimable."""
