"""Baseline write schemes and placement strategies from the paper's evaluation.

Two families are reproduced (§5.2):

**Read-before-write (RBW) bit-flip reduction schemes** — run inside the
memory controller and transform the data written to a *fixed* address:

- :class:`~repro.baselines.naive.NaiveWrite` — program every cell (no RBW).
- :class:`~repro.baselines.dcw.DCW` — Data-Comparison Write [52]: program
  only differing cells.
- :class:`~repro.baselines.fnw.FNW` — Flip-N-Write [10]: per word, store the
  value or its complement, whichever flips fewer cells.
- :class:`~repro.baselines.minshift.MinShift` — [37]: choose a per-word
  circular shift minimising flips.
- :class:`~repro.baselines.captopril.Captopril` — [23]: mask flips on the
  hottest bit positions within each word.
- :class:`~repro.baselines.fmr.FMR` — Flip-Mirror-Rotate [46]: per-word
  minimum over four encodings.
- :class:`~repro.baselines.fpc.FPC` — frequent-pattern-compressed writes
  [15]: compressible words program only their short form.

**Memory-aware placement strategies** — run in software and choose *which*
free address an incoming value is written to:

- :class:`~repro.baselines.pnw.PNWPlacer` — Predict-and-Write [26]: K-means
  (optionally PCA+K-means) over raw segment bits.
- :class:`~repro.baselines.hamming_tree.HammingTreePlacer` — Hamming-Tree
  [28, 30]: a BK-tree over free-segment contents, nearest-neighbour lookup.
- :class:`~repro.baselines.naive.ArbitraryPlacer` — FIFO free list (what
  "prior methods pick arbitrarily" means in §1).

E2-NVM itself is the VAE+K-means placer in :mod:`repro.core`.
"""

from repro.baselines.base import Placer, WritePlan, WriteScheme
from repro.baselines.naive import ArbitraryPlacer, NaiveWrite
from repro.baselines.dcw import DCW
from repro.baselines.fnw import FNW
from repro.baselines.minshift import MinShift
from repro.baselines.captopril import Captopril
from repro.baselines.datacon import DataConPlacer
from repro.baselines.fmr import FMR
from repro.baselines.fpc import FPC
from repro.baselines.hamming_tree import HammingTreePlacer
from repro.baselines.pnw import PNWPlacer

__all__ = [
    "WritePlan",
    "WriteScheme",
    "Placer",
    "NaiveWrite",
    "ArbitraryPlacer",
    "DCW",
    "FNW",
    "MinShift",
    "Captopril",
    "FMR",
    "FPC",
    "DataConPlacer",
    "HammingTreePlacer",
    "PNWPlacer",
]
