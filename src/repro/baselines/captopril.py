"""Captopril — Jalili & Sarbazi-Azad, DATE 2016 [23].

Captopril reduces the *pressure* of bit flips on hot cell locations: instead
of minimising the raw number of programmed cells, it biases the per-word
store-plain / store-complement decision by how worn the touched cell
positions already are, steering programming pulses away from hot cells.

We reproduce that mechanism on top of the Flip-N-Write encoding: each
candidate's cost is the *wear-weighted* sum of the cells it would program,
with weights derived from a per-bit-position hotness histogram maintained
online.  The original paper tracks hotness in controller SRAM at block
granularity; a per-position histogram over the word is the same signal at the
granularity our simulator exposes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WritePlan, WriteScheme


class Captopril(WriteScheme):
    """Hot-location-aware flip decision.

    Args:
        word_bytes: decision granularity (matches FNW's default).
        hot_weight: how strongly wear skews the cost; 0 degenerates to FNW.
    """

    name = "captopril"

    def __init__(self, word_bytes: int = 4, hot_weight: float = 1.0) -> None:
        if word_bytes <= 0:
            raise ValueError("word_bytes must be positive")
        self.word_bytes = word_bytes
        self.hot_weight = hot_weight
        self._flags: dict[int, np.ndarray] = {}
        # Programming pulses seen so far per bit position within a word.
        self._position_wear = np.zeros(word_bytes * 8, dtype=np.float64)

    def reset(self) -> None:
        self._flags.clear()
        self._position_wear[:] = 0.0

    def prepare(
        self, logical_addr: int, old_stored: np.ndarray, new_logical: np.ndarray
    ) -> WritePlan:
        wb = self.word_bytes
        n = int(new_logical.size)
        n_words = -(-n // wb)
        padded_len = n_words * wb

        old = np.zeros(padded_len, dtype=np.uint8)
        old[:n] = old_stored
        new = np.zeros(padded_len, dtype=np.uint8)
        new[:n] = new_logical
        valid = np.zeros(padded_len, dtype=np.uint8)
        valid[:n] = 0xFF

        old_flags = self._flags.get(logical_addr)
        if old_flags is None or old_flags.size != n_words:
            old_flags = np.zeros(n_words, dtype=bool)

        cand1 = np.bitwise_or(
            np.bitwise_and(np.bitwise_not(new), valid),
            np.bitwise_and(old, np.bitwise_not(valid)),
        )
        diff0 = np.bitwise_and(np.bitwise_xor(old, new), valid)
        diff1 = np.bitwise_and(np.bitwise_xor(old, cand1), valid)

        weights = self._position_weights()
        bits0 = np.unpackbits(diff0).reshape(n_words, wb * 8)
        bits1 = np.unpackbits(diff1).reshape(n_words, wb * 8)
        cost0 = bits0 @ weights + old_flags.astype(np.float64)
        cost1 = bits1 @ weights + (~old_flags).astype(np.float64)

        use_flip = cost1 < cost0
        flip_bytes = np.repeat(use_flip, wb)
        stored = np.where(flip_bytes, cand1, new).astype(np.uint8)
        mask = np.where(flip_bytes, diff1, diff0).astype(np.uint8)
        aux_bits = int(np.count_nonzero(use_flip != old_flags))

        chosen_bits = np.where(use_flip[:, None], bits1, bits0)
        self._position_wear += chosen_bits.sum(axis=0)
        self._flags[logical_addr] = use_flip
        return WritePlan(
            stored=stored[:n], program_mask=mask[:n], aux_bits=aux_bits
        )

    def decode(self, logical_addr: int, stored: np.ndarray) -> np.ndarray:
        flags = self._flags.get(logical_addr)
        if flags is None or not flags.any():
            return stored
        wb = self.word_bytes
        n = int(stored.size)
        n_words = -(-n // wb)
        padded = np.zeros(n_words * wb, dtype=np.uint8)
        padded[:n] = stored
        flip_bytes = np.repeat(flags[:n_words], wb)
        decoded = np.where(flip_bytes, np.bitwise_not(padded), padded)
        return decoded[:n].astype(np.uint8)

    def _position_weights(self) -> np.ndarray:
        total = self._position_wear.sum()
        if total == 0:
            return np.ones_like(self._position_wear)
        mean = total / self._position_wear.size
        return 1.0 + self.hot_weight * (self._position_wear / mean - 1.0).clip(min=0)
