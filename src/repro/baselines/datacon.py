"""DATACON — Song et al., ISMM 2020 [48]: data-content-aware placement.

DATACON "reduces the latency and energy of PCM writes by redirecting the
write requests to a new physical address ... to overwrite memory locations
containing all-zeros or all-ones depending on the content of the incoming
writes" (§2.3).  It is content-aware like E2-NVM but far coarser: free
locations are bucketed only by their ones-density (mostly-zero vs
mostly-one vs mixed), and an incoming value is steered to the bucket
matching its own density.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.baselines.base import Placer


class DataConPlacer(Placer):
    """Ones-density bucketing: zeros / mixed / ones free pools.

    Args:
        low_threshold: ones fraction below which content counts as
            "mostly zeros".
        high_threshold: ones fraction above which content counts as
            "mostly ones".
    """

    name = "datacon"

    def __init__(
        self, low_threshold: float = 0.35, high_threshold: float = 0.65
    ) -> None:
        if not 0.0 < low_threshold < high_threshold < 1.0:
            raise ValueError("need 0 < low < high < 1")
        self.low_threshold = low_threshold
        self.high_threshold = high_threshold
        self._pools: dict[str, deque[int]] = {
            "zeros": deque(), "mixed": deque(), "ones": deque(),
        }

    def fit(self, free_addresses, contents) -> "DataConPlacer":
        """Bucket the free segments; ``contents[addr]`` is a bit vector."""
        for addr in free_addresses:
            self._pools[self._bucket(contents[addr])].append(addr)
        return self

    def choose(self, value_bits: np.ndarray) -> int:
        bucket = self._bucket(value_bits)
        order = {
            "zeros": ("zeros", "mixed", "ones"),
            "mixed": ("mixed", "zeros", "ones"),
            "ones": ("ones", "mixed", "zeros"),
        }[bucket]
        for name in order:
            if self._pools[name]:
                return self._pools[name].popleft()
        raise RuntimeError("no free segments available")

    def release(self, addr: int, content_bits: np.ndarray) -> None:
        self._pools[self._bucket(content_bits)].append(addr)

    def free_count(self) -> int:
        return sum(len(pool) for pool in self._pools.values())

    def pool_sizes(self) -> dict[str, int]:
        """Free addresses per density bucket."""
        return {name: len(pool) for name, pool in self._pools.items()}

    def _bucket(self, bits: np.ndarray) -> str:
        fraction = float(np.asarray(bits, dtype=np.float64).mean())
        if fraction < self.low_threshold:
            return "zeros"
        if fraction > self.high_threshold:
            return "ones"
        return "mixed"
