"""Predict-and-Write (PNW) — Kargar, Litz & Nawab, ICDE 2021 [26].

PNW clusters free memory segments with plain K-means over their raw bit
content (optionally preceded by PCA when the feature count makes raw K-means
intractable — the trade-off Figure 4 quantifies), then serves each incoming
write from the nearest cluster's free list.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.baselines.base import Placer
from repro.ml.kmeans import KMeans
from repro.ml.pca import PCA


class PNWPlacer(Placer):
    """K-means (or PCA+K-means) placement over free-segment contents.

    Args:
        n_clusters: K for the clustering model.
        pca_components: if set, project contents with PCA before K-means
            (PNW's scaling mode for large segments).
        seed: RNG seed for the models.
    """

    name = "pnw"

    def __init__(
        self,
        n_clusters: int,
        pca_components: int | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.n_clusters = n_clusters
        self.pca_components = pca_components
        self._seed = seed
        self._pca: PCA | None = None
        self._kmeans: KMeans | None = None
        self._pools: dict[int, deque[int]] = {}

    def fit(self, free_addresses, contents) -> "PNWPlacer":
        """Cluster the free segments; ``contents[addr]`` is a bit vector."""
        addresses = list(free_addresses)
        if len(addresses) < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} free segments"
            )
        X = np.stack([np.asarray(contents[a], dtype=np.float64) for a in addresses])
        if self.pca_components is not None:
            self._pca = PCA(self.pca_components)
            X = self._pca.fit_transform(X)
        self._kmeans = KMeans(self.n_clusters, seed=self._seed).fit(X)
        self._pools = {c: deque() for c in range(self.n_clusters)}
        for addr, label in zip(addresses, self._kmeans.labels_):
            self._pools[int(label)].append(addr)
        return self

    def predict(self, value_bits: np.ndarray) -> int:
        """Cluster id for one value's bit vector."""
        if self._kmeans is None:
            raise RuntimeError("placer is not fitted")
        x = np.atleast_2d(np.asarray(value_bits, dtype=np.float64))
        if self._pca is not None:
            x = self._pca.transform(x)
        return int(self._kmeans.predict(x)[0])

    def choose(self, value_bits: np.ndarray) -> int:
        cluster = self.predict(value_bits)
        pool = self._pools.get(cluster)
        if pool:
            return pool.popleft()
        return self._fallback(cluster)

    def release(self, addr: int, content_bits: np.ndarray) -> None:
        self._pools[self.predict(content_bits)].append(addr)

    def free_count(self) -> int:
        return sum(len(pool) for pool in self._pools.values())

    def pool_sizes(self) -> dict[int, int]:
        """Free addresses per cluster (for retrain-threshold logic/tests)."""
        return {c: len(pool) for c, pool in self._pools.items()}

    def _fallback(self, cluster: int) -> int:
        """Serve from the nearest non-empty cluster by centroid distance."""
        assert self._kmeans is not None
        centers = self._kmeans.cluster_centers_
        target = centers[cluster]
        candidates = sorted(
            (c for c, pool in self._pools.items() if pool),
            key=lambda c: float(np.sum((centers[c] - target) ** 2)),
        )
        if not candidates:
            raise RuntimeError("no free segments available")
        return self._pools[candidates[0]].popleft()
