"""FPC-based bit-write reduction — Dgien et al., NANOARCH 2014 [15].

Frequent-Pattern Compression classifies each 32-bit word into one of a few
common patterns (all zeros, a sign-extended 8-bit value, a sign-extended
16-bit value, or uncompressible); compressible words are written in their
short form, so only the compressed bits plus a 2-bit pattern prefix are
programmed — the rest of the word's cells are left untouched.

The compressed bits occupy the word's leading bytes; the pattern prefix
lives in per-word tag cells (side table), accounted as ``aux_bits``.  A
differential (DCW) mask is applied on top of the compressed form.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WritePlan, WriteScheme

_WORD_BYTES = 4
_PREFIX_BITS = 2

_ZERO, _SIGN8, _SIGN16, _RAW = 0, 1, 2, 3
#: Compressed byte length per pattern.
_PATTERN_BYTES = {_ZERO: 0, _SIGN8: 1, _SIGN16: 2, _RAW: 4}


def _classify(word: np.ndarray) -> int:
    """Pick the shortest FPC pattern for one big-endian 4-byte word."""
    b0, b1, b2, b3 = (int(x) for x in word)
    if b0 == b1 == b2 == b3 == 0:
        return _ZERO
    # Sign-extended 8-bit: the top three bytes replicate bit 7 of byte 3.
    ext8 = 0xFF if b3 & 0x80 else 0x00
    if b0 == b1 == b2 == ext8:
        return _SIGN8
    ext16 = 0xFF if b2 & 0x80 else 0x00
    if b0 == b1 == ext16:
        return _SIGN16
    return _RAW


class FPC(WriteScheme):
    """Frequent-pattern-compressed differential writes (32-bit words,
    big-endian within the word)."""

    name = "fpc"

    def __init__(self) -> None:
        self._patterns: dict[int, np.ndarray] = {}

    def reset(self) -> None:
        self._patterns.clear()

    def prepare(
        self, logical_addr: int, old_stored: np.ndarray, new_logical: np.ndarray
    ) -> WritePlan:
        wb = _WORD_BYTES
        n = int(new_logical.size)
        n_words = -(-n // wb)
        stored = old_stored.copy()  # untouched cells keep their old value
        mask = np.zeros(n, dtype=np.uint8)
        patterns = np.full(n_words, _RAW, dtype=np.int64)
        old_patterns = self._patterns.get(logical_addr)
        if old_patterns is None or old_patterns.size != n_words:
            old_patterns = np.full(n_words, _RAW, dtype=np.int64)
        aux_bits = 0

        for w in range(n_words):
            start = w * wb
            end = min(start + wb, n)
            word = np.zeros(wb, dtype=np.uint8)
            word[: end - start] = new_logical[start:end]
            pattern = _classify(word) if end - start == wb else _RAW
            patterns[w] = pattern
            # The compressed payload: the word's low-order bytes (the tail,
            # big-endian), placed at the start of the word's cell range.
            if pattern == _RAW:
                payload = word[: end - start]
            else:
                payload = word[wb - _PATTERN_BYTES[pattern] :]
            region = slice(start, start + len(payload))
            diff = np.bitwise_xor(old_stored[region], payload)
            stored[region] = payload
            mask[region] = diff
            if pattern != old_patterns[w]:
                aux_bits += _PREFIX_BITS

        self._patterns[logical_addr] = patterns
        return WritePlan(stored=stored, program_mask=mask, aux_bits=aux_bits)

    def decode(self, logical_addr: int, stored: np.ndarray) -> np.ndarray:
        patterns = self._patterns.get(logical_addr)
        n = int(stored.size)
        if patterns is None:
            return stored
        wb = _WORD_BYTES
        decoded = np.empty(n, dtype=np.uint8)
        for w in range(min(patterns.size, -(-n // wb))):
            start = w * wb
            end = min(start + wb, n)
            pattern = int(patterns[w])
            if pattern == _RAW or end - start < wb:
                decoded[start:end] = stored[start:end]
                continue
            length = _PATTERN_BYTES[pattern]
            word = np.zeros(wb, dtype=np.uint8)
            if length:
                payload = stored[start : start + length]
                word[wb - length :] = payload
                # Sign-extend from the payload's top bit.
                if payload[0] & 0x80:
                    word[: wb - length] = 0xFF
            decoded[start:end] = word
        return decoded
