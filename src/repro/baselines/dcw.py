"""Data-Comparison Write (DCW) — Yang et al., ISCAS 2007 [52].

The canonical read-before-write scheme: read the old content, compare, and
pulse only the cells whose value must change.  Real Optane controllers do
this at cache-line granularity; DCW is also the substrate every placement
strategy (PNW, Hamming-Tree, E2-NVM) runs on.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WritePlan, WriteScheme


class DCW(WriteScheme):
    """Program only the cells that differ from the stored content."""

    name = "dcw"

    def prepare(
        self, logical_addr: int, old_stored: np.ndarray, new_logical: np.ndarray
    ) -> WritePlan:
        mask = np.bitwise_xor(old_stored, new_logical)
        return WritePlan(stored=new_logical, program_mask=mask)

    def prepare_many(
        self,
        logical_addrs,
        old_stored: np.ndarray,
        new_logical: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # DCW keeps no per-address metadata, so the whole batch is one XOR.
        new_logical = np.atleast_2d(np.asarray(new_logical, dtype=np.uint8))
        old_stored = np.atleast_2d(np.asarray(old_stored, dtype=np.uint8))
        masks = np.bitwise_xor(old_stored, new_logical)
        return new_logical, masks, np.zeros(new_logical.shape[0], dtype=np.int64)
