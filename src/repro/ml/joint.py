"""Joint VAE + K-means training (§3.2).

E2-NVM "integrates the VAE's reconstruction loss and the K-means clustering
loss to jointly train cluster label assignment and learning of suitable
features for clustering".  We follow the DEC-style recipe [20] the paper
cites:

1. pretrain the VAE on reconstruction + KL alone;
2. run K-means once on the latent means to initialise centroids;
3. fine-tune the VAE with an added clustering term
   ``γ/2 · ‖z − μ_c(z)‖²`` (nearest-centroid pull), refreshing centroids by
   re-running K-means on the latents after every joint epoch.

The result is a single model that maps a bit vector to a cluster id — the
``predict`` the write path of Algorithm 1 calls.
"""

from __future__ import annotations

import numpy as np

from repro.ml.data import iterate_minibatches
from repro.ml.kmeans import KMeans
from repro.ml.optim import Adam
from repro.ml.vae import VAE
from repro.util.rng import rng_from_seed


class JointVAEKMeans:
    """The paper's clustering model: a VAE encoder feeding K-means.

    Args:
        input_dim: bits per memory segment.
        n_clusters: K.
        latent_dim: latent width (paper example: 10).
        hidden: encoder trunk widths.
        gamma: weight of the clustering loss during joint fine-tuning.
        pretrain_epochs / joint_epochs: schedule lengths.
        batch_size, lr: optimisation hyperparameters.
        seed: RNG seed shared by the VAE and K-means.
    """

    def __init__(
        self,
        input_dim: int,
        n_clusters: int,
        latent_dim: int = 10,
        hidden: tuple[int, ...] = (256, 64),
        gamma: float = 0.1,
        pretrain_epochs: int = 10,
        joint_epochs: int = 5,
        batch_size: int = 64,
        lr: float = 1e-3,
        kl_weight: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        self._rng = rng_from_seed(seed)
        self.n_clusters = n_clusters
        self.gamma = gamma
        self.pretrain_epochs = pretrain_epochs
        self.joint_epochs = joint_epochs
        self.batch_size = batch_size
        self.lr = lr
        self.vae = VAE(
            input_dim,
            latent_dim=latent_dim,
            hidden=hidden,
            kl_weight=kl_weight,
            seed=self._rng,
        )
        self.kmeans = KMeans(n_clusters, seed=self._rng)
        self.history: dict = {}

    @property
    def input_dim(self) -> int:
        """Bits per input segment."""
        return self.vae.input_dim

    @property
    def centroids(self) -> np.ndarray:
        """Latent-space cluster centroids."""
        if self.kmeans.cluster_centers_ is None:
            raise RuntimeError("model is not trained yet")
        return self.kmeans.cluster_centers_

    def fit(self, X: np.ndarray, verbose: bool = False) -> "JointVAEKMeans":
        """Pretrain, initialise centroids, then fine-tune jointly."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if len(X) < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} segments to train"
            )
        self.history = self.vae.fit(
            X,
            epochs=self.pretrain_epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            verbose=verbose,
        )
        self.kmeans.fit(self.vae.transform(X))

        optimizer = Adam(lr=self.lr)
        self.history["joint_loss"] = []
        for _ in range(self.joint_epochs):
            losses = []
            for batch in iterate_minibatches(
                X, self.batch_size, seed=self._rng, shuffle=True
            ):
                result = self.vae.train_batch(
                    batch, optimizer, z_grad_hook=self._cluster_grad
                )
                losses.append(result["loss"])
            self.history["joint_loss"].append(float(np.mean(losses)))
            # Refresh the centroids against the moved latent space.
            self.kmeans.fit(self.vae.transform(X))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Cluster ids for the rows of ``X`` (bit vectors)."""
        return self.kmeans.predict(self.vae.transform(X))

    def predict_one(self, bits: np.ndarray) -> int:
        """Cluster id for a single bit vector."""
        return int(self.predict(np.atleast_2d(bits))[0])

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Latent representations of the rows of ``X``."""
        return self.vae.transform(X)

    def sse(self, X: np.ndarray) -> float:
        """Sum of squared latent distances to assigned centroids (Eq. 1)."""
        Z = self.vae.transform(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        labels = self.kmeans.predict(Z)
        diffs = Z - self.centroids[labels]
        return float(np.einsum("ij,ij->", diffs, diffs))

    def _cluster_grad(self, z: np.ndarray):
        centers = self.centroids
        d = (
            np.einsum("ij,ij->i", z, z)[:, None]
            - 2.0 * (z @ centers.T)
            + np.einsum("ij,ij->i", centers, centers)[None, :]
        )
        nearest = d.argmin(axis=1)
        diff = z - centers[nearest]
        batch = len(z)
        loss = 0.5 * self.gamma * float(np.einsum("ij,ij->", diff, diff)) / batch
        grad = self.gamma * diff / batch
        return loss, grad
