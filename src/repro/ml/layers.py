"""Fully-connected layer with cached-input backprop."""

from __future__ import annotations

import numpy as np

from repro.ml.activations import ReLU, get_activation
from repro.util.rng import rng_from_seed


class Dense:
    """An affine layer ``y = act(x @ W + b)``.

    Weights use He initialisation for ReLU-family activations and Xavier
    otherwise.  ``forward`` caches what ``backward`` needs; gradients
    accumulate into ``grad_W`` / ``grad_b`` until :meth:`zero_grad`.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation="identity",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = rng_from_seed(seed)
        self.activation = get_activation(activation)
        scale = np.sqrt(
            (2.0 if isinstance(self.activation, ReLU) else 1.0) / in_dim
        )
        self.W = rng.normal(0.0, scale, size=(in_dim, out_dim)).astype(np.float64)
        self.b = np.zeros(out_dim, dtype=np.float64)
        self.grad_W = np.zeros_like(self.W)
        self.grad_b = np.zeros_like(self.b)
        self._x: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute activations for a batch ``x`` of shape (B, in_dim)."""
        self._x = x
        pre = x @ self.W + self.b
        self._out = self.activation.forward(pre)
        return self._out

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless forward pass: no backprop caches are written, so
        concurrent inference threads never race on layer state."""
        return self.activation.forward(x @ self.W + self.b)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop ``grad_out`` (B, out_dim); returns gradient w.r.t. input."""
        if self._x is None or self._out is None:
            raise RuntimeError("backward called before forward")
        grad_pre = self.activation.backward(grad_out, self._out)
        self.grad_W += self._x.T @ grad_pre
        self.grad_b += grad_pre.sum(axis=0)
        return grad_pre @ self.W.T

    def zero_grad(self) -> None:
        """Reset accumulated gradients."""
        self.grad_W[:] = 0.0
        self.grad_b[:] = 0.0

    @property
    def params(self) -> list[np.ndarray]:
        """Trainable arrays, paired index-wise with :attr:`grads`."""
        return [self.W, self.b]

    @property
    def grads(self) -> list[np.ndarray]:
        """Accumulated gradients, paired index-wise with :attr:`params`."""
        return [self.grad_W, self.grad_b]
