"""Sequential multilayer perceptron built from :class:`~repro.ml.layers.Dense`."""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Dense
from repro.util.rng import rng_from_seed


class MLP:
    """A stack of dense layers.

    Args:
        dims: layer widths, e.g. ``(784, 256, 64)``.
        hidden_activation: activation for all but the last layer.
        output_activation: activation for the last layer.
        seed: RNG for weight initialisation.
    """

    def __init__(
        self,
        dims,
        hidden_activation="relu",
        output_activation="identity",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        dims = list(dims)
        if len(dims) < 2:
            raise ValueError("an MLP needs at least an input and output width")
        rng = rng_from_seed(seed)
        self.layers: list[Dense] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            last = i == len(dims) - 2
            act = output_activation if last else hidden_activation
            self.layers.append(Dense(d_in, d_out, activation=act, seed=rng))

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the batch through every layer."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless forward pass (no backprop caches); thread-safe."""
        for layer in self.layers:
            x = layer.infer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop through every layer; returns gradient w.r.t. the input."""
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]
