"""Model persistence: save/load for the VAE, LSTM and joint models.

A trained placement model outlives any single process (the paper retrains
"in the background lazily" and swaps models); snapshots let a deployment
train elsewhere and ship weights.  Format: a single ``.npz`` holding every
parameter array in a deterministic order plus a JSON metadata header.
"""

from __future__ import annotations

import json

import numpy as np

from repro.ml.joint import JointVAEKMeans
from repro.ml.kmeans import KMeans
from repro.ml.lstm import LSTMPredictor
from repro.ml.student import StudentPlacer
from repro.ml.vae import VAE


def _pack(path, meta: dict, arrays: list[np.ndarray]) -> None:
    payload = {f"param_{i}": arr for i, arr in enumerate(arrays)}
    payload["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def _unpack(path) -> tuple[dict, list[np.ndarray]]:
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        arrays = [
            archive[f"param_{i}"]
            for i in range(sum(1 for k in archive.files if k.startswith("param_")))
        ]
    return meta, arrays


def _load_params(model_params: list[np.ndarray], arrays: list[np.ndarray]) -> None:
    if len(model_params) != len(arrays):
        raise ValueError(
            f"snapshot has {len(arrays)} arrays, model expects "
            f"{len(model_params)}"
        )
    for param, arr in zip(model_params, arrays):
        if param.shape != arr.shape:
            raise ValueError(f"shape mismatch: {param.shape} vs {arr.shape}")
        param[:] = arr


def save_vae(vae: VAE, path) -> None:
    """Snapshot a VAE's architecture and weights."""
    meta = {
        "kind": "vae",
        "input_dim": vae.input_dim,
        "latent_dim": vae.latent_dim,
        "hidden": [layer.W.shape[1] for layer in vae.trunk.layers],
        "kl_weight": vae.kl_weight,
    }
    _pack(path, meta, vae.params)


def load_vae(path) -> VAE:
    """Restore a VAE saved by :func:`save_vae`."""
    meta, arrays = _unpack(path)
    if meta.get("kind") != "vae":
        raise ValueError(f"not a VAE snapshot: {meta.get('kind')!r}")
    vae = VAE(
        meta["input_dim"],
        latent_dim=meta["latent_dim"],
        hidden=tuple(meta["hidden"]),
        kl_weight=meta["kl_weight"],
        seed=0,
    )
    _load_params(vae.params, arrays)
    return vae


def save_lstm(model: LSTMPredictor, path) -> None:
    """Snapshot an LSTM predictor's configuration and weights."""
    meta = {
        "kind": "lstm",
        "window_bits": model.window_bits,
        "chunk_bits": model.chunk_bits,
        "hidden_dim": model.cell.hidden_dim,
        "trained": model.trained,
    }
    _pack(path, meta, model.cell.params + model.head.params)


def load_lstm(path) -> LSTMPredictor:
    """Restore an LSTM predictor saved by :func:`save_lstm`."""
    meta, arrays = _unpack(path)
    if meta.get("kind") != "lstm":
        raise ValueError(f"not an LSTM snapshot: {meta.get('kind')!r}")
    model = LSTMPredictor(
        window_bits=meta["window_bits"],
        chunk_bits=meta["chunk_bits"],
        hidden_dim=meta["hidden_dim"],
        seed=0,
    )
    _load_params(model.cell.params + model.head.params, arrays)
    model.trained = bool(meta["trained"])
    return model


def save_student(student: StudentPlacer, path) -> None:
    """Snapshot a distilled student placer (head weights + metadata)."""
    meta = {
        "kind": "student",
        "n_clusters": student.n_clusters,
        "segment_size": student.segment_size,
        "trained": student.trained,
        "train_agreement": student.train_agreement,
    }
    _pack(path, meta, student.params)


def load_student(path) -> StudentPlacer:
    """Restore a student placer saved by :func:`save_student`."""
    meta, arrays = _unpack(path)
    if meta.get("kind") != "student":
        raise ValueError(f"not a student snapshot: {meta.get('kind')!r}")
    student = StudentPlacer(
        meta["n_clusters"], segment_size=meta["segment_size"], seed=0
    )
    _load_params(student.params, arrays)
    student.trained = bool(meta["trained"])
    student.train_agreement = float(meta["train_agreement"])
    return student


def save_joint(model: JointVAEKMeans, path) -> None:
    """Snapshot a joint VAE+K-means model (weights + centroids)."""
    if model.kmeans.cluster_centers_ is None:
        raise ValueError("cannot save an untrained joint model")
    meta = {
        "kind": "joint",
        "input_dim": model.input_dim,
        "latent_dim": model.vae.latent_dim,
        "hidden": [layer.W.shape[1] for layer in model.vae.trunk.layers],
        "kl_weight": model.vae.kl_weight,
        "n_clusters": model.n_clusters,
        "gamma": model.gamma,
    }
    arrays = model.vae.params + [model.kmeans.cluster_centers_]
    _pack(path, meta, arrays)


def load_joint(path) -> JointVAEKMeans:
    """Restore a joint model saved by :func:`save_joint`."""
    meta, arrays = _unpack(path)
    if meta.get("kind") != "joint":
        raise ValueError(f"not a joint snapshot: {meta.get('kind')!r}")
    model = JointVAEKMeans(
        meta["input_dim"],
        meta["n_clusters"],
        latent_dim=meta["latent_dim"],
        hidden=tuple(meta["hidden"]),
        gamma=meta["gamma"],
        kl_weight=meta["kl_weight"],
        seed=0,
    )
    centroids = arrays[-1]
    _load_params(model.vae.params, arrays[:-1])
    model.kmeans = KMeans(meta["n_clusters"], seed=0)
    model.kmeans.cluster_centers_ = centroids
    return model
