"""Elementwise activations with explicit forward/backward passes."""

from __future__ import annotations

import numpy as np


class Identity:
    """f(x) = x."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad_out


class ReLU:
    """f(x) = max(0, x)."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad_out * (out > 0.0)


class Sigmoid:
    """f(x) = 1 / (1 + e^-x), computed stably for large |x|."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def backward(self, grad_out: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad_out * out * (1.0 - out)


class Tanh:
    """f(x) = tanh(x)."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, grad_out: np.ndarray, out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - out * out)


_ACTIVATIONS = {cls.name: cls for cls in (Identity, ReLU, Sigmoid, Tanh)}


def get_activation(name):
    """Resolve an activation by name or pass an instance through."""
    if isinstance(name, str):
        try:
            return _ACTIVATIONS[name]()
        except KeyError:
            raise ValueError(
                f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
            ) from None
    return name
