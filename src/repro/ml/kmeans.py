"""K-means clustering with k-means++ seeding (Lloyd's algorithm)."""

from __future__ import annotations

import numpy as np

from repro.util.rng import rng_from_seed


def _pairwise_sq_distances(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape (len(X), len(C))."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 — avoids the (n, k, d) tensor.
    d = (
        np.einsum("ij,ij->i", X, X)[:, None]
        - 2.0 * (X @ C.T)
        + np.einsum("ij,ij->i", C, C)[None, :]
    )
    return np.maximum(d, 0.0)


class KMeans:
    """Lloyd's K-means.

    Attributes (after :meth:`fit`):
        cluster_centers_: array (k, d) of centroids.
        labels_: training-point assignments.
        inertia_: sum of squared distances to assigned centroids (the SSE of
            the paper's Equation 1).
        n_iter_: Lloyd iterations actually run.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-4,
        n_init: int = 1,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self._rng = rng_from_seed(seed)
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int = 0

    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster the rows of ``X``; keeps the best of ``n_init`` restarts."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or len(X) == 0:
            raise ValueError("X must be a non-empty 2D array")
        if len(X) < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} points, got {len(X)}"
            )
        best = None
        for _ in range(max(1, self.n_init)):
            centers, labels, inertia, iters = self._fit_once(X)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, iters)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign each row of ``X`` to its nearest centroid."""
        if self.cluster_centers_ is None:
            raise RuntimeError("predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return _pairwise_sq_distances(X, self.cluster_centers_).argmin(axis=1)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Distances from each row to every centroid."""
        if self.cluster_centers_ is None:
            raise RuntimeError("transform called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.sqrt(_pairwise_sq_distances(X, self.cluster_centers_))

    def _fit_once(self, X: np.ndarray):
        centers = self._init_plus_plus(X)
        prev_inertia = np.inf
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            dists = _pairwise_sq_distances(X, centers)
            labels = dists.argmin(axis=1)
            inertia = float(dists[np.arange(len(X)), labels].sum())
            if np.isfinite(prev_inertia) and (
                prev_inertia - inertia <= self.tol * max(prev_inertia, 1e-12)
            ):
                # Converged: centers were not moved after this assignment, so
                # (centers, labels, inertia) are mutually consistent.
                return centers, labels, inertia, iteration
            prev_inertia = inertia
            for c in range(self.n_clusters):
                members = labels == c
                if members.any():
                    centers[c] = X[members].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = dists.min(axis=1).argmax()
                    centers[c] = X[farthest]
        # Ran out of iterations after a center move: refresh the assignment.
        dists = _pairwise_sq_distances(X, centers)
        labels = dists.argmin(axis=1)
        inertia = float(dists[np.arange(len(X)), labels].sum())
        return centers, labels, inertia, iteration

    def _init_plus_plus(self, X: np.ndarray) -> np.ndarray:
        n = len(X)
        centers = np.empty((self.n_clusters, X.shape[1]), dtype=np.float64)
        first = int(self._rng.integers(0, n))
        centers[0] = X[first]
        closest_sq = _pairwise_sq_distances(X, centers[:1]).ravel()
        for c in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                # All points coincide with chosen centers; pick uniformly.
                idx = int(self._rng.integers(0, n))
            else:
                probs = closest_sq / total
                idx = int(self._rng.choice(n, p=probs))
            centers[c] = X[idx]
            new_sq = _pairwise_sq_distances(X, centers[c : c + 1]).ravel()
            closest_sq = np.minimum(closest_sq, new_sq)
        return centers
