"""From-scratch NumPy deep-learning stack.

The paper trains its models with a mainstream framework on GPUs; everything
here is re-implemented on NumPy so the reproduction has no ML dependencies:

- :mod:`repro.ml.layers` / :mod:`repro.ml.network` — dense layers and MLPs
  with explicit backprop;
- :mod:`repro.ml.optim` — SGD (momentum) and Adam;
- :mod:`repro.ml.vae` — the Variational Autoencoder of §3.1 (Bernoulli
  reconstruction + KL, reparameterisation trick);
- :mod:`repro.ml.joint` — joint VAE + K-means training (§3.2: "integrates
  the VAE's reconstruction loss and the K-means clustering loss");
- :mod:`repro.ml.lstm` — the LSTM used by learned padding (§4.1.3);
- :mod:`repro.ml.kmeans` / :mod:`repro.ml.pca` — classic baselines used by
  PNW [26];
- :mod:`repro.ml.metrics` — SSE and the elbow method of Figure 8.
"""

from repro.ml.kmeans import KMeans
from repro.ml.pca import PCA
from repro.ml.vae import VAE
from repro.ml.joint import JointVAEKMeans
from repro.ml.lstm import LSTMPredictor
from repro.ml.metrics import elbow_k, sum_squared_error
from repro.ml.serialization import (
    load_joint,
    load_lstm,
    load_student,
    load_vae,
    save_joint,
    save_lstm,
    save_student,
    save_vae,
)
from repro.ml.student import StudentPlacer

__all__ = [
    "KMeans",
    "PCA",
    "VAE",
    "JointVAEKMeans",
    "LSTMPredictor",
    "elbow_k",
    "sum_squared_error",
    "save_vae",
    "load_vae",
    "save_lstm",
    "load_lstm",
    "save_joint",
    "load_joint",
    "StudentPlacer",
    "save_student",
    "load_student",
]
