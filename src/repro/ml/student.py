"""The distilled student placer: a logistic head over cheap content features.

The full placement model (VAE encoder + K-means) costs a stacked matmul per
prediction — hundreds of microseconds that dominate the hot write path.  In
the spirit of SMART-WRITE's adaptive learned write management and
Predict-and-Write's lightweight clustering (PAPERS.md), a *student* model is
distilled from the VAE+K-means *teacher* at every (re)train: a multinomial
logistic regression over three cheap feature blocks —

- the value's normalised byte histogram (256 counts) plus a length
  feature: *what* bytes the value holds;
- a strided sample of byte positions across the zero-padded segment
  content: *where* they sit.  The teacher encodes the full padded segment
  bit vector, so position matters to it, and a histogram alone cannot
  express position — which is exactly how the first-generation
  histogram-only student ended up dormant (train agreement ~0.54, never
  clearing the confidence gate);
- per-chunk bit densities over the padded content: a coarse linear
  summary of the same bit vector the encoder's first layer consumes.

The positional blocks are computed over the value *as written to media*
(zero-padded to the segment size) so distillation rows — full-width
segment contents — and serve-time rows for shorter values come from the
same distribution.  Featurisation stays a few C-speed passes over the raw
bytes and the head is a single ``(329, K)`` matmul — orders of magnitude
cheaper than the encoder forward pass.

The student is intentionally *deferential*: it serves a prediction only when
its softmax confidence clears a threshold, and the placement layer falls
back to the teacher otherwise, so low-margin (ambiguous) content never
drifts away from the teacher's clustering.  Distillation fidelity is
recorded on :attr:`StudentPlacer.train_agreement` and surfaced through the
engine's retrain stats.
"""

from __future__ import annotations

import numpy as np

from repro.ml.optim import Adam
from repro.util.rng import rng_from_seed

#: Byte-histogram feature width (one bin per byte value).
N_BYTE_BINS = 256
#: Strided byte positions sampled from the zero-padded segment content.
N_SAMPLE_POSITIONS = 64
#: Per-chunk bit-density features over the padded content.
N_CHUNK_DENSITIES = 8
N_FEATURES = N_BYTE_BINS + 1 + N_SAMPLE_POSITIONS + N_CHUNK_DENSITIES

_LEN_FEATURE = N_BYTE_BINS
_SAMPLE_OFFSET = N_BYTE_BINS + 1
_CHUNK_OFFSET = _SAMPLE_OFFSET + N_SAMPLE_POSITIONS

#: Bits set per byte value (positional densities in one table lookup).
_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1)


def featurize_values(values, segment_size: int) -> np.ndarray:
    """Feature rows for raw byte values.

    The histogram block is normalised over the value's *own* bytes (padding
    never dilutes it; the length feature stands in for how much padding the
    teacher would have seen).  The positional blocks — strided byte sample
    and chunk bit densities — are computed over the value zero-padded to
    ``segment_size``, i.e. over the content the teacher actually encodes,
    so feature rows for a short value match rows built from its full-width
    media image.
    """
    if segment_size <= 0:
        raise ValueError("segment_size must be positive")
    out = np.zeros((len(values), N_FEATURES), dtype=np.float64)
    for i, value in enumerate(values):
        arr = np.frombuffer(bytes(value), dtype=np.uint8)
        if not arr.size:
            continue
        out[i, :N_BYTE_BINS] = np.bincount(arr, minlength=N_BYTE_BINS) / arr.size
        out[i, _LEN_FEATURE] = arr.size / segment_size
        if arr.size < segment_size:
            padded = np.zeros(segment_size, dtype=np.uint8)
            padded[: arr.size] = arr
        else:
            padded = arr[:segment_size]
        idx = np.linspace(
            0, padded.size - 1, N_SAMPLE_POSITIONS
        ).astype(np.intp)
        out[i, _SAMPLE_OFFSET:_CHUNK_OFFSET] = padded[idx] / 255.0
        counts = _POPCOUNT[padded]
        out[i, _CHUNK_OFFSET:] = [
            chunk.mean() / 8.0 if chunk.size else 0.0
            for chunk in np.array_split(counts, N_CHUNK_DENSITIES)
        ]
    return out


def featurize_bits(segment_bits: np.ndarray, segment_size: int) -> np.ndarray:
    """Feature rows for full-width segment *bit* contents (the distillation
    set): pack each row back to bytes and histogram those."""
    X = np.atleast_2d(np.asarray(segment_bits))
    packed = np.packbits((X > 0.5).astype(np.uint8), axis=1)
    return featurize_values([row.tobytes() for row in packed], segment_size)


class StudentPlacer:
    """Multinomial logistic head distilled from the VAE+K-means teacher.

    Args:
        n_clusters: K, matching the teacher's cluster count.
        segment_size: bytes per memory segment (the length-feature scale).
        seed: RNG seed for weight initialisation.
    """

    def __init__(
        self,
        n_clusters: int,
        segment_size: int,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if segment_size <= 0:
            raise ValueError("segment_size must be positive")
        self.n_clusters = n_clusters
        self.segment_size = segment_size
        rng = rng_from_seed(seed)
        self.W = rng.normal(0.0, 0.01, size=(N_FEATURES, n_clusters))
        self.b = np.zeros(n_clusters)
        #: Per-feature standardisation fitted on the distillation set.  The
        #: feature blocks live on very different scales (histogram bins
        #: ~1/256, byte samples ~0.5); a single learning rate underfits the
        #: raw mix badly, so the head always sees standardised rows.
        self.feat_mean = np.zeros(N_FEATURES)
        self.feat_scale = np.ones(N_FEATURES)
        self.trained = False
        #: Fraction of the distillation set where the student's argmax
        #: matches the teacher's label (fidelity, not accuracy — the teacher
        #: *defines* the target).
        self.train_agreement = 0.0

    # --------------------------------------------------------------- training

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 100,
        lr: float = 0.05,
    ) -> "StudentPlacer":
        """Distill: fit the head to the teacher's ``labels`` by full-batch
        softmax regression (cross-entropy, Adam)."""
        F = np.atleast_2d(np.asarray(features, dtype=np.float64))
        y = np.asarray(labels, dtype=np.int64).reshape(-1)
        if len(F) != len(y):
            raise ValueError("features and labels disagree on length")
        if len(F) == 0:
            raise ValueError("cannot distill from an empty set")
        if F.shape[1] != N_FEATURES:
            raise ValueError(
                f"features have {F.shape[1]} columns, expected {N_FEATURES}"
            )
        self.feat_mean[:] = F.mean(axis=0)
        scale = F.std(axis=0)
        scale[scale < 1e-9] = 1.0  # constant features carry no signal
        self.feat_scale[:] = scale
        Z = (F - self.feat_mean) / self.feat_scale
        onehot = np.zeros((len(y), self.n_clusters))
        onehot[np.arange(len(y)), y] = 1.0
        optimizer = Adam(lr=lr)
        n = len(Z)
        for _ in range(max(1, epochs)):
            probs = self._softmax(Z @ self.W + self.b)
            delta = (probs - onehot) / n
            grad_w = Z.T @ delta
            grad_b = delta.sum(axis=0)
            optimizer.step([self.W, self.b], [grad_w, grad_b])
        self.trained = True
        preds = np.argmax(Z @ self.W + self.b, axis=1)
        self.train_agreement = float(np.mean(preds == y))
        return self

    # -------------------------------------------------------------- inference

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-cluster softmax probabilities for feature rows."""
        F = np.atleast_2d(np.asarray(features, dtype=np.float64))
        Z = (F - self.feat_mean) / self.feat_scale
        return self._softmax(Z @ self.W + self.b)

    def predict(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(cluster_ids, confidences)`` for feature rows — confidence is
        the winning cluster's softmax probability, which the placement layer
        compares against its serving threshold."""
        probs = self.predict_proba(features)
        labels = probs.argmax(axis=1)
        return labels.astype(np.int64), probs[np.arange(len(probs)), labels]

    def predict_values(
        self, values, segment_size: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: featurise raw byte values and predict."""
        return self.predict(
            featurize_values(values, segment_size or self.segment_size)
        )

    @property
    def params(self) -> list[np.ndarray]:
        """Parameter arrays in serialisation order."""
        return [self.W, self.b, self.feat_mean, self.feat_scale]

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)
