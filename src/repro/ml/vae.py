"""Variational Autoencoder (§3.1) with hand-written backprop.

The encoder compresses a memory segment's bit vector ``x`` into a latent
``z`` (default 10 dimensions, as the paper's "e.g., size 10"); the decoder
reconstructs Bernoulli bit probabilities.  The per-sample loss is the
standard ELBO negative:

    l(θ, φ) = BCE(x, p_φ(x|z)) + KL(q_θ(z|x) || N(0, I))

Training supports an optional per-batch latent gradient hook, which is how
:mod:`repro.ml.joint` injects the K-means clustering loss for joint training.
"""

from __future__ import annotations

import numpy as np

from repro.ml.activations import Sigmoid
from repro.ml.data import iterate_minibatches, train_val_split
from repro.ml.layers import Dense
from repro.ml.losses import bernoulli_nll, gaussian_kl
from repro.ml.network import MLP
from repro.ml.optim import Adam
from repro.util.rng import rng_from_seed

_LOGVAR_CLIP = 8.0
_EPS = 1e-7


class VAE:
    """MLP-based VAE over fixed-length bit vectors.

    Args:
        input_dim: number of features (bits per memory segment).
        latent_dim: size of the latent code ``z``.
        hidden: encoder trunk widths; the decoder mirrors them.
        kl_weight: weight of the KL regulariser in the total loss.
        seed: RNG seed for weights and the reparameterisation noise.
    """

    def __init__(
        self,
        input_dim: int,
        latent_dim: int = 10,
        hidden: tuple[int, ...] = (256, 64),
        kl_weight: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if input_dim <= 0 or latent_dim <= 0:
            raise ValueError("dimensions must be positive")
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.kl_weight = kl_weight
        self._rng = rng_from_seed(seed)
        self._sigmoid = Sigmoid()

        hidden = tuple(hidden)
        self.trunk = MLP(
            (input_dim, *hidden),
            hidden_activation="relu",
            output_activation="relu",
            seed=self._rng,
        )
        self.mu_head = Dense(hidden[-1], latent_dim, "identity", seed=self._rng)
        self.logvar_head = Dense(hidden[-1], latent_dim, "identity", seed=self._rng)
        self.decoder = MLP(
            (latent_dim, *reversed(hidden), input_dim),
            hidden_activation="relu",
            output_activation="identity",
            seed=self._rng,
        )

    # ---------------------------------------------------------------- forward

    def encode(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return the posterior parameters (mu, logvar) for each row.

        Uses the stateless inference path: no backprop caches are touched,
        so the write path can encode concurrently with no shared state
        (training runs its own explicit forward inside :meth:`train_batch`).
        """
        X = self._as_batch(X)
        h = self.trunk.infer(X)
        mu = self.mu_head.infer(h)
        logvar = np.clip(self.logvar_head.infer(h), -_LOGVAR_CLIP, _LOGVAR_CLIP)
        return mu, logvar

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Deterministic latent representation (the posterior mean)."""
        mu, _ = self.encode(X)
        return mu

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Bit probabilities reconstructed through the posterior mean."""
        mu, _ = self.encode(X)
        return self._sigmoid.forward(self.decoder.infer(mu))

    # --------------------------------------------------------------- training

    def train_batch(self, x: np.ndarray, optimizer, z_grad_hook=None) -> dict:
        """One optimisation step on batch ``x``; returns the loss parts.

        ``z_grad_hook(z)`` may return ``(extra_loss, extra_grad_wrt_z)`` —
        both already normalised per batch — to co-train auxiliary objectives.
        """
        x = self._as_batch(x)

        h = self.trunk.forward(x)
        mu = self.mu_head.forward(h)
        logvar = np.clip(self.logvar_head.forward(h), -_LOGVAR_CLIP, _LOGVAR_CLIP)
        std = np.exp(0.5 * logvar)
        eps = self._rng.standard_normal(mu.shape)
        z = mu + eps * std

        logits = self.decoder.forward(z)
        probs = self._sigmoid.forward(logits)
        bce, dlogits = bernoulli_nll(x, probs)
        kl, kl_dmu, kl_dlogvar = gaussian_kl(mu, logvar)

        extra_loss = 0.0
        extra_grad = 0.0
        if z_grad_hook is not None:
            extra_loss, extra_grad = z_grad_hook(z)

        self.zero_grad()
        dz = self.decoder.backward(dlogits) + extra_grad
        dmu = dz + self.kl_weight * kl_dmu
        dlogvar = dz * eps * 0.5 * std + self.kl_weight * kl_dlogvar
        dh = self.mu_head.backward(dmu) + self.logvar_head.backward(dlogvar)
        self.trunk.backward(dh)
        optimizer.step(self.params, self.grads)

        total = bce + self.kl_weight * kl + float(extra_loss)
        return {"loss": total, "bce": bce, "kl": kl, "extra": float(extra_loss)}

    def fit(
        self,
        X: np.ndarray,
        epochs: int = 20,
        batch_size: int = 64,
        lr: float = 1e-3,
        val_fraction: float = 0.1,
        optimizer=None,
        z_grad_hook=None,
        patience: int | None = None,
        min_improvement: float = 1e-3,
        verbose: bool = False,
    ) -> dict:
        """Train on the rows of ``X``; returns per-epoch loss history.

        Args:
            patience: if set, stop early after this many epochs without the
                validation loss improving by at least ``min_improvement``
                (relative) — trims the retraining energy budget when the
                model converges quickly (§5.3).
        """
        X = self._as_batch(X)
        optimizer = optimizer or Adam(lr=lr)
        train, val = train_val_split(X, val_fraction, seed=self._rng)
        if len(train) == 0:
            raise ValueError("training split is empty")
        history: dict = {"train_loss": [], "val_loss": []}
        best_val = np.inf
        stale_epochs = 0
        for epoch in range(epochs):
            losses = []
            for batch in iterate_minibatches(
                train, batch_size, seed=self._rng, shuffle=True
            ):
                result = self.train_batch(batch, optimizer, z_grad_hook)
                losses.append(result["loss"])
            history["train_loss"].append(float(np.mean(losses)))
            history["val_loss"].append(
                self.evaluate(val) if len(val) else history["train_loss"][-1]
            )
            if verbose:
                print(
                    f"epoch {epoch + 1:3d}/{epochs}  "
                    f"train {history['train_loss'][-1]:.3f}  "
                    f"val {history['val_loss'][-1]:.3f}"
                )
            if patience is not None:
                current = history["val_loss"][-1]
                if current < best_val * (1.0 - min_improvement):
                    best_val = current
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= patience:
                        break
        return history

    def evaluate(self, X: np.ndarray, batch_size: int = 256) -> float:
        """Deterministic loss (z = posterior mean) over the rows of ``X``."""
        X = self._as_batch(X)
        if len(X) == 0:
            raise ValueError("cannot evaluate on an empty array")
        total = 0.0
        for start in range(0, len(X), batch_size):
            x = X[start : start + batch_size]
            mu, logvar = self.encode(x)
            probs = self._sigmoid.forward(self.decoder.infer(mu))
            bce, _ = bernoulli_nll(x, probs)
            kl, _, _ = gaussian_kl(mu, logvar)
            total += (bce + self.kl_weight * kl) * len(x)
        return float(total / len(X))

    # -------------------------------------------------------------- plumbing

    def zero_grad(self) -> None:
        self.trunk.zero_grad()
        self.mu_head.zero_grad()
        self.logvar_head.zero_grad()
        self.decoder.zero_grad()

    @property
    def params(self) -> list[np.ndarray]:
        return (
            self.trunk.params
            + self.mu_head.params
            + self.logvar_head.params
            + self.decoder.params
        )

    @property
    def grads(self) -> list[np.ndarray]:
        return (
            self.trunk.grads
            + self.mu_head.grads
            + self.logvar_head.grads
            + self.decoder.grads
        )

    def _as_batch(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim} features, got {X.shape[1]}"
            )
        return X
