"""LSTM sequence model for the learned padding strategy (§4.1.3).

The paper's learned padding slides a window over the input bits: an LSTM
takes 64 bits and predicts the next 8, the window advances by 8, and the
process repeats until enough padding bits are generated (Figure 6).

We implement a single-layer LSTM cell with full backpropagation-through-time
and a dense sigmoid head, treating the window as a sequence of chunk-sized
timesteps.
"""

from __future__ import annotations

import numpy as np

from repro.ml.activations import Sigmoid, Tanh
from repro.ml.data import iterate_minibatches
from repro.ml.layers import Dense
from repro.ml.losses import bernoulli_nll
from repro.ml.optim import Adam
from repro.util.rng import rng_from_seed


class LSTMCell:
    """One LSTM layer unrolled over fixed-length sequences.

    Gates use the standard formulation: ``z = [x, h] W + b`` split into
    input / forget / output / candidate quarters.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("dimensions must be positive")
        rng = rng_from_seed(seed)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        scale = 1.0 / np.sqrt(input_dim + hidden_dim)
        self.W = rng.normal(
            0.0, scale, size=(input_dim + hidden_dim, 4 * hidden_dim)
        )
        self.b = np.zeros(4 * hidden_dim)
        # Forget-gate bias starts at 1 — the usual trick for gradient flow.
        self.b[hidden_dim : 2 * hidden_dim] = 1.0
        self.grad_W = np.zeros_like(self.W)
        self.grad_b = np.zeros_like(self.b)
        self._sigmoid = Sigmoid()
        self._tanh = Tanh()
        self._cache: list | None = None

    def forward(self, x_seq: np.ndarray) -> np.ndarray:
        """Run the batch of sequences (B, T, input_dim); return final h."""
        batch, steps, _ = x_seq.shape
        hd = self.hidden_dim
        h = np.zeros((batch, hd))
        c = np.zeros((batch, hd))
        self._cache = []
        for t in range(steps):
            x = x_seq[:, t, :]
            xh = np.concatenate([x, h], axis=1)
            z = xh @ self.W + self.b
            i = self._sigmoid.forward(z[:, :hd])
            f = self._sigmoid.forward(z[:, hd : 2 * hd])
            o = self._sigmoid.forward(z[:, 2 * hd : 3 * hd])
            g = self._tanh.forward(z[:, 3 * hd :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            self._cache.append((xh, i, f, o, g, c, tanh_c))
            h, c = h_new, c_new
        return h

    def backward(self, dh: np.ndarray) -> None:
        """BPTT from the gradient of the final hidden state."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        hd = self.hidden_dim
        dc = np.zeros_like(dh)
        for xh, i, f, o, g, c_prev, tanh_c in reversed(self._cache):
            do = dh * tanh_c
            dc = dc + dh * o * (1.0 - tanh_c * tanh_c)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    do * o * (1.0 - o),
                    dg * (1.0 - g * g),
                ],
                axis=1,
            )
            self.grad_W += xh.T @ dz
            self.grad_b += dz.sum(axis=0)
            dxh = dz @ self.W.T
            dh = dxh[:, self.input_dim :]
            dc = dc * f
        self._cache = None

    def zero_grad(self) -> None:
        self.grad_W[:] = 0.0
        self.grad_b[:] = 0.0

    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_W, self.grad_b]


class LSTMPredictor:
    """Sliding-window bit predictor: ``window_bits`` in, ``chunk_bits`` out.

    Args:
        window_bits: context window size (paper: 64).
        chunk_bits: bits predicted per step and window slide (paper: 8).
        hidden_dim: LSTM state width.
        seed: RNG seed.
    """

    def __init__(
        self,
        window_bits: int = 64,
        chunk_bits: int = 8,
        hidden_dim: int = 32,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if window_bits <= 0 or chunk_bits <= 0 or window_bits % chunk_bits:
            raise ValueError("window_bits must be a positive multiple of chunk_bits")
        self.window_bits = window_bits
        self.chunk_bits = chunk_bits
        self.steps = window_bits // chunk_bits
        self._rng = rng_from_seed(seed)
        self.cell = LSTMCell(chunk_bits, hidden_dim, seed=self._rng)
        self.head = Dense(hidden_dim, chunk_bits, "sigmoid", seed=self._rng)
        self.trained = False

    def fit(
        self,
        bit_vectors: np.ndarray,
        epochs: int = 5,
        batch_size: int = 64,
        lr: float = 3e-3,
        max_samples: int = 20_000,
        include_reversed: bool = True,
        verbose: bool = False,
    ) -> list[float]:
        """Train on sliding windows extracted from training bit vectors.

        ``include_reversed`` also trains on the reversed sequences so the
        model can extrapolate both after (end-padding) and before
        (beginning-padding) the data.
        """
        X, y = self._make_samples(bit_vectors, max_samples, include_reversed)
        if len(X) == 0:
            raise ValueError("no training windows could be extracted")
        optimizer = Adam(lr=lr)
        history = []
        for epoch in range(epochs):
            order = self._rng.permutation(len(X))
            losses = []
            for batch_idx in iterate_minibatches(
                order, batch_size, seed=self._rng, shuffle=False
            ):
                losses.append(
                    self._train_batch(X[batch_idx], y[batch_idx], optimizer)
                )
            history.append(float(np.mean(losses)))
            if verbose:
                print(f"lstm epoch {epoch + 1}/{epochs}  loss {history[-1]:.4f}")
        self.trained = True
        return history

    def predict_next(self, window: np.ndarray) -> np.ndarray:
        """Probabilities of the next ``chunk_bits`` given a full window."""
        window = np.asarray(window, dtype=np.float64).reshape(-1)
        if window.size != self.window_bits:
            raise ValueError(
                f"window must have {self.window_bits} bits, got {window.size}"
            )
        seq = window.reshape(1, self.steps, self.chunk_bits)
        h = self.cell.forward(seq)
        return self.head.forward(h)[0]

    def generate(self, context_bits: np.ndarray, n_bits: int) -> np.ndarray:
        """Continue ``context_bits`` with ``n_bits`` of predicted padding.

        Shorter-than-window contexts are tiled to fill the window (repeating
        short patterns is the least-surprising seed for periodic bit data).
        """
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        context = np.asarray(context_bits, dtype=np.float64).reshape(-1)
        if context.size == 0:
            context = np.zeros(self.window_bits)
        if context.size < self.window_bits:
            reps = -(-self.window_bits // context.size)
            window = np.tile(context, reps)[-self.window_bits :]
        else:
            window = context[-self.window_bits :]
        out = np.empty(0, dtype=np.float64)
        while out.size < n_bits:
            probs = self.predict_next(window)
            chunk = (probs > 0.5).astype(np.float64)
            out = np.concatenate([out, chunk])
            window = np.concatenate([window[self.chunk_bits :], chunk])
        return out[:n_bits]

    def _train_batch(self, X: np.ndarray, y: np.ndarray, optimizer) -> float:
        h = self.cell.forward(X)
        probs = self.head.forward(h)
        bce, dprobs_pre = bernoulli_nll(y, probs)  # grad w.r.t. pre-sigmoid
        self.cell.zero_grad()
        self.head.zero_grad()
        # The head applied sigmoid; bypass its activation backward by feeding
        # the pre-activation gradient through a manual affine backprop.
        self.head.grad_W += self.cell_last_h.T @ dprobs_pre
        self.head.grad_b += dprobs_pre.sum(axis=0)
        dh = dprobs_pre @ self.head.W.T
        self.cell.backward(dh)
        optimizer.step(
            self.cell.params + self.head.params,
            self.cell.grads + self.head.grads,
        )
        return bce

    @property
    def cell_last_h(self) -> np.ndarray:
        """The hidden state cached by the head's forward pass."""
        if self.head._x is None:
            raise RuntimeError("no forward pass recorded")
        return self.head._x

    def _make_samples(
        self, bit_vectors: np.ndarray, max_samples: int, include_reversed: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        vectors = [np.asarray(v, dtype=np.float64).reshape(-1) for v in bit_vectors]
        if include_reversed:
            vectors += [v[::-1] for v in list(vectors)]
        xs, ys = [], []
        need = self.window_bits + self.chunk_bits
        for vec in vectors:
            for start in range(0, vec.size - need + 1, self.chunk_bits):
                xs.append(vec[start : start + self.window_bits])
                ys.append(vec[start + self.window_bits : start + need])
                if len(xs) >= max_samples:
                    break
            if len(xs) >= max_samples:
                break
        if not xs:
            return np.empty((0,)), np.empty((0,))
        X = np.stack(xs).reshape(len(xs), self.steps, self.chunk_bits)
        y = np.stack(ys)
        return X, y
