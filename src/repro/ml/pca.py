"""Principal component analysis via singular value decomposition.

Used by the PNW baseline [26], which pairs PCA with K-means to cope with
high-dimensional inputs; the paper's Figure 4 shows the information loss this
costs relative to the VAE's learned representation.
"""

from __future__ import annotations

import numpy as np


class PCA:
    """Linear projection onto the top ``n_components`` principal directions."""

    def __init__(self, n_components: int) -> None:
        if n_components <= 0:
            raise ValueError("n_components must be positive")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "PCA":
        """Learn the projection from the rows of ``X``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or len(X) < 2:
            raise ValueError("X must be 2D with at least 2 rows")
        k = min(self.n_components, X.shape[1], len(X))
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        n, d = centered.shape
        if d > 2 * n:
            # Tall-feature case: eigendecompose the n x n Gram matrix
            # instead of running SVD on the n x d matrix directly.
            gram = centered @ centered.T
            eigvals, eigvecs = np.linalg.eigh(gram)
            order = np.argsort(eigvals)[::-1]
            eigvals = np.maximum(eigvals[order], 0.0)
            eigvecs = eigvecs[:, order]
            s = np.sqrt(eigvals)
            nonzero = s > 1e-12
            vt = np.zeros((len(s), d))
            vt[nonzero] = (eigvecs[:, nonzero] / s[nonzero]).T @ centered
        else:
            _, s, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[:k]
        var = (s**2) / max(len(X) - 1, 1)
        total = var.sum()
        self.explained_variance_ratio_ = (
            var[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project rows of ``X`` into the component space."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("transform called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its projection."""
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Map projections back to the (approximate) original space."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("inverse_transform called before fit")
        Z = np.atleast_2d(np.asarray(Z, dtype=np.float64))
        return Z @ self.components_ + self.mean_
