"""Clustering quality metrics: SSE (Equation 1) and the elbow method.

The paper selects the number of clusters K with the elbow method [26, 38,
50]: sweep K, compute the Sum of Squared Error, and pick the K where the SSE
curve bends.  We detect the bend with the maximum-distance-to-chord rule
(a.k.a. the "kneedle" criterion), which finds the point farthest from the
straight line joining the curve's endpoints.
"""

from __future__ import annotations

import numpy as np


def sum_squared_error(X: np.ndarray, labels: np.ndarray, centers: np.ndarray) -> float:
    """SSE(X, Π) = Σ_i Σ_{x_j ∈ C_i} ‖x_j − m_i‖² (the paper's Equation 1)."""
    X = np.asarray(X, dtype=np.float64)
    labels = np.asarray(labels)
    centers = np.asarray(centers, dtype=np.float64)
    diffs = X - centers[labels]
    return float(np.einsum("ij,ij->", diffs, diffs))


def elbow_k(ks, sse_values) -> int:
    """Return the K at the elbow of an SSE-vs-K curve.

    Uses the maximum perpendicular distance from the (normalised) curve to
    the chord joining its first and last points.
    """
    ks = np.asarray(list(ks), dtype=np.float64)
    sse = np.asarray(list(sse_values), dtype=np.float64)
    if ks.size != sse.size or ks.size < 3:
        raise ValueError("need at least 3 (k, sse) points to find an elbow")
    # Normalise both axes to [0, 1] so the distances are scale-free.
    x = (ks - ks.min()) / max(ks.max() - ks.min(), 1e-12)
    y = (sse - sse.min()) / max(sse.max() - sse.min(), 1e-12)
    x0, y0 = x[0], y[0]
    x1, y1 = x[-1], y[-1]
    norm = np.hypot(x1 - x0, y1 - y0)
    if norm < 1e-12:
        return int(ks[0])
    distances = np.abs(
        (y1 - y0) * x - (x1 - x0) * y + x1 * y0 - y1 * x0
    ) / norm
    return int(ks[int(distances.argmax())])
