"""Loss functions with paired analytic gradients.

Each function returns ``(loss, *grads)`` where the loss is already averaged
over the batch and the gradients are w.r.t. the function's first argument(s)
with the same averaging — ready to feed straight into backprop.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-7


def bernoulli_nll(targets: np.ndarray, probs: np.ndarray) -> tuple[float, np.ndarray]:
    """Binary cross-entropy between 0/1 ``targets`` and probabilities.

    Returns ``(loss, grad_wrt_logits)`` — the gradient is w.r.t. the
    *pre-sigmoid logits* (the usual fused form ``probs - targets``), since
    every caller pairs this loss with a sigmoid output.
    """
    targets = np.asarray(targets, dtype=np.float64)
    probs = np.asarray(probs, dtype=np.float64)
    if targets.shape != probs.shape:
        raise ValueError(f"shape mismatch: {targets.shape} vs {probs.shape}")
    batch = max(len(targets), 1)
    loss = float(
        -(
            targets * np.log(probs + _EPS)
            + (1.0 - targets) * np.log(1.0 - probs + _EPS)
        ).sum()
        / batch
    )
    grad_logits = (probs - targets) / batch
    return loss, grad_logits


def gaussian_kl(
    mu: np.ndarray, logvar: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """KL( N(mu, exp(logvar)) || N(0, I) ), batch-averaged.

    Returns ``(loss, grad_mu, grad_logvar)``.
    """
    mu = np.asarray(mu, dtype=np.float64)
    logvar = np.asarray(logvar, dtype=np.float64)
    if mu.shape != logvar.shape:
        raise ValueError(f"shape mismatch: {mu.shape} vs {logvar.shape}")
    batch = max(len(mu), 1)
    loss = float(-0.5 * (1.0 + logvar - mu**2 - np.exp(logvar)).sum() / batch)
    grad_mu = mu / batch
    grad_logvar = 0.5 * (np.exp(logvar) - 1.0) / batch
    return loss, grad_mu, grad_logvar


def mse(targets: np.ndarray, predictions: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error (summed over features, averaged over the batch).

    Returns ``(loss, grad_wrt_predictions)``.
    """
    targets = np.asarray(targets, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    if targets.shape != predictions.shape:
        raise ValueError(
            f"shape mismatch: {targets.shape} vs {predictions.shape}"
        )
    batch = max(len(targets), 1)
    diff = predictions - targets
    loss = float((diff**2).sum() / batch)
    return loss, 2.0 * diff / batch
