"""Batching and splitting helpers for the training loops."""

from __future__ import annotations

import numpy as np

from repro.util.rng import rng_from_seed


def train_val_split(
    X: np.ndarray,
    val_fraction: float = 0.1,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffle and split rows of ``X`` into (train, validation)."""
    if not 0.0 <= val_fraction < 1.0:
        raise ValueError("val_fraction must be in [0, 1)")
    rng = rng_from_seed(seed)
    order = rng.permutation(len(X))
    n_val = int(round(len(X) * val_fraction))
    val_idx, train_idx = order[:n_val], order[n_val:]
    return X[train_idx], X[val_idx]


def iterate_minibatches(
    X: np.ndarray,
    batch_size: int,
    seed: int | np.random.Generator | None = None,
    shuffle: bool = True,
):
    """Yield row mini-batches of ``X``; the final batch may be short."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = len(X)
    order = np.arange(n)
    if shuffle:
        rng_from_seed(seed).shuffle(order)
    for start in range(0, n, batch_size):
        yield X[order[start : start + batch_size]]
