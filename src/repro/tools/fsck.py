"""Offline consistency checker for durable KV-store snapshots.

``python -m repro.tools.fsck store.npz`` loads an :meth:`NVMDevice.save`
snapshot *read-only* (nothing is repaired or rolled back) and
cross-checks every layer of the persistent format:

- **Undo log** — the active flag and every record's framing, CRC32 and
  valid byte.  An active transaction is not an error (recovery rolls it
  back on the next open), but its pending records downgrade value-level
  findings to warnings: their segments are in a legitimately torn state.
- **Catalog** — every live record's value bytes are read back through
  the controller (ECP-corrected when the snapshot carries a wear-out
  model) and checked against the record's CRC32; duplicate live keys are
  flagged.
- **ECP table** — entry counts within per-segment capacity, bit offsets
  within the segment, replacement bits actually bits.
- **Health/catalog agreement** — live values on retired segments
  (awaiting relocation) or retiring segments (awaiting compaction) are
  warnings; spare segments that the catalog claims hold live data, spare
  segments that are simultaneously retired/retiring, and reclaimed
  segments that are also retired or retiring are errors.

Exit status is 0 when no errors were found (warnings alone stay 0) and
1 otherwise, so the checker drops into scripts and CI as-is.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.nvm.controller import MemoryController
from repro.nvm.device import NVMDevice
from repro.pmem.catalog import DEFAULT_KEY_CAPACITY, PersistentCatalog
from repro.pmem.pool import PersistentPool

_LOG_HEADER_BYTES = 16
_RECORD_HEADER = struct.Struct("<QI")
_RECORD_CRC = struct.Struct("<I")


@dataclass
class FsckReport:
    """Findings of one :func:`fsck` run."""

    path: str
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: Live catalog entries whose value CRC verified clean.
    values_ok: int = 0
    #: Intact undo records of a transaction left active by a crash.
    pending_undo_records: int = 0
    #: Distinct live catalog keys (the cross-shard checker routes these
    #: through the manifest ring).
    live_keys: list[bytes] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warning(self, message: str) -> None:
        self.warnings.append(message)


def _read(controller, addr: int, length: int) -> bytes:
    """Segment-chunked controller read (log records cross boundaries)."""
    seg = controller.segment_size
    out = b""
    while len(out) < length:
        room = seg - ((addr + len(out)) % seg)
        out += controller.read(addr + len(out), min(room, length - len(out)))
    return out


def _scan_undo_log(controller, pool, report: FsckReport) -> set[int]:
    """Check the undo-log region; returns the set of media addresses the
    pending (not yet rolled back) transaction has undo records for."""
    pending: set[int] = set()
    flag = controller.read(0, 1)[0]
    if flag not in (0, 1):
        report.error(f"undo log: active flag holds garbage byte {flag:#x}")
        return pending
    if flag == 0:
        return pending
    report.warning(
        "undo log: transaction left active by a crash "
        "(recovery will roll it back on the next open)"
    )
    capacity = pool.log_segments * controller.segment_size
    trailer = _RECORD_CRC.size + 1
    offset = _LOG_HEADER_BYTES
    while offset + _RECORD_HEADER.size + trailer <= capacity:
        header = _read(controller, offset, _RECORD_HEADER.size)
        addr, length = _RECORD_HEADER.unpack(header)
        if length == 0 or length > capacity:
            break  # scan terminator (or torn header) — same rule as recover
        record_end = offset + _RECORD_HEADER.size + length
        if record_end + trailer > capacity:
            break
        valid = _read(controller, record_end + _RECORD_CRC.size, 1)[0]
        if valid != 1:
            break  # torn tail: recovery stops here too
        old = _read(controller, offset + _RECORD_HEADER.size, length)
        (crc_stored,) = _RECORD_CRC.unpack(
            _read(controller, record_end, _RECORD_CRC.size)
        )
        if crc_stored != (zlib.crc32(header + old) & 0xFFFFFFFF):
            # A stale valid byte over a torn body; recovery ends its scan
            # here, so later records are unreachable — worth flagging.
            report.warning(
                f"undo log: record at offset {offset} has a set valid byte "
                "but a failing CRC (torn body; recovery stops scanning here)"
            )
            break
        for byte in range(addr, addr + length):
            pending.add(byte)
        report.pending_undo_records += 1
        offset = record_end + trailer
    return pending


def _touched(pending: set[int], addr: int, length: int) -> bool:
    return any(a in pending for a in range(addr, addr + length))


def _scan_catalog(controller, pool, catalog, pending, report) -> None:
    seen_keys: dict[bytes, tuple[int, bool]] = {}
    for slot in range(catalog.n_slots):
        entry = catalog.read(slot)
        if entry is None:
            continue
        addr = pool.object_address(slot)
        record_pending = _touched(
            pending, catalog.record_address(slot), catalog.record_size
        ) or _touched(pending, addr, entry.value_len)
        value = pool.read(addr, entry.value_len)
        if zlib.crc32(value) & 0xFFFFFFFF != entry.crc:
            message = (
                f"slot {slot} (segment address {addr}): value of key "
                f"{entry.key!r} fails its catalog CRC32"
            )
            if record_pending:
                report.warning(
                    message + " — covered by a pending undo record, "
                    "recovery will roll it back"
                )
            else:
                report.error(message)
        else:
            report.values_ok += 1
        if entry.key in seen_keys:
            other_slot, other_pending = seen_keys[entry.key]
            message = (
                f"duplicate live key {entry.key!r} in slots "
                f"{other_slot} and {slot}"
            )
            # A migration (``tx_move``) writes the forwarded record and
            # clears the old one in a single transaction; a crash between
            # the two leaves a duplicate pair with *one* side covered by
            # the pending undo log — recovery rolls it back.
            if record_pending or other_pending:
                report.warning(message + " — pending undo record")
            else:
                report.error(message)
        else:
            seen_keys[entry.key] = (slot, record_pending)
    report.live_keys = sorted(seen_keys)


def _scan_ecp(device, report: FsckReport) -> None:
    if device.ecc is None:
        return
    segs, offs, _vals = device.ecc.state_arrays()
    bits = device.segment_size * 8
    per_segment: dict[int, int] = {}
    for seg, off in zip(segs, offs):
        seg, off = int(seg), int(off)
        per_segment[seg] = per_segment.get(seg, 0) + 1
        if not 0 <= seg < device.n_segments:
            report.error(f"ECP table: entry for out-of-range segment {seg}")
        if not 0 <= off < bits:
            report.error(
                f"ECP table: segment {seg} entry points at bit {off}, "
                f"beyond the segment's {bits} bits"
            )
    cap = device.ecc.entries_per_segment
    for seg, count in sorted(per_segment.items()):
        if count > cap:
            report.error(
                f"ECP table: segment {seg} holds {count} entries, over its "
                f"capacity of {cap}"
            )


def _scan_health(device, pool, catalog, report: FsckReport) -> None:
    health = getattr(device, "health", None)
    if health is None:
        return
    live_segments = {
        pool.object_address(entry.slot) // device.segment_size
        for entry in catalog.scan()
    }
    for seg in sorted(health.retired & live_segments):
        report.warning(
            f"retired segment {seg} still holds a live catalog value "
            "(readable in place; awaiting relocation)"
        )
    retiring = getattr(health, "retiring", set())
    for seg in sorted(retiring & live_segments):
        report.warning(
            f"retiring segment {seg} still holds a live catalog value "
            "(readable in place; awaiting compaction)"
        )
    spare_segments = {addr // device.segment_size for addr in health.spares}
    for seg in sorted(spare_segments & live_segments):
        report.error(
            f"spare segment {seg} is simultaneously live in the catalog"
        )
    for seg in sorted(spare_segments & (health.retired | retiring)):
        report.error(
            f"spare segment {seg} is simultaneously retired/retiring — "
            "activation would hand out dying media"
        )
    reclaimed = getattr(health, "reclaimed", set())
    for seg in sorted(reclaimed & health.retired):
        report.error(
            f"segment {seg} is both reclaimed (spare-class) and retired"
        )
    for seg in sorted(reclaimed & retiring):
        report.error(
            f"segment {seg} is both reclaimed (spare-class) and retiring"
        )


def fsck(
    path,
    *,
    log_segments: int = 2,
    key_capacity: int = DEFAULT_KEY_CAPACITY,
) -> FsckReport:
    """Check the store snapshot at ``path``; see the module docstring.

    ``log_segments`` and ``key_capacity`` must match the values the store
    was created with — they fix the media layout and are not themselves
    recorded on the media (real deployments bake them into a superblock).
    """
    report = FsckReport(path=str(path))
    device = NVMDevice.load(path)
    controller = MemoryController(device)
    meta_segments = PersistentCatalog.meta_segments_for(
        controller.n_segments,
        log_segments,
        controller.segment_size,
        key_capacity,
    )
    pool = PersistentPool(
        controller, log_segments=log_segments, meta_segments=meta_segments
    )
    catalog = PersistentCatalog(pool, key_capacity=key_capacity)

    pending = _scan_undo_log(controller, pool, report)
    _scan_catalog(controller, pool, catalog, pending, report)
    _scan_ecp(device, report)
    _scan_health(device, pool, catalog, report)
    return report


@dataclass
class ShardedFsckReport:
    """Findings of one :func:`fsck_sharded` run: per-shard reports plus
    the cross-shard routing checks."""

    root: str
    shards: list[FsckReport] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: Live keys that ring-route to the shard actually holding them.
    placed_ok: int = 0
    #: Journal state when a rebalance was in flight (else ``None``).
    rebalance_state: str | None = None

    @property
    def ok(self) -> bool:
        return not self.errors and all(r.ok for r in self.shards)

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warning(self, message: str) -> None:
        self.warnings.append(message)


def fsck_sharded(root) -> ShardedFsckReport:
    """Cross-shard consistency check of a sharded store directory.

    Runs :func:`fsck` on every shard snapshot named by the manifest (with
    that shard's own geometry — no guessed parameters), then checks the
    *placement* invariant rebalancing must preserve: every live key on
    shard ``s`` ring-routes to ``s`` under the manifest ring, and no key
    is live on two shards.

    A ``rebalance.json`` journal in ``planned``/``draining`` state relaxes
    exactly the states the drain protocol passes through: a key on its
    *old* owner that now routes elsewhere is mid-migration (warning, not
    error), and a key live on precisely its {old owner, new owner} pair is
    inside a copy window whose delete has not landed yet (warning).  Any
    other misplacement or duplication is an error either way.  The
    authoritative ring is the journal's *new* ring when one is active —
    writes already route by it — and the manifest ring otherwise.
    """
    # Local import: the tool must stay importable for single snapshots
    # even if the sharding package grows heavier dependencies.
    from repro.sharding.rebalance import RebalanceJournal
    from repro.sharding.ring import HashRing

    root = Path(root)
    report = ShardedFsckReport(root=str(root))
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        report.error(f"{root} has no manifest.json (not a sharded store?)")
        return report
    manifest = json.loads(manifest_path.read_text())
    ring = HashRing(**manifest["ring"])
    old_ring = None
    journal = RebalanceJournal.load(root)
    if journal is not None:
        report.rebalance_state = journal.state
        if journal.state in ("planned", "draining"):
            ring = HashRing(**journal.new_ring)
            old_ring = HashRing(**journal.old_ring)
        elif journal.state == "flipped":
            # Past the point of no return: open() rewrites the manifest
            # with the journal's new ring, so judge placement by it.
            ring = HashRing(**journal.new_ring)

    holders: dict[bytes, list[int]] = {}
    for entry in manifest["shards"]:
        shard_id = entry["shard_id"]
        snapshot = entry.get("path")
        if not snapshot or not Path(snapshot).exists():
            report.warning(
                f"shard {shard_id}: no snapshot on disk (crashed before "
                "save; recovery covers it on open) — placement unchecked"
            )
            continue
        shard_report = fsck(
            snapshot,
            log_segments=entry["log_segments"],
            key_capacity=entry["key_capacity"],
        )
        report.shards.append(shard_report)
        for key in shard_report.live_keys:
            holders.setdefault(key, []).append(shard_id)
            owner = ring.shard_of(key)
            if owner == shard_id:
                report.placed_ok += 1
            elif old_ring is not None and old_ring.shard_of(key) == shard_id:
                report.warning(
                    f"key {key!r} on shard {shard_id} now routes to shard "
                    f"{owner} — mid-migration (rebalance "
                    f"{report.rebalance_state})"
                )
            else:
                report.error(
                    f"misplaced key {key!r}: live on shard {shard_id} but "
                    f"ring-routes to shard {owner}"
                )
    for key, shards in sorted(holders.items()):
        if len(shards) < 2:
            continue
        owner = ring.shard_of(key)
        pair = {owner} | (
            {old_ring.shard_of(key)} if old_ring is not None else set()
        )
        if old_ring is not None and set(shards) == pair and len(pair) == 2:
            report.warning(
                f"key {key!r} live on shards {shards} — inside a "
                "copy window (rebalance draining; delete-from-source "
                "pending)"
            )
        else:
            report.error(f"key {key!r} live on multiple shards {shards}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.fsck",
        description="Offline consistency check of a KV-store snapshot "
        "(an NVMDevice.save .npz file) or a sharded store directory "
        "(per-shard checks plus cross-shard key placement).",
    )
    parser.add_argument(
        "pool",
        help="path to a device snapshot (.npz) or a sharded store directory",
    )
    parser.add_argument(
        "--log-segments", type=int, default=2,
        help="undo-log segments the store was created with (default: 2; "
        "ignored for directories — the manifest records each shard's)",
    )
    parser.add_argument(
        "--key-capacity", type=int, default=DEFAULT_KEY_CAPACITY,
        help="catalog key capacity the store was created with "
        f"(default: {DEFAULT_KEY_CAPACITY}; ignored for directories)",
    )
    args = parser.parse_args(argv)
    if Path(args.pool).is_dir():
        report = fsck_sharded(args.pool)
        print(f"fsck {report.root} (sharded)")
        if report.rebalance_state is not None:
            print(f"  rebalance in flight: {report.rebalance_state}")
        values_ok = sum(r.values_ok for r in report.shards)
        print(
            f"  {len(report.shards)} shard(s): {values_ok} live value(s) "
            f"verified, {report.placed_ok} correctly placed"
        )
        for shard_report in report.shards:
            for message in shard_report.warnings:
                print(f"  WARNING [{shard_report.path}]: {message}")
            for message in shard_report.errors:
                print(f"  ERROR [{shard_report.path}]: {message}")
        for message in report.warnings:
            print(f"  WARNING: {message}")
        for message in report.errors:
            print(f"  ERROR: {message}")
        n_errors = len(report.errors) + sum(
            len(r.errors) for r in report.shards
        )
        print(f"  {'clean' if report.ok else f'{n_errors} error(s)'}")
        return 0 if report.ok else 1
    report = fsck(
        args.pool,
        log_segments=args.log_segments,
        key_capacity=args.key_capacity,
    )
    print(f"fsck {report.path}")
    print(
        f"  {report.values_ok} live value(s) verified, "
        f"{report.pending_undo_records} pending undo record(s)"
    )
    for message in report.warnings:
        print(f"  WARNING: {message}")
    for message in report.errors:
        print(f"  ERROR: {message}")
    print(f"  {'clean' if report.ok else f'{len(report.errors)} error(s)'}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
