"""Offline maintenance tools, runnable as ``python -m repro.tools.<name>``.

- :mod:`repro.tools.fsck` — offline consistency checker for a device
  snapshot holding a durable KV store (undo-log records, catalog CRCs,
  ECP table sanity, health/catalog agreement).
"""
