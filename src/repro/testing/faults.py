"""Deterministic fault injection for resilience testing.

The write/retrain path is instrumented with named *fault sites* — e.g.
``"train.fit"`` just before a candidate model is fitted, ``"train.relabel"``
inside the atomic pool swap, ``"device.write"`` ahead of the media write.
A :class:`FaultInjector` armed on a site can raise a configurable error,
sleep (a "slow fit"), or both, a bounded number of times.  This is how the
recovery paths — pool restore, deferred retrain, write un-claim — are
actually exercised by the test suite rather than merely existing.

Instrumented code calls ``injector.fire(site)``; the call is a no-op for
sites that are not armed, and engines without an injector skip the call
entirely, so production hot paths pay nothing.

Crash-consistency testing builds on two extensions:

- :class:`CrashError` models *process death*.  It derives from
  ``BaseException`` so ordinary ``except Exception`` cleanup handlers do
  not treat it as a recoverable error, and the persistent-memory layer
  deliberately skips transaction rollback when it sees one — the media is
  left exactly as it was at the crash point, as on a real power failure.
- *Torn writes*: a rule armed with ``torn_fraction`` acts on write-capable
  sites (those passing ``payload_writer``/``payload_len`` to
  :meth:`FaultInjector.fire`) by first persisting only a prefix of the
  payload bytes and then raising, modelling a write interrupted mid-flight
  at the device.

Usage::

    faults = FaultInjector()
    faults.arm("train.fit", error=FaultError("fit exploded"), times=1)
    engine.faults = faults
    ...
    with faults.injected("device.write", error=OSError("media error")):
        engine.write(value)   # raises OSError, address un-claimed

    # Crash with a torn media write at the 3rd transactional write:
    faults.arm("tx.write", error=CrashError, after=2, torn_fraction=0.5)
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable


class FaultError(RuntimeError):
    """Default exception raised by an armed fault site."""


class CrashError(BaseException):
    """Simulated process death at a fault site.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that
    library code catching ``Exception`` for cleanup does not swallow it:
    after a crash there is no process left to clean up.  Crash harnesses
    catch it at the top level, discard every DRAM object, and re-open the
    store from the media alone.
    """


@dataclass
class FaultRule:
    """Behaviour of one armed fault site.

    Attributes:
        site: the fault-site name the rule is armed on.
        error: exception instance or class to raise when the rule acts;
            ``None`` means the rule only delays.
        delay: seconds to sleep when the rule acts (a "slow" site).
        after: number of hits to let through untouched before acting.
        times: maximum number of times the rule acts (``None`` = forever).
        torn_fraction: when acting on a write-capable site, persist this
            fraction of the payload bytes (rounded down) before raising —
            a device-level torn write.  ``None`` tears nothing.
    """

    site: str
    error: BaseException | type[BaseException] | None = None
    delay: float = 0.0
    after: int = 0
    times: int | None = 1
    torn_fraction: float | None = None
    hits: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)
    torn_writes: int = field(default=0, init=False)

    def _take(self) -> bool:
        """Record a hit; return True when the rule should act on it."""
        self.hits += 1
        if self.hits <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        self.fired += 1
        return True

    def _raise(self) -> None:
        if self.error is None:
            return
        if isinstance(self.error, BaseException):
            raise self.error
        raise self.error(f"injected fault at {self.site!r}")


class FaultInjector:
    """Thread-safe registry of armed fault sites.

    Every :meth:`fire` call is counted per site (armed or not), so tests can
    also assert that an instrumented point was actually reached.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rules: dict[str, FaultRule] = {}
        self._site_hits: dict[str, int] = {}

    def arm(
        self,
        site: str,
        *,
        error: BaseException | type[BaseException] | None = None,
        delay: float = 0.0,
        after: int = 0,
        times: int | None = 1,
        torn_fraction: float | None = None,
    ) -> FaultRule:
        """Arm ``site``; the next ``fire(site)`` (after ``after`` skips)
        sleeps ``delay`` seconds and raises ``error``, up to ``times`` times.
        With ``torn_fraction`` set, a write-capable site first persists that
        fraction of its payload (a torn write) before the error is raised.

        Arming a site that carries no ``error`` and no ``delay`` raises
        ``ValueError`` — such a rule could never act.
        """
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        if error is None and delay == 0.0:
            raise ValueError("a fault rule needs an error, a delay, or both")
        if after < 0:
            raise ValueError("after must be non-negative")
        if times is not None and times <= 0:
            raise ValueError("times must be positive (or None for forever)")
        if torn_fraction is not None and not 0.0 <= torn_fraction <= 1.0:
            raise ValueError("torn_fraction must be in [0, 1]")
        rule = FaultRule(
            site,
            error=error,
            delay=delay,
            after=after,
            times=times,
            torn_fraction=torn_fraction,
        )
        with self._lock:
            self._rules[site] = rule
        return rule

    def disarm(self, site: str) -> None:
        """Remove the rule on ``site`` (no-op when not armed)."""
        with self._lock:
            self._rules.pop(site, None)

    def reset(self) -> None:
        """Disarm every site and clear all hit counters."""
        with self._lock:
            self._rules.clear()
            self._site_hits.clear()

    def armed(self, site: str) -> bool:
        """Whether ``site`` currently has a rule."""
        with self._lock:
            return site in self._rules

    def hits(self, site: str) -> int:
        """How many times ``fire(site)`` has been called (armed or not)."""
        with self._lock:
            return self._site_hits.get(site, 0)

    def fired(self, site: str) -> int:
        """How many times the rule on ``site`` has acted."""
        with self._lock:
            rule = self._rules.get(site)
            return rule.fired if rule is not None else 0

    @contextlib.contextmanager
    def injected(self, site: str, **kwargs):
        """Context manager: arm ``site`` on entry, disarm on exit."""
        rule = self.arm(site, **kwargs)
        try:
            yield rule
        finally:
            self.disarm(site)

    def fire(
        self,
        site: str,
        *,
        payload_len: int = 0,
        payload_writer: Callable[[int], None] | None = None,
    ) -> None:
        """Hit ``site``: sleep and/or raise when an armed rule says so.

        Write-capable sites pass the size of the bytes about to hit the
        media (``payload_len``) and a ``payload_writer`` callback that,
        given ``n``, persists exactly the first ``n`` payload bytes.  A rule
        armed with ``torn_fraction`` uses them to model a torn write: the
        prefix is persisted, then the rule's error (typically
        :class:`CrashError`) is raised before the rest ever lands.
        """
        with self._lock:
            self._site_hits[site] = self._site_hits.get(site, 0) + 1
            rule = self._rules.get(site)
            act = rule._take() if rule is not None else False
        if not act:
            return
        # Sleep outside the lock so a slow site never blocks other sites.
        if rule.delay > 0.0:
            time.sleep(rule.delay)
        if (
            rule.torn_fraction is not None
            and payload_writer is not None
            and payload_len > 0
        ):
            keep = int(payload_len * rule.torn_fraction)
            if keep > 0:
                payload_writer(min(keep, payload_len))
            rule.torn_writes += 1
        rule._raise()
