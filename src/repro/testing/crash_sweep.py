"""Exhaustive crash-point sweeping for the durable KV store.

The harness answers one question mechanically: *is there any single point
in the write path where a crash — including a torn media write — loses
acknowledged data or corrupts the store?*  It replays a seeded YCSB-style
trace once per crash point, where a crash point is the *k*-th firing of one
instrumented fault site (``device.write``, ``tx.begin``, ``tx.log``,
``tx.write``, ``tx.commit`` — optionally with a torn-write variant that
persists only a payload prefix).  Each replay:

1. builds a byte-identical fresh device/pool/store (same seeds, same
   pre-trained pipeline) and arms exactly one crash point;
2. applies the trace, recording an operation in the oracle only once the
   call *returns* (the acknowledgement);
3. on :class:`~repro.testing.faults.CrashError`, discards every DRAM
   object — the process "died" — and re-opens the store from the media
   with :meth:`KVStore.open` over a brand-new pool;
4. checks the full durability contract (:func:`check_durable_invariants`):
   acknowledged contents exact, no phantom or resurrected entries, pool
   accounting exact (free ∪ allocated = capacity, disjoint), and a DAP
   whose addresses are precisely the free, validity-flag-clear segments.

A clean pass over every fired site is the repository's machine-checked
durability proof; ``tests/integration/test_crash_sweep.py`` runs a small
sweep in tier 1 and the exhaustive ≥200-op sweep under the ``crash``
marker (CI's ``crash-sweep`` job).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import E2NVMConfig, fast_test_config
from repro.core.kvstore import KVStore, StoreReadOnlyError
from repro.nvm.compactor import Compactor
from repro.nvm.controller import MemoryController
from repro.nvm.device import DriftConfig, NVMDevice, WearOutConfig
from repro.nvm.scrubber import Scrubber
from repro.nvm.wear_leveling import (
    SegmentSwapWearLeveling,
    StartGapWearLeveling,
)
from repro.pmem.catalog import PersistentCatalog
from repro.pmem.pool import PersistentPool
from repro.testing.faults import CrashError, FaultInjector
from repro.util.rng import rng_from_seed
from repro.workloads.ycsb import PrototypeValueGenerator
from repro.workloads.zipfian import ScrambledZipfianGenerator

#: Sites every sweep crashes at (each *k*-th firing of each).  The
#: wear-out sites (``device.stuck_at``, ``health.retire``,
#: ``health.relocate``) fire only on a harness built with a
#: :class:`~repro.nvm.device.WearOutConfig`; on an immortal device they
#: count zero baseline hits and contribute no crash points.
DEFAULT_CRASH_SITES = (
    "device.write",
    "tx.begin",
    "tx.log",
    "tx.write",
    "tx.commit",
    "device.stuck_at",
    "health.retire",
    "health.relocate",
    "device.drift_flip",
    "scrub.refresh",
    "compact.migrate",
    "compact.reclaim",
    "wl.swap",
)
#: Write-capable sites additionally swept with torn-write variants.
DEFAULT_TORN_SITES = ("tx.log", "tx.write")
#: Subset of :data:`DEFAULT_CRASH_SITES` only a wear-out device can fire;
#: on an immortal harness they count zero hits and contribute no points.
WEAROUT_CRASH_SITES = ("device.stuck_at", "health.retire", "health.relocate")
#: Subset of :data:`DEFAULT_CRASH_SITES` only a drift-enabled harness (one
#: built with a :class:`~repro.nvm.device.DriftConfig`) can fire: the
#: drift event itself and the scrubber's refresh write.  Elsewhere they
#: count zero hits and contribute no points.
DRIFT_CRASH_SITES = ("device.drift_flip", "scrub.refresh")
#: Subset of :data:`DEFAULT_CRASH_SITES` fired by capacity reclamation:
#: every migration write point (``compact.migrate``), the reclaim metadata
#: transition (``compact.reclaim``), and the compactor's static
#: wear-leveling swap (``wl.swap``).  They need a wear-out harness built
#: with ``gc=True`` (attaching a synchronous :class:`Compactor`) to fire;
#: elsewhere they count zero hits and contribute no points.
GC_CRASH_SITES = ("compact.migrate", "compact.reclaim", "wl.swap")


def make_ycsb_trace(
    n_ops: int,
    n_keys: int = 12,
    value_size: int = 64,
    seed: int = 0,
    mix: tuple[float, float, float] = (0.55, 0.25, 0.20),
) -> list[tuple]:
    """A seeded YCSB-style PUT/DELETE/GET trace.

    Keys follow YCSB's ``user...`` naming and a scrambled-Zipfian request
    distribution; values come from the prototype generator the YCSB module
    uses, truncated to a random length so short and full-segment values
    both appear.  ``mix`` is the (put, delete, get) fraction — deletes and
    re-inserts are what exercise Algorithm 2's flag reset.
    """
    p_put, p_delete, p_get = mix
    if abs(p_put + p_delete + p_get - 1.0) > 1e-9:
        raise ValueError("mix must sum to 1")
    rng = rng_from_seed(seed)
    chooser = ScrambledZipfianGenerator(n_keys, seed=rng)
    values = PrototypeValueGenerator(value_size, seed=rng)
    trace: list[tuple] = []
    for _ in range(n_ops):
        key = b"user%03d" % chooser.next()
        roll = rng.random()
        if roll < p_put:
            length = int(rng.integers(1, value_size + 1))
            trace.append(("put", key, values.value()[:length]))
        elif roll < p_put + p_delete:
            trace.append(("delete", key))
        else:
            trace.append(("get", key))
    return trace


def weave_aging(
    trace,
    *,
    age_every: int = 5,
    age_ticks: int = 1,
    scrub_every: int = 10,
) -> list[tuple]:
    """Interleave retention aging and scrub rounds into a KV trace.

    Every ``age_every`` ops an ``("age", age_ticks)`` op advances the
    device's retention clock (possible ``device.drift_flip`` crash
    points); every ``scrub_every`` ops a ``("scrub",)`` op runs one
    synchronous scrub round (``scrub.refresh`` crash points).  Use on a
    harness built with a :class:`~repro.nvm.device.DriftConfig`.
    """
    out: list[tuple] = []
    for i, op in enumerate(trace, 1):
        out.append(op)
        if age_every and i % age_every == 0:
            out.append(("age", age_ticks))
        if scrub_every and i % scrub_every == 0:
            out.append(("scrub",))
    return out


def weave_compaction(trace, *, compact_every: int = 6) -> list[tuple]:
    """Interleave synchronous compaction rounds into a KV trace.

    Every ``compact_every`` ops a ``("compact",)`` op runs one budgeted
    :meth:`Compactor.compact_round` — relocation draining (with its
    ``compact.migrate``/``compact.reclaim`` crash points) plus static
    wear leveling (``wl.swap`` points).  Use on a harness built with a
    :class:`~repro.nvm.device.WearOutConfig` and ``gc=True``.
    """
    out: list[tuple] = []
    for i, op in enumerate(trace, 1):
        out.append(op)
        if compact_every and i % compact_every == 0:
            out.append(("compact",))
    return out


def apply_trace(store: KVStore, trace, oracle: dict[bytes, bytes]) -> int:
    """Apply ``trace``, acknowledging each op into ``oracle`` only after the
    call returns.  Returns the number of acknowledged operations; a crash
    propagates with the oracle still reflecting only acknowledged state.

    A wear-out degradation to read-only ends the trace early (the refused
    op was never acknowledged, so the oracle stays exact); deterministic
    replays degrade at the same op, keeping crash-point counting sound.
    """
    acked = 0
    for op in trace:
        if op[0] == "put":
            try:
                store.put(op[1], op[2])
            except StoreReadOnlyError:
                return acked
            oracle[op[1]] = op[2]
        elif op[0] == "delete":
            try:
                store.delete(op[1])
            except StoreReadOnlyError:
                return acked
            oracle.pop(op[1], None)
        elif op[0] == "get":
            got = store.get(op[1])
            expected = oracle.get(op[1])
            if got != expected:
                raise AssertionError(
                    f"GET {op[1]!r} returned {got!r}, oracle says "
                    f"{expected!r}"
                )
        elif op[0] == "age":
            # Retention aging: advances the drift clock (may fire the
            # ``device.drift_flip`` crash site); observable contents are
            # unchanged — drifted values are repaired or refused on read.
            store.engine.controller.device.advance_time(op[1])
        elif op[0] == "scrub":
            # One synchronous scrub round (``scrub.refresh`` crash
            # points); content-neutral by construction.
            if store.scrubber is not None:
                store.scrubber.scrub_round()
        elif op[0] == "compact":
            # One synchronous compaction round (``compact.migrate``,
            # ``compact.reclaim`` and ``wl.swap`` crash points);
            # content-neutral — it only moves live values and reclaims
            # drained segments.
            if store.compactor is not None:
                store.compactor.compact_round()
        else:
            raise ValueError(f"unknown trace op {op[0]!r}")
        acked += 1
    return acked


def check_durable_invariants(
    store: KVStore, oracle: dict[bytes, bytes]
) -> None:
    """Assert the full durability contract of a (re-opened) store.

    - recovered contents equal the acknowledged oracle exactly — no lost
      acknowledged PUT, no phantom un-acknowledged PUT, no resurrected
      DELETE;
    - pool accounting exact: free ∪ allocated ∪ retired = all object
      segments, pairwise disjoint;
    - the DAP holds exactly the placeable addresses — free minus the
      quarantined set (retired/retiring segments, reserved spares) — each
      exactly once, and every free address has a clear validity flag in
      the catalog;
    - every allocated address carries a valid catalog record that agrees
      with the index.

    On a store without a wear-out model the retired and quarantined sets
    are empty and this reduces to the original contract.
    """
    pool, catalog = store.pool, store.catalog
    contents = dict(store.items())
    assert contents == oracle, (
        f"store/oracle divergence: only-in-store="
        f"{ {k: v for k, v in contents.items() if oracle.get(k) != v} } "
        f"only-in-oracle="
        f"{ {k: v for k, v in oracle.items() if contents.get(k) != v} }"
    )

    all_objects = {
        pool.object_address(i) for i in range(pool.capacity_objects)
    }
    free = set(pool.free_addresses())
    allocated = pool.allocated_addresses()
    retired = pool.retired_addresses()
    assert free | allocated | retired == all_objects, (
        "pool accounting leaks segments"
    )
    assert not (free & allocated), "pool free/allocated sets overlap"
    assert not (retired & (free | allocated)), (
        "pool retired set overlaps free/allocated"
    )

    quarantined = store.engine.dap.quarantined()
    placeable = free - quarantined
    dap_addrs = store.engine.dap.snapshot_addresses()
    assert len(dap_addrs) == len(set(dap_addrs)), "DAP holds duplicates"
    assert set(dap_addrs) == placeable, (
        "DAP addresses are not exactly the placeable free segments"
    )
    assert set(store.engine.free_addresses()) == placeable, (
        "engine allocator disagrees with pool"
    )

    indexed = {}
    for key, (addr, length) in store.index.items():
        indexed[addr] = (key, length)
    assert set(indexed) == allocated, "index addresses != allocated segments"
    for addr in free:
        assert catalog.read(pool.object_index(addr)) is None, (
            f"free segment {addr} still has a valid catalog flag"
        )
    for addr in allocated:
        entry = catalog.read(pool.object_index(addr))
        assert entry is not None, f"allocated segment {addr} has no record"
        key, length = indexed[addr]
        assert entry.key == key and entry.value_len == length, (
            f"catalog record of {addr} disagrees with the index"
        )


class KVCrashHarness:
    """Builds byte-identical durable stores for repeated crash replays.

    One placement model is trained up front on the seeded device's initial
    contents and shared (read-only) by every replay and every recovery, so
    a sweep of thousands of crash points never retrains; each
    :meth:`fresh` still starts from an identical device, making every
    replay deterministic.
    """

    def __init__(
        self,
        *,
        n_segments: int = 96,
        segment_size: int = 64,
        log_segments: int = 4,
        key_capacity: int = 16,
        seed: int = 7,
        config: E2NVMConfig | None = None,
        wearout: WearOutConfig | None = None,
        drift: DriftConfig | None = None,
        spares: int = 0,
        gc: bool = False,
    ) -> None:
        self.n_segments = n_segments
        self.segment_size = segment_size
        self.log_segments = log_segments
        self.key_capacity = key_capacity
        self.seed = seed
        self.config = config or fast_test_config()
        self.spares = spares
        self.gc = gc
        self.meta_segments = PersistentCatalog.meta_segments_for(
            n_segments, log_segments, segment_size, key_capacity
        )
        if wearout is not None and wearout.immortal_prefix_segments == 0:
            # The log and catalog regions must not wear out mid-sweep: a
            # dead undo log is unrecoverable by design (real deployments
            # over-provision these), so give the reserved prefix infinite
            # endurance unless the caller chose otherwise.
            wearout = WearOutConfig(
                endurance_mean=wearout.endurance_mean,
                endurance_sigma=wearout.endurance_sigma,
                seed=wearout.seed,
                ecp_entries=wearout.ecp_entries,
                immortal_prefix_segments=(
                    log_segments + self.meta_segments
                ),
            )
        self.wearout = wearout
        if drift is not None and drift.immortal_prefix_segments == 0:
            # Undo log and catalog must not drift either: a decayed log
            # record CRC or catalog record would (correctly) be refused,
            # but these regions model over-provisioned metadata media.
            drift = DriftConfig(
                retention_mean=drift.retention_mean,
                retention_sigma=drift.retention_sigma,
                seed=drift.seed,
                wear_scale=drift.wear_scale,
                immortal_prefix_segments=(log_segments + self.meta_segments),
            )
        self.drift = drift
        _, _, store = self.fresh(FaultInjector())
        self.pipeline = store.engine.pipeline

    def _device(self, faults) -> NVMDevice:
        return NVMDevice(
            capacity_bytes=self.n_segments * self.segment_size,
            segment_size=self.segment_size,
            initial_fill="random",
            seed=self.seed,
            faults=faults,
            wearout=self.wearout,
            drift=self.drift,
        )

    def _pool(self, device, faults) -> PersistentPool:
        return PersistentPool(
            MemoryController(device),
            log_segments=self.log_segments,
            meta_segments=self.meta_segments,
            faults=faults,
        )

    def fresh(self, faults: FaultInjector):
        """A brand-new formatted store over a byte-identical device."""
        device = self._device(faults)
        pool = self._pool(device, faults)
        store = KVStore.create(
            pool,
            config=self.config,
            faults=faults,
            key_capacity=self.key_capacity,
            pipeline=getattr(self, "pipeline", None),
        )
        if self.spares:
            store.engine.reserve_spares(self.spares)
        if self.drift is not None:
            # Synchronous scrubber (never start()ed in sweeps): trace
            # ("scrub",) ops and CRC-failed reads drive it directly, and
            # one round can reach every live segment.
            Scrubber(store, segments_per_round=self.n_segments,
                     faults=faults)
        if self.gc:
            # Synchronous compactor (never start()ed): trace ("compact",)
            # ops drive it directly.  Aggressive thresholds so short
            # sweep traces still exercise wear-leveling swaps, not just
            # relocation draining.
            Compactor(store, relocations_per_round=4, swaps_per_round=1,
                      min_wear_gap=1, dormancy_writes=4, faults=faults)
        return device, pool, store

    def reopen(self, device: NVMDevice) -> KVStore:
        """Simulated restart: every DRAM structure is rebuilt from the
        media through a fresh controller and pool; no fault injector is
        carried over."""
        device.faults = None
        pool = self._pool(device, None)
        store = KVStore.open(
            pool,
            config=self.config,
            key_capacity=self.key_capacity,
            pipeline=self.pipeline,
        )
        if self.drift is not None:
            # The recovered store needs repair capability too: values that
            # drifted before (or during) the crash are healed on first
            # read instead of failing the invariant check.
            Scrubber(store, segments_per_round=self.n_segments)
        if self.gc:
            # Match :meth:`fresh`: the recovered store keeps reclaiming
            # (no injector — recovery replays never re-crash).
            Compactor(store, relocations_per_round=4, swaps_per_round=1,
                      min_wear_gap=1, dormancy_writes=4)
        return store


@dataclass
class CrashSweepReport:
    """Outcome of one exhaustive sweep."""

    ops: int
    site_hits: dict[str, int] = field(default_factory=dict)
    crash_points: int = 0
    torn_points: int = 0
    clean_replays: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def run_crash_sweep(
    harness: KVCrashHarness,
    trace,
    *,
    sites=DEFAULT_CRASH_SITES,
    torn_sites=DEFAULT_TORN_SITES,
    torn_fraction: float = 0.5,
    check_fsck: bool = False,
    progress=None,
) -> CrashSweepReport:
    """Replay ``trace`` crashing at every fired crash point, re-open, and
    check invariants after each crash.  Returns a report whose
    ``failures`` list is empty iff the durability contract held at every
    single point.

    With ``check_fsck`` the crashed device is additionally snapshotted
    and run through the offline checker (:func:`repro.tools.fsck.fsck`)
    *before* recovery: any fsck *error* at any crash point is a failure
    (warnings — a pending undo transaction, values awaiting relocation —
    are the expected face of a crash and stay clean)."""
    trace = list(trace)
    report = CrashSweepReport(ops=len(trace))

    # Baseline run: count how often each site fires and sanity-check the
    # crash-free end state (also populates the final oracle).
    faults = FaultInjector()
    device, _, store = harness.fresh(faults)
    oracle: dict[bytes, bytes] = {}
    apply_trace(store, trace, oracle)
    report.site_hits = {site: faults.hits(site) for site in sites}
    check_durable_invariants(harness.reopen(device), oracle)

    points = [
        (site, k, None)
        for site in sites
        for k in range(report.site_hits[site])
    ]
    points += [
        (site, k, torn_fraction)
        for site in torn_sites
        for k in range(report.site_hits.get(site, 0))
    ]

    for site, k, tear in points:
        label = f"{site}#{k}" + ("+torn" if tear is not None else "")
        faults = FaultInjector()
        faults.arm(site, error=CrashError, after=k, times=1,
                   torn_fraction=tear)
        device, _, store = harness.fresh(faults)
        oracle = {}
        crashed = False
        try:
            apply_trace(store, trace, oracle)
        except CrashError:
            crashed = True
        except Exception as exc:  # pragma: no cover - harness failure
            report.failures.append(f"{label}: replay error {exc!r}")
            continue
        if not crashed:
            # Deterministic replays hit every baseline-counted point.
            report.failures.append(f"{label}: crash point never fired")
            continue
        report.crash_points += 1
        if tear is not None:
            report.torn_points += 1
        del store  # process death: only the device survives
        if check_fsck:
            _fsck_crashed_device(harness, device, label, report)
        try:
            recovered = harness.reopen(device)
            check_durable_invariants(recovered, oracle)
        except AssertionError as exc:
            report.failures.append(f"{label}: {exc}")
        except Exception as exc:
            report.failures.append(f"{label}: recovery error {exc!r}")
        if progress is not None:
            progress(label, report)
    report.clean_replays = len(points) - report.crash_points
    return report


def _fsck_crashed_device(
    harness: KVCrashHarness, device, label: str, report: CrashSweepReport
) -> None:
    """Snapshot the crashed device and run the offline checker on it;
    fsck *errors* (not warnings) become sweep failures."""
    import os
    import tempfile

    from repro.tools.fsck import fsck

    fd, path = tempfile.mkstemp(suffix=".npz")
    os.close(fd)
    try:
        device.save(path)
        fsck_report = fsck(
            path,
            log_segments=harness.log_segments,
            key_capacity=harness.key_capacity,
        )
        for message in fsck_report.errors:
            report.failures.append(f"{label}: fsck: {message}")
    except Exception as exc:  # pragma: no cover - harness failure
        report.failures.append(f"{label}: fsck crashed: {exc!r}")
    finally:
        os.unlink(path)


# --------------------------------------------------------------------------
# Wear-leveling crash sweep
# --------------------------------------------------------------------------

#: Sites the wear-leveling sweep crashes at: the start of every swap, every
#: gap-style move, and every raw media program (the latter also with a torn
#: variant, which is what exposes the legacy in-place exchange).
WL_CRASH_SITES = ("wl.swap", "wl.gap_move", "device.program")
WL_TORN_SITES = ("device.program",)

#: Wear-leveling modes the sweep can build.
WL_MODES = ("swap-legacy", "swap-scratch", "start-gap")


@dataclass
class WearLevelingSweepReport:
    """Outcome of one wear-leveling crash sweep."""

    mode: str
    writes: int
    site_hits: dict[str, int] = field(default_factory=dict)
    crash_points: int = 0
    torn_points: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def _make_leveler(mode: str, period: int, seed: int):
    if mode == "swap-legacy":
        return SegmentSwapWearLeveling(period, seed=seed)
    if mode == "swap-scratch":
        return SegmentSwapWearLeveling(period, seed=seed, scratch=True)
    if mode == "start-gap":
        return StartGapWearLeveling(period)
    raise ValueError(f"unknown wear-leveling mode {mode!r}; pick from {WL_MODES}")


def run_wear_leveling_crash_sweep(
    mode: str = "swap-scratch",
    *,
    n_segments: int = 12,
    segment_size: int = 32,
    n_writes: int = 60,
    period: int = 3,
    seed: int = 11,
    sites=WL_CRASH_SITES,
    torn_sites=WL_TORN_SITES,
    torn_fraction: float = 0.5,
    progress=None,
) -> WearLevelingSweepReport:
    """Crash a wear-leveling workload at every copy/program point and check
    that every *committed* logical segment survives recovery.

    The remap table is modelled as hardware-persistent: a harness callback
    snapshots ``mapping_state()`` at every ``on_mapping_commit``, and
    recovery rebuilds a fresh leveler from the last committed snapshot over
    the surviving device.  The contract checked is the device-level one —
    a crash may corrupt *the segment being written* (transactional
    durability above is the KV store's job) but must never corrupt any
    other logical segment.  ``swap-scratch`` and ``start-gap`` pass it;
    the legacy in-place exchange (``swap-legacy``) demonstrably does not
    (a torn mid-swap program destroys the peer segment's committed data).
    """
    report = WearLevelingSweepReport(mode=mode, writes=n_writes)

    def replay(faults):
        """Run the workload; returns what survives a (possible) crash."""
        device = NVMDevice(
            capacity_bytes=n_segments * segment_size,
            segment_size=segment_size,
            initial_fill="random",
            seed=seed,
            faults=faults,
        )
        leveler = _make_leveler(mode, period, seed)
        controller = MemoryController(device, wear_leveling=leveler)
        committed = {"state": leveler.mapping_state()}
        leveler.on_mapping_commit = lambda: committed.update(
            state=leveler.mapping_state()
        )
        rng = rng_from_seed(seed + 1)
        oracle: dict[int, bytes] = {}
        pending: tuple[int, bytes] | None = None
        crashed = False
        try:
            for _ in range(n_writes):
                seg = int(rng.integers(0, controller.n_segments))
                value = bytes(
                    rng.integers(0, 256, segment_size, dtype=np.uint8)
                )
                pending = (seg, value)
                controller.write(seg * segment_size, value)
                oracle[seg] = value
                pending = None
        except CrashError:
            crashed = True
        return device, committed["state"], oracle, pending, crashed

    def verify(device, state, oracle, pending, label):
        """Recover from the committed mapping and check every committed
        segment; the mid-write segment (if any) is exempt by contract."""
        device.faults = None
        leveler = _make_leveler(mode, period, seed)
        controller = MemoryController(device, wear_leveling=leveler)
        leveler.restore_mapping(state)
        exempt = pending[0] if pending is not None else None
        for seg, value in sorted(oracle.items()):
            if seg == exempt:
                continue
            got = controller.read(seg * segment_size, segment_size)
            if got != value:
                report.failures.append(
                    f"{label}: logical segment {seg} lost committed data"
                )

    # Baseline: count firings per site and sanity-check the clean run.
    faults = FaultInjector()
    device, state, oracle, pending, crashed = replay(faults)
    assert not crashed and pending is None
    report.site_hits = {site: faults.hits(site) for site in sites}
    verify(device, state, oracle, None, "baseline")

    points = [
        (site, k, None)
        for site in sites
        for k in range(report.site_hits[site])
    ]
    points += [
        (site, k, torn_fraction)
        for site in torn_sites
        for k in range(report.site_hits.get(site, 0))
    ]
    for site, k, tear in points:
        label = f"{mode}:{site}#{k}" + ("+torn" if tear is not None else "")
        faults = FaultInjector()
        faults.arm(site, error=CrashError, after=k, times=1,
                   torn_fraction=tear)
        device, state, oracle, pending, crashed = replay(faults)
        if not crashed:
            report.failures.append(f"{label}: crash point never fired")
            continue
        report.crash_points += 1
        if tear is not None:
            report.torn_points += 1
        verify(device, state, oracle, pending, label)
        if progress is not None:
            progress(label, report)
    return report
