"""Exhaustive crash-point sweeping for the durable KV store.

The harness answers one question mechanically: *is there any single point
in the write path where a crash — including a torn media write — loses
acknowledged data or corrupts the store?*  It replays a seeded YCSB-style
trace once per crash point, where a crash point is the *k*-th firing of one
instrumented fault site (``device.write``, ``tx.begin``, ``tx.log``,
``tx.write``, ``tx.commit`` — optionally with a torn-write variant that
persists only a payload prefix).  Each replay:

1. builds a byte-identical fresh device/pool/store (same seeds, same
   pre-trained pipeline) and arms exactly one crash point;
2. applies the trace, recording an operation in the oracle only once the
   call *returns* (the acknowledgement);
3. on :class:`~repro.testing.faults.CrashError`, discards every DRAM
   object — the process "died" — and re-opens the store from the media
   with :meth:`KVStore.open` over a brand-new pool;
4. checks the full durability contract (:func:`check_durable_invariants`):
   acknowledged contents exact, no phantom or resurrected entries, pool
   accounting exact (free ∪ allocated = capacity, disjoint), and a DAP
   whose addresses are precisely the free, validity-flag-clear segments.

A clean pass over every fired site is the repository's machine-checked
durability proof; ``tests/integration/test_crash_sweep.py`` runs a small
sweep in tier 1 and the exhaustive ≥200-op sweep under the ``crash``
marker (CI's ``crash-sweep`` job).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import E2NVMConfig, fast_test_config
from repro.core.kvstore import KVStore
from repro.nvm.controller import MemoryController
from repro.nvm.device import NVMDevice
from repro.pmem.catalog import PersistentCatalog
from repro.pmem.pool import PersistentPool
from repro.testing.faults import CrashError, FaultInjector
from repro.util.rng import rng_from_seed
from repro.workloads.ycsb import PrototypeValueGenerator
from repro.workloads.zipfian import ScrambledZipfianGenerator

#: Sites every sweep crashes at (each *k*-th firing of each).
DEFAULT_CRASH_SITES = (
    "device.write",
    "tx.begin",
    "tx.log",
    "tx.write",
    "tx.commit",
)
#: Write-capable sites additionally swept with torn-write variants.
DEFAULT_TORN_SITES = ("tx.log", "tx.write")


def make_ycsb_trace(
    n_ops: int,
    n_keys: int = 12,
    value_size: int = 64,
    seed: int = 0,
    mix: tuple[float, float, float] = (0.55, 0.25, 0.20),
) -> list[tuple]:
    """A seeded YCSB-style PUT/DELETE/GET trace.

    Keys follow YCSB's ``user...`` naming and a scrambled-Zipfian request
    distribution; values come from the prototype generator the YCSB module
    uses, truncated to a random length so short and full-segment values
    both appear.  ``mix`` is the (put, delete, get) fraction — deletes and
    re-inserts are what exercise Algorithm 2's flag reset.
    """
    p_put, p_delete, p_get = mix
    if abs(p_put + p_delete + p_get - 1.0) > 1e-9:
        raise ValueError("mix must sum to 1")
    rng = rng_from_seed(seed)
    chooser = ScrambledZipfianGenerator(n_keys, seed=rng)
    values = PrototypeValueGenerator(value_size, seed=rng)
    trace: list[tuple] = []
    for _ in range(n_ops):
        key = b"user%03d" % chooser.next()
        roll = rng.random()
        if roll < p_put:
            length = int(rng.integers(1, value_size + 1))
            trace.append(("put", key, values.value()[:length]))
        elif roll < p_put + p_delete:
            trace.append(("delete", key))
        else:
            trace.append(("get", key))
    return trace


def apply_trace(store: KVStore, trace, oracle: dict[bytes, bytes]) -> int:
    """Apply ``trace``, acknowledging each op into ``oracle`` only after the
    call returns.  Returns the number of acknowledged operations; a crash
    propagates with the oracle still reflecting only acknowledged state."""
    acked = 0
    for op in trace:
        if op[0] == "put":
            store.put(op[1], op[2])
            oracle[op[1]] = op[2]
        elif op[0] == "delete":
            store.delete(op[1])
            oracle.pop(op[1], None)
        elif op[0] == "get":
            got = store.get(op[1])
            expected = oracle.get(op[1])
            if got != expected:
                raise AssertionError(
                    f"GET {op[1]!r} returned {got!r}, oracle says "
                    f"{expected!r}"
                )
        else:
            raise ValueError(f"unknown trace op {op[0]!r}")
        acked += 1
    return acked


def check_durable_invariants(
    store: KVStore, oracle: dict[bytes, bytes]
) -> None:
    """Assert the full durability contract of a (re-opened) store.

    - recovered contents equal the acknowledged oracle exactly — no lost
      acknowledged PUT, no phantom un-acknowledged PUT, no resurrected
      DELETE;
    - pool accounting exact: free ∪ allocated = all object segments, and
      the two sets are disjoint;
    - the DAP holds exactly the free addresses, each exactly once, and
      every one of them has a clear validity flag in the catalog;
    - every allocated address carries a valid catalog record that agrees
      with the index.
    """
    pool, catalog = store.pool, store.catalog
    contents = dict(store.items())
    assert contents == oracle, (
        f"store/oracle divergence: only-in-store="
        f"{ {k: v for k, v in contents.items() if oracle.get(k) != v} } "
        f"only-in-oracle="
        f"{ {k: v for k, v in oracle.items() if contents.get(k) != v} }"
    )

    all_objects = {
        pool.object_address(i) for i in range(pool.capacity_objects)
    }
    free = set(pool.free_addresses())
    allocated = pool.allocated_addresses()
    assert free | allocated == all_objects, "pool accounting leaks segments"
    assert not (free & allocated), "pool free/allocated sets overlap"

    dap_addrs = store.engine.dap.snapshot_addresses()
    assert len(dap_addrs) == len(set(dap_addrs)), "DAP holds duplicates"
    assert set(dap_addrs) == free, (
        "DAP addresses are not exactly the free segments"
    )
    assert set(store.engine.free_addresses()) == free, (
        "engine allocator disagrees with pool"
    )

    indexed = {}
    for key, (addr, length) in store.index.items():
        indexed[addr] = (key, length)
    assert set(indexed) == allocated, "index addresses != allocated segments"
    for addr in free:
        assert catalog.read(pool.object_index(addr)) is None, (
            f"free segment {addr} still has a valid catalog flag"
        )
    for addr in allocated:
        entry = catalog.read(pool.object_index(addr))
        assert entry is not None, f"allocated segment {addr} has no record"
        key, length = indexed[addr]
        assert entry.key == key and entry.value_len == length, (
            f"catalog record of {addr} disagrees with the index"
        )


class KVCrashHarness:
    """Builds byte-identical durable stores for repeated crash replays.

    One placement model is trained up front on the seeded device's initial
    contents and shared (read-only) by every replay and every recovery, so
    a sweep of thousands of crash points never retrains; each
    :meth:`fresh` still starts from an identical device, making every
    replay deterministic.
    """

    def __init__(
        self,
        *,
        n_segments: int = 96,
        segment_size: int = 64,
        log_segments: int = 4,
        key_capacity: int = 16,
        seed: int = 7,
        config: E2NVMConfig | None = None,
    ) -> None:
        self.n_segments = n_segments
        self.segment_size = segment_size
        self.log_segments = log_segments
        self.key_capacity = key_capacity
        self.seed = seed
        self.config = config or fast_test_config()
        self.meta_segments = PersistentCatalog.meta_segments_for(
            n_segments, log_segments, segment_size, key_capacity
        )
        _, _, store = self.fresh(FaultInjector())
        self.pipeline = store.engine.pipeline

    def _device(self, faults) -> NVMDevice:
        return NVMDevice(
            capacity_bytes=self.n_segments * self.segment_size,
            segment_size=self.segment_size,
            initial_fill="random",
            seed=self.seed,
            faults=faults,
        )

    def _pool(self, device, faults) -> PersistentPool:
        return PersistentPool(
            MemoryController(device),
            log_segments=self.log_segments,
            meta_segments=self.meta_segments,
            faults=faults,
        )

    def fresh(self, faults: FaultInjector):
        """A brand-new formatted store over a byte-identical device."""
        device = self._device(faults)
        pool = self._pool(device, faults)
        store = KVStore.create(
            pool,
            config=self.config,
            faults=faults,
            key_capacity=self.key_capacity,
            pipeline=getattr(self, "pipeline", None),
        )
        return device, pool, store

    def reopen(self, device: NVMDevice) -> KVStore:
        """Simulated restart: every DRAM structure is rebuilt from the
        media through a fresh controller and pool; no fault injector is
        carried over."""
        device.faults = None
        pool = self._pool(device, None)
        return KVStore.open(
            pool,
            config=self.config,
            key_capacity=self.key_capacity,
            pipeline=self.pipeline,
        )


@dataclass
class CrashSweepReport:
    """Outcome of one exhaustive sweep."""

    ops: int
    site_hits: dict[str, int] = field(default_factory=dict)
    crash_points: int = 0
    torn_points: int = 0
    clean_replays: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def run_crash_sweep(
    harness: KVCrashHarness,
    trace,
    *,
    sites=DEFAULT_CRASH_SITES,
    torn_sites=DEFAULT_TORN_SITES,
    torn_fraction: float = 0.5,
    progress=None,
) -> CrashSweepReport:
    """Replay ``trace`` crashing at every fired crash point, re-open, and
    check invariants after each crash.  Returns a report whose
    ``failures`` list is empty iff the durability contract held at every
    single point."""
    trace = list(trace)
    report = CrashSweepReport(ops=len(trace))

    # Baseline run: count how often each site fires and sanity-check the
    # crash-free end state (also populates the final oracle).
    faults = FaultInjector()
    device, _, store = harness.fresh(faults)
    oracle: dict[bytes, bytes] = {}
    apply_trace(store, trace, oracle)
    report.site_hits = {site: faults.hits(site) for site in sites}
    check_durable_invariants(harness.reopen(device), oracle)

    points = [
        (site, k, None)
        for site in sites
        for k in range(report.site_hits[site])
    ]
    points += [
        (site, k, torn_fraction)
        for site in torn_sites
        for k in range(report.site_hits.get(site, 0))
    ]

    for site, k, tear in points:
        label = f"{site}#{k}" + ("+torn" if tear is not None else "")
        faults = FaultInjector()
        faults.arm(site, error=CrashError, after=k, times=1,
                   torn_fraction=tear)
        device, _, store = harness.fresh(faults)
        oracle = {}
        crashed = False
        try:
            apply_trace(store, trace, oracle)
        except CrashError:
            crashed = True
        except Exception as exc:  # pragma: no cover - harness failure
            report.failures.append(f"{label}: replay error {exc!r}")
            continue
        if not crashed:
            # Deterministic replays hit every baseline-counted point.
            report.failures.append(f"{label}: crash point never fired")
            continue
        report.crash_points += 1
        if tear is not None:
            report.torn_points += 1
        del store  # process death: only the device survives
        try:
            recovered = harness.reopen(device)
            check_durable_invariants(recovered, oracle)
        except AssertionError as exc:
            report.failures.append(f"{label}: {exc}")
        except Exception as exc:
            report.failures.append(f"{label}: recovery error {exc!r}")
        if progress is not None:
            progress(label, report)
    report.clean_replays = len(points) - report.crash_points
    return report
