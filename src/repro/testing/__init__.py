"""Test-support utilities shipped with the library.

- :mod:`repro.testing.faults` — deterministic fault injection for
  exercising the engine's recovery paths (failed retrains, slow fits,
  device write errors), plus :class:`CrashError` and torn-write rules
  for crash-consistency testing.
- :mod:`repro.testing.crash_sweep` — an exhaustive crash-point sweep
  harness: replays a seeded workload crashing at every fired fault site
  (including torn writes), re-opens the store from the media, and checks
  the full durability contract after each crash.
- :mod:`repro.testing.chaos` — the sharded-store chaos drill: random
  kill/SIGSTOP/crash faults against live worker processes mid-batch
  while aging and drift advance, asserting supervised convergence to
  all-shards-healthy with zero lost acknowledged writes and clean fsck.
"""

from repro.testing.faults import (
    CrashError,
    FaultError,
    FaultInjector,
    FaultRule,
)

# crash_sweep sits above the KV store, which itself depends on the fault
# layer; importing it eagerly here would close an import cycle, so its
# names resolve lazily (PEP 562) on first access.
_CRASH_SWEEP_NAMES = frozenset(
    {
        "CrashSweepReport",
        "DEFAULT_CRASH_SITES",
        "DEFAULT_TORN_SITES",
        "DRIFT_CRASH_SITES",
        "GC_CRASH_SITES",
        "WEAROUT_CRASH_SITES",
        "WL_CRASH_SITES",
        "WL_TORN_SITES",
        "WL_MODES",
        "KVCrashHarness",
        "WearLevelingSweepReport",
        "apply_trace",
        "check_durable_invariants",
        "make_ycsb_trace",
        "run_crash_sweep",
        "run_wear_leveling_crash_sweep",
        "weave_aging",
        "weave_compaction",
    }
)

# chaos sits above the sharded store (facade + supervisor) and resolves
# lazily for the same cycle-avoidance reason.
_CHAOS_NAMES = frozenset(
    {
        "ChaosReport",
        "FAULT_KINDS",
        "run_chaos_drill",
    }
)

__all__ = [
    "CrashError",
    "FaultError",
    "FaultInjector",
    "FaultRule",
    *sorted(_CRASH_SWEEP_NAMES),
    *sorted(_CHAOS_NAMES),
]


def __getattr__(name: str):
    if name in _CRASH_SWEEP_NAMES:
        from repro.testing import crash_sweep

        return getattr(crash_sweep, name)
    if name in _CHAOS_NAMES:
        from repro.testing import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
