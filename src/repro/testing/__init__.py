"""Test-support utilities shipped with the library.

- :mod:`repro.testing.faults` — deterministic fault injection for
  exercising the engine's recovery paths (failed retrains, slow fits,
  device write errors).
"""

from repro.testing.faults import FaultError, FaultInjector, FaultRule

__all__ = ["FaultError", "FaultInjector", "FaultRule"]
