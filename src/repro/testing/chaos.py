"""Chaos drill for the supervised sharded store.

The crash sweep (:mod:`repro.testing.crash_sweep`) proves *one* shard
recovers from *one* crash at *every* fault site.  The chaos drill attacks
the other axis: many faults of different species, landing on random
shards, **while the store is serving writes and the media keeps aging** —
and asserts the system converges back to all-shards-healthy with nothing
acknowledged lost.

One drill round:

1. pick a random live shard and a fault species —

   - ``"kill"``: SIGKILL the worker mid-``put_many`` (a timer fires the
     signal while the batch is in flight) — power loss on one channel;
   - ``"stop"``: SIGSTOP the worker — a wedged controller that stops
     heartbeating but holds its pipe open; only the watchdog can tell;
   - ``"crash"``: arm a :class:`~repro.testing.faults.CrashError` at
     ``tx.write`` so the *next* write to that shard dies inside the
     transaction (``os._exit``, no response, no cleanup);

2. issue a ``put_many`` batch spanning every shard under the ``partial``
   degraded policy and record, per key, what the outcome report admits:
   an ``"ok"`` item is **acknowledged** (its value must survive, full
   stop); a failed item may have committed or not (the shard died
   mid-batch), so either the old or the new value is acceptable;
3. advance the wearout and drift clocks (the in-worker scrubber heals
   drift on its own cadence while all this is going on);
4. let the :class:`~repro.sharding.supervisor.ShardSupervisor` converge
   the fleet back to healthy and verify every acknowledged write reads
   back.

After the last round the drill closes the store and runs
:func:`repro.tools.fsck.fsck` over every shard snapshot — recovery that
leaves the media inconsistent must not pass.

The harness is a library (the chaos tests and ``bench_chaos.py`` both
drive it) and is deliberately seeded: a failing round is reproducible
from its seed.
"""

from __future__ import annotations

import os
import random
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import E2NVMConfig, fast_test_config
from repro.nvm.device import DriftConfig, WearOutConfig
from repro.sharding import ShardedKVStore, ShardSupervisor
from repro.sharding.backends import ShardUnavailableError
from repro.tools.fsck import fsck

#: Fault species the drill draws from (uniformly, seeded).
FAULT_KINDS = ("kill", "stop", "crash")


@dataclass
class ChaosReport:
    """Everything a drill asserts on (and the benchmark reports)."""

    rounds: int
    faults: dict = field(default_factory=dict)
    #: Items acknowledged ok / total items attempted, per round.
    acked_items: int = 0
    total_items: int = 0
    #: Acknowledged keys whose final read did not return the acked value.
    lost_writes: list = field(default_factory=list)
    #: Unacknowledged keys whose final read returned neither the old nor
    #: the new candidate value (torn/corrupt — never acceptable).
    corrupt_keys: list = field(default_factory=list)
    all_healthy: bool = False
    fsck_ok: bool = False
    fsck_errors: list = field(default_factory=list)
    recovery_count: int = 0
    recovery_time_mean_s: float = 0.0
    recovery_time_max_s: float = 0.0
    watchdog_kills: int = 0
    restarts: int = 0
    duration_s: float = 0.0
    converge_s: float = 0.0

    @property
    def availability(self) -> float:
        """Fraction of attempted items acknowledged during the drill."""
        return self.acked_items / self.total_items if self.total_items else 1.0

    @property
    def ok(self) -> bool:
        """The drill's contract: converged healthy, zero lost acknowledged
        writes, no torn values, clean fsck on every shard."""
        return (
            self.all_healthy
            and not self.lost_writes
            and not self.corrupt_keys
            and self.fsck_ok
        )

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "faults": dict(self.faults),
            "availability": self.availability,
            "acked_items": self.acked_items,
            "total_items": self.total_items,
            "lost_writes": len(self.lost_writes),
            "corrupt_keys": len(self.corrupt_keys),
            "all_healthy": self.all_healthy,
            "fsck_ok": self.fsck_ok,
            "recovery_count": self.recovery_count,
            "recovery_time_mean_s": self.recovery_time_mean_s,
            "recovery_time_max_s": self.recovery_time_max_s,
            "watchdog_kills": self.watchdog_kills,
            "restarts": self.restarts,
            "duration_s": self.duration_s,
            "converge_s": self.converge_s,
            "ok": self.ok,
        }


def run_chaos_drill(
    root: str | Path | None = None,
    *,
    n_shards: int = 3,
    rounds: int = 6,
    batch_size: int = 24,
    key_space: int = 24,
    seed: int = 0,
    segment_size: int = 64,
    n_segments_per_shard: int = 128,
    log_segments: int = 4,
    key_capacity: int = 32,
    config: E2NVMConfig | None = None,
    heartbeat_timeout_s: float = 0.5,
    restart_budget: int = 5,
    heal_timeout_s: float = 60.0,
    age_cycles_per_round: int = 1,
    drift_ticks_per_round: int = 2_000,
    faults: tuple[str, ...] = FAULT_KINDS,
) -> ChaosReport:
    """Run one seeded chaos drill; see the module docstring for the plot.

    Args:
        root: store directory (a temp dir when ``None``; it is left on
            disk only if the drill raises).
        rounds: fault-injection rounds.
        batch_size: items per ``put_many`` round (keys drawn from a
            ``key_space``-sized pool, so later rounds overwrite — the
            idempotent-upsert path retries depend on).
        seed: drives every random choice (victim shard, fault kind, kill
            timing, values) — a failure reproduces from its seed.
        heal_timeout_s: per-round and final convergence budget.
        faults: the fault species to draw from (subset of
            :data:`FAULT_KINDS`).
    """
    for kind in faults:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
    rng = random.Random(seed)
    owns_root = root is None
    root = Path(root) if root is not None else Path(tempfile.mkdtemp())
    report = ChaosReport(rounds=rounds, faults={k: 0 for k in faults})
    t_start = time.monotonic()

    store = ShardedKVStore.create(
        root,
        n_shards,
        segment_size=segment_size,
        n_segments_per_shard=n_segments_per_shard,
        config=config if config is not None else fast_test_config(),
        backend="process",
        log_segments=log_segments,
        key_capacity=key_capacity,
        scrubber=True,
        compactor=True,
        maintenance=True,
        retrain_interval_s=0.2,
        wearout=WearOutConfig(endurance_mean=1e8, seed=seed),
        drift=DriftConfig(retention_mean=50_000.0, seed=seed),
        degraded="partial",
        deadline_s=30.0,
        base_seed=seed + 7,
    )
    supervisor = ShardSupervisor(
        store,
        interval_s=0.05,
        heartbeat_timeout_s=heartbeat_timeout_s,
        restart_budget=restart_budget,
        stable_after_s=0.5,
        auto_start=True,
    )

    #: key -> set of byte strings the final read may legally return.
    #: Acknowledged puts collapse the set to {new value}.
    acceptable: dict[bytes, set] = {}

    def value_for(round_no: int, key_no: int) -> bytes:
        return f"r{round_no}.k{key_no}.{rng.randrange(1 << 30)}".encode()

    try:
        for round_no in range(rounds):
            victim = rng.randrange(n_shards)
            kind = rng.choice(list(faults))
            report.faults[kind] += 1
            timer = None
            if kind == "stop":
                pid = store.backend.worker_pid(victim)
                if pid is not None and store.shard_alive(victim):
                    os.kill(pid, signal.SIGSTOP)
            elif kind == "crash":
                try:
                    store.backend.call(victim, "arm_crash", ("tx.write",))
                except ShardUnavailableError:
                    pass  # already down; the round still writes
            elif kind == "kill":
                pid = store.backend.worker_pid(victim)
                if pid is not None and store.shard_alive(victim):
                    delay = rng.uniform(0.005, 0.05)
                    timer = threading.Timer(
                        delay, lambda p=pid: _kill_quietly(p)
                    )
                    timer.start()

            key_nos = rng.sample(range(key_space), min(batch_size, key_space))
            items = []
            for key_no in key_nos:
                key = f"key-{key_no:04d}".encode()
                items.append((key, value_for(round_no, key_no)))
            try:
                batch = store.put_many(items)
                outcomes = batch.outcomes
            except ShardUnavailableError as exc:
                # partial mode degrades unavailability, but an overlapping
                # fault can still surface here (e.g. every shard down);
                # nothing in this batch is acknowledged.
                outcomes = ["error"] * len(items)
            finally:
                if timer is not None:
                    timer.cancel()
            report.total_items += len(items)
            for (key, value), outcome in zip(items, outcomes):
                if outcome == "ok":
                    report.acked_items += 1
                    acceptable[key] = {value}
                else:
                    # May or may not have committed before the fault; both
                    # values are acceptable until a later acked overwrite.
                    acceptable.setdefault(key, {None}).add(value)

            # Media keeps aging while the fleet is degraded; dead shards
            # just miss this tick (their clocks resume after reopen).
            for broadcast in (
                lambda: store.age(age_cycles_per_round),
                lambda: store.advance_time(drift_ticks_per_round),
            ):
                try:
                    broadcast()
                except ShardUnavailableError:
                    pass

            if not supervisor.await_healthy(timeout=heal_timeout_s):
                break  # report.all_healthy stays False

        report.converge_s = time.monotonic() - t_start
        report.all_healthy = supervisor.await_healthy(timeout=heal_timeout_s)

        # Every acknowledged write must read back; unacknowledged writes
        # must read back as one of their acceptable values.
        keys = sorted(acceptable)
        final = store.get_many(keys)
        if not final.ok:
            report.all_healthy = False
        for key, value in zip(keys, final):
            allowed = acceptable[key]
            if value not in allowed:
                if len(allowed) == 1:
                    report.lost_writes.append(
                        (key, next(iter(allowed)), value)
                    )
                else:
                    report.corrupt_keys.append((key, value))

        sup_tel = supervisor.telemetry()
        report.recovery_count = sup_tel["recovery_count"]
        report.recovery_time_mean_s = sup_tel["recovery_time_mean_s"]
        report.recovery_time_max_s = sup_tel["recovery_time_max_s"]
        report.watchdog_kills = sup_tel["watchdog_kills"]
        report.restarts = sup_tel["restarts"]

        store.close()
        fsck_ok = True
        for shard_id in range(n_shards):
            result = fsck(
                root / f"shard-{shard_id}.npz",
                log_segments=log_segments,
                key_capacity=key_capacity,
            )
            if not result.ok:
                fsck_ok = False
                report.fsck_errors.extend(
                    f"shard {shard_id}: {err}" for err in result.errors
                )
        report.fsck_ok = fsck_ok
        report.duration_s = time.monotonic() - t_start
    finally:
        supervisor.stop()
        store.close()  # idempotent; covers the raise path
        if owns_root and report.ok:
            for path in root.glob("*"):
                path.unlink()
            root.rmdir()
    return report


def _kill_quietly(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass


# --------------------------------------------------------------------------
# Rebalance fault coverage
# --------------------------------------------------------------------------

#: Coordinator-side fault sites of the rebalance protocol (fired by the
#: :class:`~repro.sharding.rebalance.Rebalancer` in the facade's process).
REBALANCE_CRASH_SITES = (
    "rebalance.copy",
    "rebalance.delete",
    "rebalance.flip",
)


@dataclass
class RebalanceSweepCase:
    """One crash point: ``site`` at its ``k``-th firing."""

    site: str
    k: int
    crashed: bool = False
    #: Journal state observed at reopen ("resumed" paths) or ``None``
    #: when the crash landed after the journal was already retired.
    resumed_from: str | None = None
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


@dataclass
class RebalanceSweepReport:
    """Findings of one :func:`run_rebalance_crash_sweep`."""

    site_firings: dict = field(default_factory=dict)
    cases: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.cases) and all(c.ok for c in self.cases)

    def summary(self) -> dict:
        return {
            "site_firings": dict(self.site_firings),
            "cases": len(self.cases),
            "failed": [
                (c.site, c.k, c.errors) for c in self.cases if not c.ok
            ],
            "ok": self.ok,
        }


def _verify_rebalanced(store, oracle, case_errors) -> None:
    """Every acked key readable with its exact value, on exactly its ring
    owner — the exactly-once contract after recovery."""
    for key, value in oracle.items():
        owner = store.shard_of(key)
        holders = []
        for shard_id in range(store.n_shards):
            got = store.backend.call(shard_id, "get", (key,))
            if got is not None:
                holders.append(shard_id)
                if got != value:
                    case_errors.append(
                        f"key {key!r} on shard {shard_id}: wrong value"
                    )
        if store.rebalance_active:
            continue  # placement asserted after the resumed drain finishes
        if holders != [owner]:
            case_errors.append(
                f"key {key!r} held by shards {holders}, owner is {owner}"
            )


def run_rebalance_crash_sweep(
    root: str | Path | None = None,
    *,
    n_shards: int = 3,
    n_keys: int = 48,
    seed: int = 0,
    weights: tuple = (2.0, 1.0, 0.5),
    batch_size: int = 8,
    segment_size: int = 64,
    n_segments_per_shard: int = 256,
    log_segments: int = 4,
    key_capacity: int = 32,
    sites: tuple = REBALANCE_CRASH_SITES,
    config: E2NVMConfig | None = None,
) -> RebalanceSweepReport:
    """Crash the rebalance *coordinator* at every firing of every fault
    site, then prove ``open()`` recovers.

    The run is deterministic: a baseline pass (unarmed injector — hits
    are counted anyway) fixes how many times each site fires, then one
    fresh store per ``(site, k)`` is driven into a :class:`CrashError` at
    exactly the ``k``-th firing.  The shards themselves did not crash —
    only the coordinator died mid-protocol — so their media survives
    (``close()`` snapshots them, the in-process analogue of worker
    processes outliving the facade); ``open()`` must then resume the
    drain or roll the flip forward, after which every preloaded key is
    readable with its exact value on exactly its ring owner, the journal
    is gone, and cross-shard fsck is clean.  Worker-side crashes are the
    storm drill's job (:func:`run_rebalance_storm`).
    """
    from repro.sharding.rebalance import RebalanceJournal
    from repro.testing.faults import CrashError, FaultInjector
    from repro.tools.fsck import fsck_sharded

    rng = random.Random(seed)
    owns_root = root is None
    root = Path(root) if root is not None else Path(tempfile.mkdtemp())
    report = RebalanceSweepReport()
    oracle = {
        f"key-{i:04d}".encode(): f"value-{i}-{rng.randrange(1 << 20)}".encode()
        for i in range(n_keys)
    }

    def build(case_root):
        store = ShardedKVStore.create(
            case_root,
            n_shards,
            segment_size=segment_size,
            n_segments_per_shard=n_segments_per_shard,
            config=config if config is not None else fast_test_config(),
            log_segments=log_segments,
            key_capacity=key_capacity,
            base_seed=seed + 7,
        )
        store.put_many(list(oracle.items()))
        return store

    def drive(store, faults):
        rebalancer = store.begin_rebalance(
            weights=weights, batch_size=batch_size
        )
        rebalancer.faults = faults
        rebalancer.drain_until_done(timeout_s=60.0)
        rebalancer.finalize()

    try:
        # Baseline: same seed, same keys, same batches -> same firing
        # schedule in every armed run below.
        baseline_root = root / "baseline"
        faults = FaultInjector()
        store = build(baseline_root)
        try:
            drive(store, faults)
        finally:
            store.close()
        report.site_firings = {s: faults.hits(s) for s in sites}

        for site in sites:
            for k in range(report.site_firings[site]):
                case = RebalanceSweepCase(site=site, k=k)
                report.cases.append(case)
                case_root = root / f"{site.replace('.', '-')}-{k}"
                faults = FaultInjector()
                faults.arm(site, error=CrashError, after=k)
                store = build(case_root)
                try:
                    drive(store, faults)
                except CrashError:
                    case.crashed = True
                finally:
                    store.close()
                if not case.crashed:
                    case.errors.append(
                        f"site never fired a {k}-th time; baseline drift?"
                    )
                    continue
                journal = RebalanceJournal.load(case_root)
                case.resumed_from = (
                    journal.state if journal is not None else None
                )
                store = ShardedKVStore.open(case_root)
                try:
                    _verify_rebalanced(store, oracle, case.errors)
                    if store.rebalance_active:
                        store.rebalancer.drain_until_done(timeout_s=60.0)
                        store.rebalancer.finalize()
                    if store.ring.describe().get("weights") != list(weights):
                        case.errors.append(
                            "recovered ring does not carry the new weights"
                        )
                    _verify_rebalanced(store, oracle, case.errors)
                    if RebalanceJournal.load(case_root) is not None:
                        case.errors.append("journal survived finalize")
                finally:
                    store.close()
                fsck_report = fsck_sharded(case_root)
                if not fsck_report.ok:
                    case.errors.extend(
                        fsck_report.errors
                        + [e for r in fsck_report.shards for e in r.errors]
                    )
    finally:
        if owns_root and report.ok:
            import shutil

            shutil.rmtree(root, ignore_errors=True)
    return report


@dataclass
class RebalanceStormReport:
    """Findings of one :func:`run_rebalance_storm`."""

    rounds: int
    kills: int = 0
    acked_items: int = 0
    total_items: int = 0
    lost_writes: list = field(default_factory=list)
    corrupt_keys: list = field(default_factory=list)
    orphan_keys: list = field(default_factory=list)
    duplicate_keys: list = field(default_factory=list)
    all_healthy: bool = False
    finalized: bool = False
    fsck_ok: bool = False
    fsck_errors: list = field(default_factory=list)
    keys_copied: int = 0
    keys_deleted: int = 0
    pauses: int = 0
    duration_s: float = 0.0

    @property
    def availability(self) -> float:
        return self.acked_items / self.total_items if self.total_items else 1.0

    @property
    def ok(self) -> bool:
        """The drill's contract: the rebalance finished despite both
        endpoints being SIGKILLed mid-drain, the fleet converged healthy,
        and no acked write was lost, duplicated, or orphaned."""
        return (
            self.all_healthy
            and self.finalized
            and not self.lost_writes
            and not self.corrupt_keys
            and not self.orphan_keys
            and not self.duplicate_keys
            and self.fsck_ok
        )

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "kills": self.kills,
            "availability": self.availability,
            "acked_items": self.acked_items,
            "total_items": self.total_items,
            "lost_writes": len(self.lost_writes),
            "corrupt_keys": len(self.corrupt_keys),
            "orphan_keys": len(self.orphan_keys),
            "duplicate_keys": len(self.duplicate_keys),
            "all_healthy": self.all_healthy,
            "finalized": self.finalized,
            "fsck_ok": self.fsck_ok,
            "keys_copied": self.keys_copied,
            "keys_deleted": self.keys_deleted,
            "pauses": self.pauses,
            "duration_s": self.duration_s,
            "ok": self.ok,
        }


def run_rebalance_storm(
    root: str | Path | None = None,
    *,
    n_shards: int = 3,
    rounds: int = 4,
    n_keys: int = 48,
    batch_size: int = 16,
    drain_budget: int = 8,
    seed: int = 0,
    weights: tuple = (2.0, 1.0, 0.5),
    segment_size: int = 64,
    n_segments_per_shard: int = 256,
    log_segments: int = 4,
    key_capacity: int = 32,
    config: E2NVMConfig | None = None,
    heartbeat_timeout_s: float = 0.5,
    restart_budget: int = 8,
    heal_timeout_s: float = 60.0,
) -> RebalanceStormReport:
    """SIGKILL the *source and target* worker processes mid-drain, while
    foreground writes keep flowing, and prove the migration still lands.

    One round: ask the rebalancer which ``(source, target)`` pair it will
    move next, start timers that SIGKILL both workers a few milliseconds
    out, keep draining through the kills (the drain pauses on the dead
    shards and requeues their batches), push a foreground ``put_many``
    under the ``partial`` policy (acked items must survive, full stop),
    and let the supervisor heal the fleet.  After the last round the
    drain runs to completion, the rebalance finalizes, and the report
    checks: every acked value reads back, no key is lost, duplicated
    across shards, or orphaned (present but never written), and
    cross-shard fsck on the closed store is clean.
    """
    from repro.tools.fsck import fsck_sharded

    rng = random.Random(seed)
    owns_root = root is None
    root = Path(root) if root is not None else Path(tempfile.mkdtemp())
    report = RebalanceStormReport(rounds=rounds)
    t_start = time.monotonic()

    store = ShardedKVStore.create(
        root,
        n_shards,
        segment_size=segment_size,
        n_segments_per_shard=n_segments_per_shard,
        config=config if config is not None else fast_test_config(),
        backend="process",
        log_segments=log_segments,
        key_capacity=key_capacity,
        degraded="partial",
        deadline_s=30.0,
        base_seed=seed + 7,
    )
    supervisor = ShardSupervisor(
        store,
        interval_s=0.05,
        heartbeat_timeout_s=heartbeat_timeout_s,
        restart_budget=restart_budget,
        stable_after_s=0.5,
        auto_start=True,
    )

    acceptable: dict[bytes, set] = {}
    try:
        preload = [
            (
                f"key-{i:04d}".encode(),
                f"value-{i}-{rng.randrange(1 << 20)}".encode(),
            )
            for i in range(n_keys)
        ]
        batch = store.put_many(preload)
        report.total_items += len(preload)
        for (key, value), outcome in zip(preload, batch.outcomes):
            if outcome == "ok":
                report.acked_items += 1
                acceptable[key] = {value}
            else:
                acceptable.setdefault(key, {None}).add(value)

        rebalancer = store.begin_rebalance(
            weights=weights, batch_size=batch_size
        )
        rebalancer.drain(0)  # populate the queue so next_pair() can aim

        for round_no in range(rounds):
            timers = []
            pair = rebalancer.next_pair()
            if pair is not None:
                victims = {s for s in pair if store.shard_alive(s)}
                for shard_id in victims:
                    pid = store.backend.worker_pid(shard_id)
                    if pid is None:
                        continue
                    timer = threading.Timer(
                        rng.uniform(0.002, 0.02),
                        lambda p=pid: _kill_quietly(p),
                    )
                    timer.start()
                    timers.append(timer)
                    report.kills += 1
            try:
                # Keep draining through the kills: batches that land on a
                # dead endpoint pause and requeue, the rest keep moving.
                for _ in range(4):
                    rebalancer.drain(drain_budget)
                    time.sleep(0.01)
            finally:
                for timer in timers:
                    timer.cancel()

            key_nos = rng.sample(range(n_keys), min(12, n_keys))
            items = [
                (
                    f"key-{i:04d}".encode(),
                    f"r{round_no}-{i}-{rng.randrange(1 << 20)}".encode(),
                )
                for i in key_nos
            ]
            try:
                batch = store.put_many(items)
                outcomes = batch.outcomes
            except ShardUnavailableError:
                outcomes = ["error"] * len(items)
            report.total_items += len(items)
            for (key, value), outcome in zip(items, outcomes):
                if outcome == "ok":
                    report.acked_items += 1
                    acceptable[key] = {value}
                else:
                    acceptable.setdefault(key, {None}).add(value)

            if not supervisor.await_healthy(timeout=heal_timeout_s):
                break

        report.all_healthy = supervisor.await_healthy(timeout=heal_timeout_s)
        rebalancer.drain_until_done(timeout_s=heal_timeout_s)
        rebalancer.finalize()
        report.finalized = not store.rebalance_active
        report.keys_copied = rebalancer.keys_copied
        report.keys_deleted = rebalancer.keys_deleted
        report.pauses = rebalancer.pauses

        keys = sorted(acceptable)
        final = store.get_many(keys)
        if not final.ok:
            report.all_healthy = False
        for key, value in zip(keys, final):
            allowed = acceptable[key]
            if value not in allowed:
                if len(allowed) == 1:
                    report.lost_writes.append(
                        (key, next(iter(allowed)), value)
                    )
                else:
                    report.corrupt_keys.append((key, value))
        live = store.keys()
        report.duplicate_keys = sorted(
            key for key in set(live) if live.count(key) > 1
        )
        report.orphan_keys = sorted(set(live) - set(acceptable))

        store.close()
        fsck_report = fsck_sharded(root)
        report.fsck_ok = fsck_report.ok
        if not fsck_report.ok:
            report.fsck_errors = fsck_report.errors + [
                e for r in fsck_report.shards for e in r.errors
            ]
        report.duration_s = time.monotonic() - t_start
    finally:
        supervisor.stop()
        store.close()
        if owns_root and report.ok:
            import shutil

            shutil.rmtree(root, ignore_errors=True)
    return report
