"""Workload and dataset generators.

Offline stand-ins for everything the paper's evaluation feeds the system
(§5.2.1), each documented with the substitution rationale in DESIGN.md:

- :mod:`repro.workloads.zipfian` — request-distribution generators (Gray's
  zipfian, scrambled zipfian, latest, uniform);
- :mod:`repro.workloads.ycsb` — the six YCSB core workloads A–F;
- :mod:`repro.workloads.datasets` — image-like clusterable bit datasets
  (MNIST / Fashion-MNIST / CIFAR-10 / ImageNet equivalents);
- :mod:`repro.workloads.records` — numerical record datasets (Amazon Access
  Samples / 3D Road Network / PubMed DocWord equivalents);
- :mod:`repro.workloads.video` — CCTV-like synthetic video with tunable
  frame-to-frame correlation (Sherbrooke / AAU surveillance equivalents);
- :mod:`repro.workloads.mixing` — drift schedules for the adaptability
  experiment (Figure 17).
"""

from repro.workloads.zipfian import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.workloads.ycsb import (
    WORKLOADS,
    WorkloadSpec,
    YCSBWorkload,
)
from repro.workloads.datasets import (
    cifar_like,
    fashion_mnist_like,
    imagenet_like,
    make_image_dataset,
    mnist_like,
)
from repro.workloads.records import (
    amazon_access_like,
    pubmed_like,
    road_network_like,
)
from repro.workloads.video import SyntheticVideo
from repro.workloads.mixing import DriftSchedule

__all__ = [
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "UniformGenerator",
    "WorkloadSpec",
    "YCSBWorkload",
    "WORKLOADS",
    "make_image_dataset",
    "mnist_like",
    "fashion_mnist_like",
    "cifar_like",
    "imagenet_like",
    "amazon_access_like",
    "road_network_like",
    "pubmed_like",
    "SyntheticVideo",
    "DriftSchedule",
]
