"""Synthetic surveillance video (Sherbrooke / AAU CCTV stand-in).

The video experiments (Figures 14–15) exploit frame-to-frame redundancy:
overwriting an old frame with a nearby frame flips few bits.  The generator
renders a static background with moving rectangular objects plus sensor
noise, so consecutive frames differ only where objects moved — the same
redundancy profile as fixed-camera CCTV footage.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import rng_from_seed


class SyntheticVideo:
    """Fixed-camera grayscale video generator.

    Args:
        width, height: frame size in pixels (1 byte per pixel).
        n_objects: moving rectangles in the scene.
        noise: per-pixel sensor noise standard deviation (0–255 scale).
        seed: RNG seed.
    """

    def __init__(
        self,
        width: int = 64,
        height: int = 48,
        n_objects: int = 3,
        noise: float = 4.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if width <= 4 or height <= 4:
            raise ValueError("frame must be at least 5x5")
        self.width = width
        self.height = height
        self.noise = noise
        self._rng = rng_from_seed(seed)
        # Smooth static background.
        base = self._rng.normal(128.0, 40.0, size=(height // 4 + 1, width // 4 + 1))
        self._background = np.clip(
            np.kron(base, np.ones((4, 4)))[:height, :width], 0, 255
        )
        self._objects = [
            {
                "x": float(self._rng.uniform(0, width)),
                "y": float(self._rng.uniform(0, height)),
                "vx": float(self._rng.uniform(-2.0, 2.0)),
                "vy": float(self._rng.uniform(-1.0, 1.0)),
                "w": int(self._rng.integers(4, max(5, width // 6))),
                "h": int(self._rng.integers(4, max(5, height // 6))),
                "shade": float(self._rng.uniform(0, 255)),
            }
            for _ in range(n_objects)
        ]

    @property
    def frame_bytes(self) -> int:
        """Serialized size of one frame."""
        return self.width * self.height

    def frames(self, n_frames: int):
        """Yield ``n_frames`` consecutive frames as ``bytes``."""
        if n_frames <= 0:
            raise ValueError("n_frames must be positive")
        for _ in range(n_frames):
            frame = self._background.copy()
            for obj in self._advance_objects():
                x0, y0 = int(obj["x"]), int(obj["y"])
                x1 = min(x0 + obj["w"], self.width)
                y1 = min(y0 + obj["h"], self.height)
                frame[y0:y1, x0:x1] = obj["shade"]
            frame += self._rng.normal(0.0, self.noise, size=frame.shape)
            yield np.clip(frame, 0, 255).astype(np.uint8).tobytes()

    def frame_bits(self, n_frames: int) -> np.ndarray:
        """Return (n_frames, frame_bytes*8) 0/1 matrix of frame contents."""
        packed = np.frombuffer(
            b"".join(self.frames(n_frames)), dtype=np.uint8
        ).reshape(n_frames, self.frame_bytes)
        return np.unpackbits(packed, axis=1).astype(np.float64)

    def _advance_objects(self):
        for obj in self._objects:
            obj["x"] += obj["vx"]
            obj["y"] += obj["vy"]
            if not 0 <= obj["x"] <= self.width - obj["w"]:
                obj["vx"] = -obj["vx"]
                obj["x"] = float(np.clip(obj["x"], 0, self.width - obj["w"]))
            if not 0 <= obj["y"] <= self.height - obj["h"]:
                obj["vy"] = -obj["vy"]
                obj["y"] = float(np.clip(obj["y"], 0, self.height - obj["h"]))
        return self._objects
