"""Request-distribution generators, following the YCSB paper [11].

The zipfian generator is Gray et al.'s rejection-free algorithm (*Quickly
generating billion-record synthetic databases*, SIGMOD '94), the same one
YCSB uses; the scrambled variant hashes the rank so popular items spread
over the keyspace; the latest variant favours recently inserted items.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import rng_from_seed

_ZIPF_CONSTANT = 0.99


class UniformGenerator:
    """Uniform integers in ``[0, n)``; ``n`` can grow."""

    def __init__(self, n: int, seed: int | np.random.Generator | None = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._rng = rng_from_seed(seed)

    def next(self) -> int:
        return int(self._rng.integers(0, self.n))

    def grow(self, new_n: int) -> None:
        """Extend the range (new inserts enlarge the keyspace)."""
        if new_n < self.n:
            raise ValueError("the range can only grow")
        self.n = new_n


class ZipfianGenerator:
    """Gray's zipfian generator over ``[0, n)`` (rank 0 most popular)."""

    def __init__(
        self,
        n: int,
        theta: float = _ZIPF_CONSTANT,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = rng_from_seed(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._recompute()

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def grow(self, new_n: int) -> None:
        """Extend the range incrementally (zeta updated, not recomputed)."""
        if new_n < self.n:
            raise ValueError("the range can only grow")
        for i in range(self.n, new_n):
            self._zetan += 1.0 / (i + 1) ** self.theta
        self.n = new_n
        self._recompute()

    def _recompute(self) -> None:
        self._alpha = 1.0 / (1.0 - self.theta)
        self._eta = (1.0 - (2.0 / self.n) ** (1.0 - self.theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return float(np.sum(1.0 / np.arange(1, n + 1) ** theta))


class ScrambledZipfianGenerator:
    """Zipfian ranks scrambled over the keyspace with an FNV hash."""

    def __init__(
        self,
        n: int,
        theta: float = _ZIPF_CONSTANT,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, seed)

    def next(self) -> int:
        return self._fnv(self._zipf.next()) % self.n

    def grow(self, new_n: int) -> None:
        self._zipf.grow(new_n)
        self.n = new_n

    @staticmethod
    def _fnv(value: int) -> int:
        h = 0xCBF29CE484222325
        for _ in range(8):
            h ^= value & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return h


class LatestGenerator:
    """Skew toward the most recently inserted item (YCSB workload D)."""

    def __init__(
        self,
        n: int,
        theta: float = _ZIPF_CONSTANT,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self._zipf = ZipfianGenerator(n, theta, seed)

    @property
    def n(self) -> int:
        return self._zipf.n

    def next(self) -> int:
        return self._zipf.n - 1 - min(self._zipf.next(), self._zipf.n - 1)

    def grow(self, new_n: int) -> None:
        self._zipf.grow(new_n)
