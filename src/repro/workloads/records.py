"""Synthetic numerical record datasets.

Stand-ins for the paper's three UCI datasets (no network access in this
environment); each generator reproduces the *bit-level redundancy profile*
of its original:

- **Amazon Access Samples** [41]: categorical access-log rows — few distinct
  users/resources/actions, so serialised rows repeat long byte runs;
- **3D Road Network** [31]: spatially correlated float coordinates — nearby
  rows differ in low-order mantissa bits only;
- **PubMed DocWord** [16]: sparse (doc id, word id, count) triples — small
  integers, mostly-zero high bytes.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.util.rng import rng_from_seed


def amazon_access_like(
    n_records: int = 1000,
    record_size: int = 64,
    n_users: int = 12,
    n_resources: int = 30,
    seed: int | np.random.Generator | None = 0,
) -> list[bytes]:
    """Access-log records: (user, resource, action, flags, timestamp) plus
    the user's attribute columns, padded to ``record_size`` bytes.

    The UCI Amazon Access Samples rows carry a long block of per-user
    attribute columns, so rows of the same (popular) user are near-identical
    — the clusterable redundancy E2-NVM exploits in Figures 2 and 10.
    """
    rng = rng_from_seed(seed)
    # Zipf-ish categorical skew: a few users/resources dominate.
    user_pop = rng.zipf(1.5, size=n_records) % n_users
    res_pop = rng.zipf(1.5, size=n_records) % n_resources
    # Each user's attribute columns serialise to a stable byte blob.
    attr_len = max(0, record_size - 18)
    user_attrs = [
        rng.integers(0, 256, attr_len, dtype=np.uint8).tobytes()
        for _ in range(n_users)
    ]
    records = []
    timestamp = 1_500_000_000
    for i in range(n_records):
        timestamp += int(rng.integers(1, 60))
        row = struct.pack(
            "<IIBBQ",
            int(user_pop[i]),
            int(res_pop[i]),
            int(rng.integers(0, 4)),  # action: add/remove/read/write
            int(rng.integers(0, 2)),  # granted flag
            timestamp,
        ) + user_attrs[int(user_pop[i])]
        records.append(row.ljust(record_size, b"\x00")[:record_size])
    return records


def road_network_like(
    n_records: int = 1000,
    record_size: int = 32,
    seed: int | np.random.Generator | None = 0,
) -> list[bytes]:
    """Road-network points: (node id, longitude, latitude, altitude) rows
    from a random walk over North-Jutland-like coordinates."""
    rng = rng_from_seed(seed)
    lon, lat, alt = 9.9, 57.0, 20.0
    records = []
    for i in range(n_records):
        lon += rng.normal(0.0, 0.001)
        lat += rng.normal(0.0, 0.001)
        alt += rng.normal(0.0, 0.5)
        row = struct.pack("<Qddd", i, lon, lat, alt)
        records.append(row.ljust(record_size, b"\x00")[:record_size])
    return records


def pubmed_like(
    n_records: int = 1000,
    record_size: int = 16,
    vocabulary: int = 10_000,
    seed: int | np.random.Generator | None = 0,
) -> list[bytes]:
    """DocWord triples: (doc id, word id, count) with zipf word frequency."""
    rng = rng_from_seed(seed)
    records = []
    doc = 1
    for _ in range(n_records):
        if rng.random() < 0.2:
            doc += 1
        word = int(rng.zipf(1.3)) % vocabulary
        count = int(min(rng.zipf(2.0), 255))
        row = struct.pack("<IIB", doc, word, count)
        records.append(row.ljust(record_size, b"\x00")[:record_size])
    return records


def records_to_bits(records: list[bytes]) -> np.ndarray:
    """Unpack equal-length byte records into a (n, bits) 0/1 matrix."""
    if not records:
        raise ValueError("no records supplied")
    length = len(records[0])
    if any(len(r) != length for r in records):
        raise ValueError("records must be equal length")
    arr = np.frombuffer(b"".join(records), dtype=np.uint8).reshape(
        len(records), length
    )
    return np.unpackbits(arr, axis=1).astype(np.float64)
