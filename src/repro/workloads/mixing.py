"""Workload-drift schedules for the adaptability experiment (Figure 17).

The paper streams five phases of changing content (MNIST → more MNIST →
MNIST+Fashion mixture → CIFAR → CIFAR after retrain).  ``DriftSchedule``
expresses such a timeline as named phases, each an iterator of value bytes,
with retrain markers between phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import rng_from_seed


@dataclass
class Phase:
    """One phase of the drift schedule."""

    name: str
    values: list[bytes]
    retrain_before: bool = False


@dataclass
class DriftSchedule:
    """An ordered list of workload phases."""

    phases: list[Phase] = field(default_factory=list)

    def add_phase(
        self, name: str, values: list[bytes], retrain_before: bool = False
    ) -> "DriftSchedule":
        """Append a phase; returns self for chaining."""
        self.phases.append(Phase(name, list(values), retrain_before))
        return self

    def add_mixture(
        self,
        name: str,
        sources: list[list[bytes]],
        weights: list[float],
        n_items: int,
        retrain_before: bool = False,
        seed: int | np.random.Generator | None = 0,
    ) -> "DriftSchedule":
        """Append a phase drawing from several sources at given ratios
        (Figure 17's scenario 3 mixes Fashion-MNIST and MNIST 1:2)."""
        if len(sources) != len(weights) or not sources:
            raise ValueError("need one weight per source")
        rng = rng_from_seed(seed)
        probs = np.asarray(weights, dtype=np.float64)
        probs = probs / probs.sum()
        values = []
        for _ in range(n_items):
            src = sources[int(rng.choice(len(sources), p=probs))]
            values.append(src[int(rng.integers(0, len(src)))])
        return self.add_phase(name, values, retrain_before)

    def __iter__(self):
        return iter(self.phases)

    def total_items(self) -> int:
        """Total values across all phases."""
        return sum(len(p.values) for p in self.phases)
