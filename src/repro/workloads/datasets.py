"""Synthetic image-like datasets (MNIST / Fashion-MNIST / CIFAR / ImageNet
stand-ins).

The paper clusters memory segments by bit content; what matters for the
reproduction is that the data has the same *clusterable structure* as the
image datasets it uses: a small number of content classes, high within-class
bit similarity, noise on top.  ``make_image_dataset`` generates exactly that
— per-class smooth prototypes, per-sample Gaussian pixel noise, binarised at
mid-scale — deterministically and offline.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import rng_from_seed


def make_image_dataset(
    n_samples: int,
    n_pixels: int,
    n_classes: int = 10,
    noise: float = 0.15,
    smoothness: int = 4,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate (bits, labels): ``bits`` is (n_samples, n_pixels) of 0/1.

    Args:
        n_samples: rows to generate.
        n_pixels: bits per sample (one "pixel" binarises to one bit).
        n_classes: distinct content prototypes.
        noise: standard deviation of per-sample pixel noise (pixel scale 1).
        smoothness: low-frequency components in each prototype; higher makes
            blobbier, more image-like prototypes.
        seed: RNG seed.
    """
    if n_samples <= 0 or n_pixels <= 0 or n_classes <= 0:
        raise ValueError("sizes must be positive")
    rng = rng_from_seed(seed)
    # Smooth prototypes: random low-frequency mixtures over pixel index.
    t = np.linspace(0.0, 1.0, n_pixels)
    prototypes = np.zeros((n_classes, n_pixels))
    for c in range(n_classes):
        for _ in range(smoothness):
            freq = rng.uniform(0.5, 8.0)
            phase = rng.uniform(0.0, 2 * np.pi)
            amp = rng.uniform(0.3, 1.0)
            prototypes[c] += amp * np.sin(2 * np.pi * freq * t + phase)
        prototypes[c] += rng.normal(0.0, 0.3, size=n_pixels)
    labels = rng.integers(0, n_classes, size=n_samples)
    pixels = prototypes[labels] + rng.normal(0.0, noise * 3.0, (n_samples, n_pixels))
    bits = (pixels > 0.0).astype(np.float64)
    return bits, labels


def _named(n_samples, n_pixels, n_classes, seed, noise=0.15):
    bits, labels = make_image_dataset(
        n_samples, n_pixels, n_classes=n_classes, noise=noise, seed=seed
    )
    return bits, labels


def mnist_like(n_samples: int = 1000, n_pixels: int = 784, seed: int = 0):
    """28×28 binarised digits stand-in: 10 classes, 784 bits."""
    return _named(n_samples, n_pixels, 10, seed)


def fashion_mnist_like(n_samples: int = 1000, n_pixels: int = 784, seed: int = 1):
    """Fashion-MNIST stand-in: same shape as MNIST, different prototypes."""
    return _named(n_samples, n_pixels, 10, seed, noise=0.2)


def cifar_like(n_samples: int = 1000, n_pixels: int = 1024, seed: int = 2):
    """CIFAR-10 stand-in: 10 classes, 32×32 luminance bits, noisier."""
    return _named(n_samples, n_pixels, 10, seed, noise=0.25)


def imagenet_like(
    n_samples: int = 500, n_pixels: int = 4096, n_classes: int = 50, seed: int = 3
):
    """ImageNet stand-in: many classes, larger items (64 KB objects in the
    paper's Figure 16 are scaled down proportionally)."""
    return _named(n_samples, n_pixels, n_classes, seed, noise=0.2)


def bits_to_values(bits: np.ndarray) -> list[bytes]:
    """Pack each row of a 0/1 matrix into value bytes (row bits must be a
    multiple of 8)."""
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[1] % 8:
        raise ValueError("need 2D bits with a multiple-of-8 row width")
    packed = np.packbits((bits > 0.5).astype(np.uint8), axis=1)
    return [row.tobytes() for row in packed]
