"""The E2-NVM placement engine (Algorithms 1 and 2).

``E2NVM`` owns the trained prediction pipeline and the Dynamic Address Pool
and exposes the write path of Algorithm 1:

1. ``predict`` the incoming value's cluster — first through the two-tier
   fast placement layer (:mod:`repro.core.fastpath`): a content-fingerprint
   memo cache, then an optional distilled student placer, and only for
   genuinely novel content the full VAE encoder + K-means (with padding
   when the value is shorter than a segment);
2. pop a free address of that cluster from the DAP;
3. write the value there — the controller's DCW scheme programs only the
   bits that differ from the (similar) old content;

and the recycle path of Algorithm 2: a freed segment's *current content* is
re-encoded and the address returned to the matching cluster's free list.

Retraining is *resilient* and *lazy* (§5.3):

- every (re)training is transactional — a fresh candidate pipeline is
  fitted off to the side, and the model plus a freshly relabelled pool are
  swapped in atomically only on success.  The DAP is snapshotted, never
  drained up front: any failure (a crashing fit, a failing relabel)
  restores it byte-for-byte and the old model keeps serving writes;
- ``maybe_retrain()`` (the ``auto_retrain`` path) never blocks ``write()``
  and never fails a PUT.  It schedules a single-flight background worker;
  when fewer than ``n_clusters`` segments are free the retrain is
  *deferred* and retried on a later write, while placement degrades
  gracefully to the pool's first-fit fallback;
- every outcome is counted on ``engine.retrain_stats``
  (started/succeeded/failed/deferred, pool restores, wall-clock).
"""

from __future__ import annotations

import threading
import time
import warnings

import numpy as np

from repro.core.address_pool import DynamicAddressPool, PoolExhaustedError
from repro.core.config import E2NVMConfig
from repro.core.fastpath import FastPlacementLayer
from repro.core.pipeline import EncoderPipeline
from repro.core.retraining import RetrainDecision, RetrainPolicy, RetrainStats
from repro.nvm.controller import MemoryController
from repro.nvm.device import WriteResult
from repro.nvm.health import SegmentRetiredError
from repro.util.rng import rng_from_seed


class E2NVM:
    """Memory-aware write placement over a :class:`MemoryController`.

    Args:
        controller: the NVM front-end the engine places writes on.
        config: hyperparameters; see :class:`E2NVMConfig`.
        faults: optional :class:`repro.testing.faults.FaultInjector`.  When
            set, the engine fires the ``"train.fit"``, ``"train.relabel"``
            and ``"device.write"`` sites (and candidate pipelines fire
            ``"pipeline.fit"``), letting tests force training failures,
            slow fits, and device write errors.
        reserved_segments: leading segments the engine must never place
            values in (a :class:`~repro.pmem.pool.PersistentPool`'s undo
            log and catalog regions); training, the DAP and placement all
            operate on the remaining *object* segments only.
    """

    def __init__(
        self,
        controller: MemoryController,
        config: E2NVMConfig | None = None,
        faults=None,
        reserved_segments: int = 0,
    ) -> None:
        if not 0 <= reserved_segments < controller.n_segments:
            raise ValueError("reserved_segments must leave placeable space")
        self.controller = controller
        self.config = config or E2NVMConfig()
        self.faults = faults
        self.reserved_segments = reserved_segments
        self.segment_size = controller.segment_size
        self.input_bits = self.segment_size * 8
        self.pipeline = EncoderPipeline(self.input_bits, self.config, faults)
        # Two-tier fast placement (memo cache + distilled student) in front
        # of the pipeline; (re)installed — cache invalidated wholesale —
        # at every model swap, keyed by ``_model_epoch``.
        self.fast = FastPlacementLayer(
            cache_size=self.config.fastpath_cache_size,
            student_confidence=self.config.student_confidence,
        )
        self.dap = DynamicAddressPool(self.config.n_clusters)
        self.policy = RetrainPolicy(
            min_free_per_cluster=self.config.retrain_threshold,
            cooldown_writes=self.config.retrain_cooldown_writes,
        )
        self.retrain_stats = RetrainStats()
        self.last_retrain_error: BaseException | None = None
        self.failed_writes = 0
        self._allocated: set[int] = set()
        self._rng = rng_from_seed(self.config.seed)
        # The RNG is shared between the write path and the retrain worker.
        self._rng_lock = threading.Lock()
        self._memory_ones_fraction = 0.5
        self._ones_fraction_age = 0
        # Serialises DAP claims/recycles against background model swaps.
        # Inference runs OUTSIDE this lock: the write path predicts with a
        # pipeline reference captured beforehand and re-validates
        # ``_model_epoch`` under the lock before claiming, retrying if a
        # swap landed mid-flight.
        self._swap_lock = threading.RLock()
        # Bumped (under the swap lock) every time a new model/pool pair is
        # installed; lets lock-free inference detect a concurrent swap.
        self._model_epoch = 0
        # Guards retrain scheduling state and stats counters.
        self._retrain_admin_lock = threading.Lock()
        self._retrain_thread: threading.Thread | None = None
        self._retrain_in_flight = False
        self._retrain_pending = False

    # ------------------------------------------------------------- training

    @property
    def health(self):
        """The controller's health manager (``None`` without wear-out)."""
        return getattr(self.controller, "health_manager", None)

    def free_addresses(self) -> list[int]:
        """Addresses of all placeable segments not currently allocated
        (quarantined segments — retired, retiring or reserved spares —
        are not placeable)."""
        quarantined = self.dap.quarantined()
        return [
            addr
            for i in range(self.reserved_segments, self.controller.n_segments)
            if (addr := self.controller.segment_address(i))
            not in self._allocated
            and addr not in quarantined
        ]

    def train(
        self, verbose: bool = False, addresses: list[int] | None = None
    ) -> dict:
        """(Re)train the model on free-segment contents and rebuild the DAP.

        Transactional: the current pool is only snapshotted while the
        candidate model fits, and the model/pool swap happens atomically at
        the end.  If anything raises, the DAP is left byte-identical to its
        pre-call state and the previous model keeps serving.

        Args:
            addresses: optional subset of free addresses to index — the
                "dynamic incremental approach" of §4.1.4 starts by indexing
                a portion of memory; add the rest later with
                :meth:`add_addresses`.

        Returns the training history (loss curves) of the pipeline.
        """
        if addresses is not None:
            fit_set = list(addresses)
            for addr in fit_set:
                self._check_segment_address(addr)
                if addr in self._allocated:
                    raise ValueError(f"address {addr} is allocated")
            swap_addresses: list[int] | None = fit_set
        elif self.pipeline.trained:
            fit_set = self.dap.snapshot_addresses()
            swap_addresses = None
            if not fit_set:
                fit_set = self.free_addresses()
                swap_addresses = fit_set
        else:
            fit_set = self.free_addresses()
            swap_addresses = fit_set
        if len(fit_set) < self.config.n_clusters:
            raise RuntimeError(
                f"cannot train on {len(fit_set)} free segments with "
                f"n_clusters={self.config.n_clusters}"
            )
        return self._run_training(fit_set, swap_addresses, verbose=verbose)

    def add_addresses(self, addresses: list[int]) -> None:
        """Incrementally index more free segments into the DAP (§4.1.4).

        Each address is classified with the current model and appended to
        its cluster's free list; no retraining happens.
        """
        self._require_trained()
        addresses = list(addresses)
        if not addresses:
            return
        for addr in addresses:
            self._check_segment_address(addr)
            if addr in self._allocated:
                raise ValueError(f"address {addr} is allocated")
        labels = self.pipeline.predict_segments(self._segment_bits(addresses))
        with self._swap_lock:
            self.dap.populate(labels, addresses)

    def adopt(
        self, pipeline: EncoderPipeline, free_addresses: list[int]
    ) -> None:
        """Install an already-trained pipeline and rebuild the DAP.

        The recovery path: after a restart the media alone says which
        segments are free, and a previously trained (e.g. deserialised)
        model re-encodes their contents to reconstruct the cluster pools —
        the same re-cluster path DELETE takes, just in bulk.  No training
        happens.
        """
        if not pipeline.trained:
            raise ValueError("adopt() needs a trained pipeline")
        if pipeline.input_bits != self.input_bits:
            raise ValueError(
                f"pipeline width {pipeline.input_bits} does not match the "
                f"device's {self.input_bits} bits per segment"
            )
        quarantined = self.dap.quarantined()
        free_addresses = [
            a for a in free_addresses if a not in quarantined
        ]
        for addr in free_addresses:
            self._check_segment_address(addr)
            if addr in self._allocated:
                raise ValueError(f"address {addr} is allocated")
        bits = None
        if free_addresses:
            bits = self._segment_bits(free_addresses)
        with self._swap_lock:
            new_dap = DynamicAddressPool(self.config.n_clusters)
            new_dap.adopt_quarantine(quarantined)
            if free_addresses:
                new_dap.populate(
                    pipeline.predict_segments(bits), free_addresses
                )
            self.pipeline = pipeline
            self.dap = new_dap
            self._model_epoch += 1
            # Adopted models carry no distilled student (none was trained
            # alongside them); attach one with :meth:`attach_student`.
            self.fast.install(self._model_epoch, None)
        if bits is not None:
            self._refresh_ones_fraction(bits)

    def mark_allocated(self, addr: int) -> None:
        """Register ``addr`` as live without going through :meth:`place`.

        Used by recovery to restore allocator state derived from the
        persistent catalog; the address must not sit in the DAP.
        """
        self._check_segment_address(addr)
        self._allocated.add(addr)

    def train_async(self) -> threading.Thread:
        """Retrain lazily in the background and swap models atomically.

        The paper stresses that "the writing process does not have to be
        stopped because the retraining is done in the background lazily"
        (§5.3): writes keep using the old model; when the new model is
        ready, the pipeline is swapped and the free pool re-clustered under
        the swap lock.  Retrains are single-flight: if one is already in
        progress its thread is returned instead of starting another.

        A training failure inside the worker never escapes the thread: it
        is recorded on :attr:`retrain_stats` / :attr:`last_retrain_error`,
        the DAP is left untouched, and the old model keeps serving.

        Returns the worker thread (join it — or call
        :meth:`wait_for_retrain` — to wait for the swap).
        """
        self._require_trained()
        if self._schedule_retrain():
            return self._retrain_thread
        with self._retrain_admin_lock:
            thread = self._retrain_thread
            in_flight = self._retrain_in_flight
        if in_flight and thread is not None:
            return thread
        raise RuntimeError("not enough free segments to retrain on")

    def wait_for_retrain(self, timeout: float | None = None) -> bool:
        """Block until no background retrain is in flight.

        Returns True when quiescent (also when none was running).
        """
        with self._retrain_admin_lock:
            thread = self._retrain_thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    @property
    def retrain_in_flight(self) -> bool:
        """Whether a background retrain is currently running."""
        with self._retrain_admin_lock:
            return self._retrain_in_flight

    @property
    def retrain_count(self) -> int:
        """Completed retrains (trainings after the first).

        Counted in exactly one place — the successful atomic swap — so
        direct :meth:`train` calls, :meth:`train_async`, and the
        ``auto_retrain`` path all agree.
        """
        return self.retrain_stats.succeeded

    # ------------------------------------------------------------ operations

    def place(self, value: bytes | np.ndarray) -> int:
        """Algorithm 1, lines 1–4: claim the best free address for a value.

        Prediction consults the fast placement layer first — memo cache,
        then (when enabled) the distilled student — and only runs the full
        model forward pass on genuinely novel content.  Every tier runs
        *outside* the swap lock — concurrent writers only serialise on the
        DAP pop.  The model epoch is re-validated under the lock before
        claiming (covering cached and student-served predictions alike); if
        a background retrain swapped the model mid-prediction, the value is
        simply re-predicted with the new model.  After
        ``config.place_epoch_retries`` lock-free attempts the prediction
        runs *under* the swap lock, so a hostile retrain cadence delays a
        writer by at most N forward passes instead of starving it.

        When the predicted cluster is empty the pool falls back first-fit
        to the nearest non-empty cluster, so placement degrades gracefully
        instead of failing while a retrain is deferred or in flight.
        """
        return self.place_many([value])[0]

    def place_many(self, values: list[bytes | np.ndarray]) -> list[int]:
        """Claim addresses for a whole batch with one forward pass (for the
        cache/student-miss remainder) and one (short) swap-lock acquisition.

        Cluster assignments are identical to per-value :meth:`place` calls
        (``predict_batch`` is bit-exact with sequential prediction, and the
        memo cache replays exactly the installed model's earlier answer for
        identical content); the DAP pop is all-or-nothing, so a
        pool-exhaustion failure leaves the pool untouched.

        See :meth:`place` for the epoch re-validation and bounded-retry
        contract.
        """
        self._require_trained()
        if not values:
            return []
        for _ in range(self.config.place_epoch_retries):
            pipeline = self.pipeline
            epoch = self._model_epoch
            clusters = self.fast.predict(
                values, pipeline, epoch,
                memory_ones_fraction=self._memory_ones_fraction,
            )
            with self._swap_lock:
                if epoch != self._model_epoch:
                    continue  # model swapped mid-prediction: re-predict
                addrs = self.dap.get_many(
                    clusters, centroids=pipeline.centroids
                )
                self._allocated.update(addrs)
                return addrs
        # Retries exhausted (a swap landed on every attempt): predict under
        # the swap lock, where no swap can interleave.  Slower — the swap
        # worker blocks on us — but guaranteed to terminate.
        with self._swap_lock:
            pipeline = self.pipeline
            clusters = self.fast.predict(
                values, pipeline, self._model_epoch,
                memory_ones_fraction=self._memory_ones_fraction,
            )
            addrs = self.dap.get_many(clusters, centroids=pipeline.centroids)
            self._allocated.update(addrs)
            return addrs

    def write(self, value: bytes) -> tuple[int, WriteResult]:
        """Algorithm 1 end-to-end: place, then differential-write the value.

        Only the value's own ``len(value)`` bytes are written — padded bits
        used for prediction never reach the media (§4.1).

        A device write error un-claims the address (it is re-clustered back
        into the DAP) before propagating.  The ``auto_retrain`` hook never
        raises: retrain trouble is deferred and recorded, not propagated
        into the PUT.

        A :class:`SegmentRetiredError` — verify-after-write exhausted the
        segment's ECP capacity — is handled *inside* the engine: the dead
        address is quarantined, a reserved spare (when available) joins
        the pool in its place, and the write retries at a fresh placement.
        Only pool exhaustion escapes.
        """
        if len(value) > self.segment_size:
            raise ValueError(
                f"value of {len(value)} bytes exceeds segment size "
                f"{self.segment_size}"
            )
        for _ in range(self.controller.n_segments + 1):
            try:
                addr = self.place(value)
            except PoolExhaustedError:
                # Free capacity ran dry: pull in a reserved spare before
                # giving up.
                if self.adopt_spare() is None:
                    raise
                continue
            try:
                if self.faults is not None:
                    self.faults.fire("device.write")
                result = self.controller.write(addr, value)
            except SegmentRetiredError:
                self.failed_writes += 1
                self.quarantine_address(addr)
                self.adopt_spare()
                continue
            except BaseException:
                self.failed_writes += 1
                self.release(addr)
                raise
            self.record_committed_write()
            return addr, result
        raise PoolExhaustedError(
            "write retries exhausted: every placement candidate retired"
        )

    def write_many(
        self, values: list[bytes]
    ) -> list[tuple[int, WriteResult]]:
        """Algorithm 1 for a whole batch: one forward pass, one short DAP
        claim, one batched differential write with vectorised accounting.

        Placement is identical to per-value :meth:`write` calls; the device
        write itself is all-or-nothing for ordinary errors — a failure
        un-claims every address of the batch (re-clustered back into the
        DAP) before propagating, so nothing is half-committed.

        With verify-after-write enabled each value goes through
        :meth:`write` individually: a mid-batch segment retirement must
        retry *that one value* on a fresh placement, which all-or-nothing
        batch semantics cannot express.
        """
        values = list(values)
        for value in values:
            if len(value) > self.segment_size:
                raise ValueError(
                    f"value of {len(value)} bytes exceeds segment size "
                    f"{self.segment_size}"
                )
        if not values:
            return []
        if self.controller.verify_writes:
            return [self.write(value) for value in values]
        addrs = self.place_many(values)
        try:
            if self.faults is not None:
                for _ in values:
                    self.faults.fire("device.write")
            results = self.controller.write_many(addrs, values)
        except BaseException:
            self.failed_writes += len(values)
            self.release_many(addrs)
            raise
        self.record_committed_writes(len(values))
        return list(zip(addrs, results))

    def claim_address(self, addr: int) -> bool:
        """Claim a *specific* free address out of the DAP (directed
        placement — the compactor's wear-leveling swaps choose their
        target segment by wear, not by content cluster).

        Returns False when the address is quarantined, allocated or
        otherwise not free; the DAP is left untouched in that case.
        """
        self._check_segment_address(addr)
        with self._swap_lock:
            if not self.dap.take(addr):
                return False
            self._allocated.add(addr)
            return True

    def write_at(self, addr: int, value: bytes) -> WriteResult:
        """Differential-write ``value`` at an already-claimed address (the
        directed-migration path; claim with :meth:`claim_address`).

        Same error contract as :meth:`write`, minus placement: on
        :class:`SegmentRetiredError` the address is quarantined before the
        error propagates (the caller re-targets); on any other failure it
        is released back into the DAP.
        """
        if len(value) > self.segment_size:
            raise ValueError(
                f"value of {len(value)} bytes exceeds segment size "
                f"{self.segment_size}"
            )
        if addr not in self._allocated:
            raise KeyError(f"address {addr} is not claimed")
        try:
            if self.faults is not None:
                self.faults.fire("device.write")
            result = self.controller.write(addr, value)
        except SegmentRetiredError:
            self.failed_writes += 1
            self.quarantine_address(addr)
            raise
        except BaseException:
            self.failed_writes += 1
            self.release(addr)
            raise
        self.record_committed_write()
        return result

    def record_committed_write(self) -> None:
        """Post-write bookkeeping: retrain policy, padding-statistics
        refresh, and the never-failing ``auto_retrain`` hook.

        Shared by :meth:`write` and the KV store's transactional write
        path, which performs the media write itself (inside an undo-log
        transaction) and calls this once the write has committed.
        """
        self.record_committed_writes(1)

    def record_committed_writes(self, count: int) -> None:
        """Batch form of :meth:`record_committed_write`: counts ``count``
        writes toward the retrain cooldown and padding-statistics refresh,
        then runs the ``auto_retrain`` hook once."""
        if count <= 0:
            return
        self.policy.record_write(count)
        self._note_write_for_ones_fraction(count)
        if self.config.auto_retrain:
            try:
                self.maybe_retrain()
            except Exception as exc:  # defensive: a PUT must never fail here
                with self._retrain_admin_lock:
                    self.retrain_stats.failed += 1
                    self._retrain_pending = True
                self.last_retrain_error = exc

    def release(self, addr: int) -> None:
        """Algorithm 2, lines 3–4: re-cluster a freed address into the DAP."""
        self.release_many([addr])

    def release_many(self, addrs: list[int]) -> None:
        """Batch recycle: one re-encoding forward pass for all addresses.

        The re-encode consults the same two-tier fast layer as placement —
        a segment whose exact content was recently labelled (the steady
        write/recycle stream of skewed traffic) re-pools from the memo
        cache without a forward pass.  Full-width content needs no padding,
        so the teacher fallback (``predict_batch``) is bit-exact with the
        former ``predict_segments`` path.

        Like :meth:`place`, the re-encoding runs outside the swap lock and
        is retried if a model swap lands mid-flight (the recycled addresses
        must be labelled by the *installed* model, or they would pollute
        the freshly relabelled pool).

        A freed address whose segment has been retired (or is retiring)
        is quarantined instead of re-pooled — its media is dead (or
        dying) and must never be handed out again.

        Like :meth:`place_many`, the epoch-mismatch retry is bounded by
        ``config.place_epoch_retries``; the final attempt re-encodes under
        the swap lock so a hostile retrain cadence cannot starve a release.
        """
        self._require_trained()
        addrs = list(addrs)
        for addr in addrs:
            if addr not in self._allocated:
                raise KeyError(f"address {addr} is not allocated")
        if not addrs:
            return
        contents = [
            bytes(self.controller.peek(addr, self.segment_size))
            for addr in addrs
        ]
        for _ in range(self.config.place_epoch_retries):
            pipeline = self.pipeline
            epoch = self._model_epoch
            clusters = self.fast.predict(
                contents, pipeline, epoch,
                memory_ones_fraction=self._memory_ones_fraction,
            )
            with self._swap_lock:
                if epoch != self._model_epoch:
                    continue  # model swapped mid-encode: re-label
                self._repool(addrs, clusters)
                return
        with self._swap_lock:
            clusters = self.fast.predict(
                contents, self.pipeline, self._model_epoch,
                memory_ones_fraction=self._memory_ones_fraction,
            )
            self._repool(addrs, clusters)

    def _repool(self, addrs: list[int], clusters) -> None:
        """Return freed addresses to the DAP (or quarantine dying ones);
        the caller holds the swap lock with a validated epoch."""
        health = self.health
        for addr, cluster in zip(addrs, clusters):
            self._allocated.discard(addr)
            if health is not None and health.is_unplaceable(
                addr // self.segment_size
            ):
                self.dap.quarantine(addr)
            else:
                self.dap.add(int(cluster), addr)

    def maybe_retrain(self) -> bool:
        """Run the retrain policy; starts a *background* retrain on FIRE.

        Never blocks the write path and never raises.  When the policy
        wants a retrain but fewer than ``n_clusters`` segments are free,
        the retrain is deferred (``retrain_stats.deferred``) and retried on
        a later call once capacity returns; writes meanwhile keep
        succeeding through the DAP's first-fit fallback.

        Returns True when a background retrain was started.
        """
        with self._retrain_admin_lock:
            if self._retrain_in_flight:
                return False
            pending = self._retrain_pending
        decision = self.policy.decide(
            self.dap.min_cluster_free(),
            self.dap.free_count(),
            self.config.n_clusters,
            pending=pending,
        )
        if decision is RetrainDecision.SKIP:
            return False
        if decision is RetrainDecision.DEFER:
            self._defer_retrain()
            return False
        return self._schedule_retrain()

    # ------------------------------------------------------ endurance health

    def quarantine_address(self, addr: int) -> None:
        """Take ``addr`` out of circulation permanently (retired media):
        un-claim it if allocated and bar the DAP from ever re-pooling it."""
        self._check_segment_address(addr)
        with self._swap_lock:
            self._allocated.discard(addr)
            self.dap.quarantine(addr)

    def adopt_spare(self) -> int | None:
        """Activate one reserved spare segment, if any: lift its
        quarantine and index it into the DAP.  Returns the activated
        address, or ``None`` when no spares (or no health manager) remain.
        """
        health = self.health
        if health is None:
            return None
        spare = health.take_spare()
        if spare is None:
            return None
        self.dap.unquarantine(spare)
        self.add_addresses([spare])
        return spare

    def reserve_spares(self, count: int) -> list[int]:
        """Withhold ``count`` free segments from placement as spare
        capacity; each later segment retirement activates one via
        :meth:`adopt_spare`, keeping usable capacity constant until the
        spares run out.

        The highest free addresses are chosen (deterministic, and the
        segments the incremental-indexing path would add last).
        """
        self._require_trained()
        health = self.health
        if health is None:
            raise RuntimeError(
                "reserve_spares needs verify-after-write enabled"
            )
        if count <= 0:
            return []
        with self._swap_lock:
            free = sorted(self.dap.snapshot_addresses(), reverse=True)[:count]
            if len(free) < count:
                raise RuntimeError(
                    "not enough free segments to reserve as spares"
                )
            for addr in free:
                self.dap.quarantine(addr)
        spares = sorted(free)
        health.add_spares(spares)
        return spares

    # ------------------------------------------------------------ inspection

    @property
    def stats(self):
        """The underlying device's cumulative counters."""
        return self.controller.stats

    @property
    def allocated_count(self) -> int:
        """Number of segments currently claimed by live values."""
        return len(self._allocated)

    def memory_footprint_bytes(self) -> int:
        """DRAM footprint of the DAP (the Figure 7 metric)."""
        return self.dap.memory_footprint_bytes()

    # -------------------------------------------------------------- internals

    def _schedule_retrain(self) -> bool:
        """Start the single-flight background retrain worker.

        Returns False when one is already in flight or when fewer than
        ``n_clusters`` segments are free (the attempt is then deferred).
        """
        with self._retrain_admin_lock:
            if self._retrain_in_flight:
                return False
            fit_set = self.dap.snapshot_addresses()
            if len(fit_set) < self.config.n_clusters:
                self._defer_retrain_locked()
                return False
            self._retrain_pending = False
            self._retrain_in_flight = True
            thread = threading.Thread(
                target=self._retrain_worker,
                args=(fit_set,),
                daemon=True,
                name="e2nvm-retrain",
            )
            self._retrain_thread = thread
        thread.start()
        return True

    def _retrain_worker(self, fit_set: list[int]) -> None:
        try:
            self._run_training(fit_set, swap_addresses=None)
        except Exception as exc:
            # Recorded, never propagated: the old model keeps serving and
            # the attempt is retried after the cooldown backs off.
            self.last_retrain_error = exc
            with self._retrain_admin_lock:
                self._retrain_pending = True
        finally:
            with self._retrain_admin_lock:
                self._retrain_in_flight = False

    def _defer_retrain(self) -> None:
        with self._retrain_admin_lock:
            self._defer_retrain_locked()

    def _defer_retrain_locked(self) -> None:
        if not self._retrain_pending:
            self._retrain_pending = True
            self.retrain_stats.deferred += 1

    def _run_training(
        self,
        fit_set: list[int],
        swap_addresses: list[int] | None,
        verbose: bool = False,
    ) -> dict:
        """Fit a candidate pipeline on ``fit_set`` and swap it in atomically.

        ``swap_addresses`` replaces the pool wholesale when given (initial
        or explicit-subset training); ``None`` relabels whatever is free at
        swap time (the retrain path, where concurrent writes may have
        consumed part of the fit set).  On any failure the DAP is restored
        byte-identically and the exception propagates to the caller.
        """
        was_retrain = self.pipeline.trained
        if was_retrain:
            with self._retrain_admin_lock:
                self.retrain_stats.started += 1
        start = time.perf_counter()
        try:
            pipeline, history, contents, student = self._fit_candidate(
                fit_set, verbose
            )
            self._swap_in(pipeline, swap_addresses, student=student)
        except BaseException:
            if was_retrain:
                with self._retrain_admin_lock:
                    self.retrain_stats.failed += 1
            self.policy.record_retrain()  # back-off before any retry
            raise
        self._refresh_ones_fraction(contents)
        duration = time.perf_counter() - start
        low_agreement = False
        with self._retrain_admin_lock:
            if was_retrain:
                self.retrain_stats.succeeded += 1
                self.retrain_stats.last_duration_s = duration
                self.retrain_stats.total_duration_s += duration
            if student is not None:
                self.retrain_stats.student_refreshes += 1
                self.retrain_stats.last_student_agreement = (
                    student.train_agreement
                )
                if (
                    student.train_agreement
                    < self.config.student_agreement_warn
                ):
                    self.retrain_stats.student_low_agreement_warnings += 1
                    low_agreement = True
            self._retrain_pending = False
        if student is not None and low_agreement:
            warnings.warn(
                f"distilled student agrees with the teacher on only "
                f"{student.train_agreement:.0%} of the training sample "
                f"(< student_agreement_warn="
                f"{self.config.student_agreement_warn:.0%}); at "
                f"student_confidence={self.config.student_confidence} it "
                "will defer most placements to the teacher "
                "(student_served stays ~0)",
                stacklevel=2,
            )
        self.policy.record_retrain()
        return history

    def _fit_candidate(
        self, fit_set: list[int], verbose: bool = False
    ) -> tuple[EncoderPipeline, dict, np.ndarray, object | None]:
        """Fit a fresh pipeline on ``fit_set`` contents, off to the side,
        and (when enabled) distill a student placer from it on the same
        sample — both happen before the swap, so the write path never
        waits on either."""
        contents = self._segment_bits(fit_set)
        sample = contents
        if len(fit_set) > self.config.train_sample_limit:
            with self._rng_lock:
                pick = self._rng.choice(
                    len(fit_set), size=self.config.train_sample_limit,
                    replace=False,
                )
            sample = contents[pick]
        if self.faults is not None:
            self.faults.fire("train.fit")
        pipeline = EncoderPipeline(self.input_bits, self.config, self.faults)
        history = pipeline.fit(sample, verbose=verbose)
        student = None
        if self.config.student_enabled:
            student = pipeline.distill_student(sample)
        return pipeline, history, contents, student

    def attach_student(self, student) -> None:
        """Install a (deserialised) student placer for the *current* model
        epoch — the recovery-path complement of the per-retrain
        distillation.  The caller is responsible for the student matching
        the installed teacher (e.g. both loaded from the same snapshot)."""
        if student is not None and not getattr(student, "trained", False):
            raise ValueError("attach_student() needs a trained student")
        with self._swap_lock:
            self.fast.install(self._model_epoch, student)

    def placement_telemetry(self) -> dict:
        """Fast placement layer telemetry (cache hits/misses/evictions,
        student served/deferred, teacher fallbacks), plus the
        low-agreement flag: a trained student whose distillation fidelity
        sits below ``config.student_agreement_warn`` will rarely clear the
        ``student_confidence`` serving threshold — ``student_served: 0``
        alongside ``student_low_agreement: True`` means the student is
        dormant by design, not silently broken."""
        out = self.fast.stats()
        out["student_agreement_warn"] = self.config.student_agreement_warn
        out["student_low_agreement"] = bool(
            out["student_trained"]
            and out["student_train_agreement"]
            < self.config.student_agreement_warn
        )
        return out

    def _swap_in(
        self,
        pipeline: EncoderPipeline,
        addresses: list[int] | None,
        student=None,
    ) -> None:
        """Atomically install ``pipeline`` and a relabelled pool.

        Under the swap lock: snapshot the pool, relabel the free set with
        the new model, and swap both — the fast placement layer adopts the
        new epoch at the same point (memo cache invalidated wholesale, the
        freshly distilled student installed).  Any exception restores the
        snapshot byte-for-byte (counted as a pool restore) and re-raises.
        """
        with self._swap_lock:
            saved = self.dap.snapshot()
            quarantined = self.dap.quarantined()
            free_now = self.dap.drain()
            if addresses is not None:
                free_now = [a for a in addresses if a not in quarantined]
            try:
                if self.faults is not None:
                    self.faults.fire("train.relabel")
                new_dap = DynamicAddressPool(self.config.n_clusters)
                new_dap.adopt_quarantine(quarantined)
                if free_now:
                    labels = pipeline.predict_segments(
                        self._segment_bits(free_now)
                    )
                    new_dap.populate(labels, free_now)
                self.pipeline = pipeline
                self.dap = new_dap
                self._model_epoch += 1
                self.fast.install(self._model_epoch, student)
            except BaseException:
                self.dap.restore(saved)
                with self._retrain_admin_lock:
                    self.retrain_stats.pool_restores += 1
                raise

    def _segment_bits(self, addresses) -> np.ndarray:
        rows = np.empty((len(addresses), self.input_bits), dtype=np.float64)
        for i, addr in enumerate(addresses):
            content = self.controller.peek(addr, self.segment_size)
            rows[i] = np.unpackbits(content)
        return rows

    def _note_write_for_ones_fraction(self, count: int = 1) -> None:
        """Periodically re-sample free-segment content so memory-based
        padding tracks drift (the fraction would otherwise go stale between
        retrains)."""
        self._ones_fraction_age += count
        interval = self.config.ones_fraction_refresh_writes
        if interval <= 0 or self._ones_fraction_age < interval:
            return
        free = self.dap.snapshot_addresses()
        if not free:
            self._ones_fraction_age = 0
            return
        limit = self.config.ones_fraction_sample_segments
        if len(free) > limit:
            with self._rng_lock:
                pick = self._rng.choice(len(free), size=limit, replace=False)
            free = [free[i] for i in pick]
        self._refresh_ones_fraction(self._segment_bits(free))

    def _refresh_ones_fraction(self, contents_bits: np.ndarray) -> None:
        if contents_bits.size:
            self._memory_ones_fraction = float(contents_bits.mean())
        self._ones_fraction_age = 0

    def _check_segment_address(self, addr: int) -> None:
        if addr % self.segment_size:
            raise ValueError(f"address {addr} is not segment-aligned")
        if not 0 <= addr < self.controller.n_segments * self.segment_size:
            raise IndexError(f"address {addr} out of range")
        if addr < self.reserved_segments * self.segment_size:
            raise ValueError(
                f"address {addr} is inside the {self.reserved_segments} "
                "reserved (log/catalog) segments"
            )

    def _require_trained(self) -> None:
        if not self.pipeline.trained:
            raise RuntimeError("E2NVM.train() must be called before operations")
