"""The E2-NVM placement engine (Algorithms 1 and 2).

``E2NVM`` owns the trained prediction pipeline and the Dynamic Address Pool
and exposes the write path of Algorithm 1:

1. ``predict`` the incoming value's cluster (VAE encoder + K-means, with
   padding when the value is shorter than a segment);
2. pop a free address of that cluster from the DAP;
3. write the value there — the controller's DCW scheme programs only the
   bits that differ from the (similar) old content;

and the recycle path of Algorithm 2: a freed segment's *current content* is
re-encoded and the address returned to the matching cluster's free list.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.address_pool import DynamicAddressPool
from repro.core.config import E2NVMConfig
from repro.core.pipeline import EncoderPipeline
from repro.core.retraining import RetrainPolicy
from repro.nvm.controller import MemoryController
from repro.nvm.device import WriteResult
from repro.util.rng import rng_from_seed


class E2NVM:
    """Memory-aware write placement over a :class:`MemoryController`.

    Args:
        controller: the NVM front-end the engine places writes on.
        config: hyperparameters; see :class:`E2NVMConfig`.
    """

    def __init__(
        self, controller: MemoryController, config: E2NVMConfig | None = None
    ) -> None:
        self.controller = controller
        self.config = config or E2NVMConfig()
        self.segment_size = controller.segment_size
        self.input_bits = self.segment_size * 8
        self.pipeline = EncoderPipeline(self.input_bits, self.config)
        self.dap = DynamicAddressPool(self.config.n_clusters)
        self.policy = RetrainPolicy(
            min_free_per_cluster=self.config.retrain_threshold,
            cooldown_writes=self.config.retrain_cooldown_writes,
        )
        self.retrain_count = 0
        self._allocated: set[int] = set()
        self._rng = rng_from_seed(self.config.seed)
        self._memory_ones_fraction = 0.5
        self._ones_fraction_age = 0
        # Serialises place/release against background model swaps.
        self._swap_lock = threading.RLock()

    # ------------------------------------------------------------- training

    def free_addresses(self) -> list[int]:
        """Addresses of all segments not currently allocated."""
        return [
            self.controller.segment_address(i)
            for i in range(self.controller.n_segments)
            if self.controller.segment_address(i) not in self._allocated
        ]

    def train(
        self, verbose: bool = False, addresses: list[int] | None = None
    ) -> dict:
        """(Re)train the model on free-segment contents and rebuild the DAP.

        Args:
            addresses: optional subset of free addresses to index — the
                "dynamic incremental approach" of §4.1.4 starts by indexing
                a portion of memory; add the rest later with
                :meth:`add_addresses`.

        Returns the training history (loss curves) of the pipeline.
        """
        if addresses is not None:
            free = list(addresses)
            for addr in free:
                self._check_segment_address(addr)
                if addr in self._allocated:
                    raise ValueError(f"address {addr} is allocated")
        elif self.pipeline.trained:
            free = self.dap.drain() or self.free_addresses()
        else:
            free = self.free_addresses()
        if len(free) < self.config.n_clusters:
            raise RuntimeError(
                f"cannot train on {len(free)} free segments with "
                f"n_clusters={self.config.n_clusters}"
            )
        contents = self._segment_bits(free)

        sample = contents
        if len(free) > self.config.train_sample_limit:
            pick = self._rng.choice(
                len(free), size=self.config.train_sample_limit, replace=False
            )
            sample = contents[pick]
        history = self.pipeline.fit(sample, verbose=verbose)

        labels = self.pipeline.predict_segments(contents)
        with self._swap_lock:
            self.dap = DynamicAddressPool(self.config.n_clusters)
            self.dap.populate(labels, free)
        self._refresh_ones_fraction(contents)
        self.policy.record_retrain()
        return history

    def add_addresses(self, addresses: list[int]) -> None:
        """Incrementally index more free segments into the DAP (§4.1.4).

        Each address is classified with the current model and appended to
        its cluster's free list; no retraining happens.
        """
        self._require_trained()
        addresses = list(addresses)
        if not addresses:
            return
        for addr in addresses:
            self._check_segment_address(addr)
            if addr in self._allocated:
                raise ValueError(f"address {addr} is allocated")
        labels = self.pipeline.predict_segments(self._segment_bits(addresses))
        with self._swap_lock:
            self.dap.populate(labels, addresses)

    def train_async(self) -> threading.Thread:
        """Retrain lazily in the background and swap models atomically.

        The paper stresses that "the writing process does not have to be
        stopped because the retraining is done in the background lazily"
        (§5.3): writes keep using the old model; when the new model is
        ready, the pipeline is swapped and the free pool re-clustered under
        the swap lock.

        Returns the worker thread (join it to wait for the swap).
        """
        self._require_trained()
        snapshot = self.dap.snapshot_addresses()
        if len(snapshot) < self.config.n_clusters:
            raise RuntimeError("not enough free segments to retrain on")
        contents = self._segment_bits(snapshot)
        sample = contents
        if len(snapshot) > self.config.train_sample_limit:
            pick = self._rng.choice(
                len(snapshot), size=self.config.train_sample_limit,
                replace=False,
            )
            sample = contents[pick]
        new_pipeline = EncoderPipeline(self.input_bits, self.config)

        def worker() -> None:
            new_pipeline.fit(sample)
            with self._swap_lock:
                free_now = self.dap.drain()
                self.pipeline = new_pipeline
                if free_now:
                    labels = new_pipeline.predict_segments(
                        self._segment_bits(free_now)
                    )
                    self.dap = DynamicAddressPool(self.config.n_clusters)
                    self.dap.populate(labels, free_now)
                self.retrain_count += 1
                self.policy.record_retrain()

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        return thread

    # ------------------------------------------------------------ operations

    def place(self, value: bytes | np.ndarray) -> int:
        """Algorithm 1, lines 1–4: claim the best free address for a value."""
        self._require_trained()
        with self._swap_lock:
            cluster = self.pipeline.predict_cluster(
                value, memory_ones_fraction=self._memory_ones_fraction
            )
            addr = self.dap.get(cluster, centroids=self.pipeline.centroids)
            self._allocated.add(addr)
        return addr

    def write(self, value: bytes) -> tuple[int, WriteResult]:
        """Algorithm 1 end-to-end: place, then differential-write the value.

        Only the value's own ``len(value)`` bytes are written — padded bits
        used for prediction never reach the media (§4.1).
        """
        if len(value) > self.segment_size:
            raise ValueError(
                f"value of {len(value)} bytes exceeds segment size "
                f"{self.segment_size}"
            )
        addr = self.place(value)
        result = self.controller.write(addr, value)
        self.policy.record_write()
        self._ones_fraction_age += 1
        if self.config.auto_retrain:
            self.maybe_retrain()
        return addr, result

    def release(self, addr: int) -> None:
        """Algorithm 2, lines 3–4: re-cluster a freed address into the DAP."""
        self._require_trained()
        if addr not in self._allocated:
            raise KeyError(f"address {addr} is not allocated")
        bits = self._segment_bits([addr])
        with self._swap_lock:
            cluster = int(self.pipeline.predict_segments(bits)[0])
            self._allocated.discard(addr)
            self.dap.add(cluster, addr)

    def maybe_retrain(self) -> bool:
        """Run the retrain policy; retrains and returns True when it fires."""
        fire = self.policy.should_retrain(
            self.dap.min_cluster_free(),
            self.dap.free_count(),
            self.config.n_clusters,
        )
        if fire:
            self.train()
            self.retrain_count += 1
        return fire

    # ------------------------------------------------------------ inspection

    @property
    def stats(self):
        """The underlying device's cumulative counters."""
        return self.controller.stats

    @property
    def allocated_count(self) -> int:
        """Number of segments currently claimed by live values."""
        return len(self._allocated)

    def memory_footprint_bytes(self) -> int:
        """DRAM footprint of the DAP (the Figure 7 metric)."""
        return self.dap.memory_footprint_bytes()

    # -------------------------------------------------------------- internals

    def _segment_bits(self, addresses) -> np.ndarray:
        rows = np.empty((len(addresses), self.input_bits), dtype=np.float64)
        for i, addr in enumerate(addresses):
            content = self.controller.peek(addr, self.segment_size)
            rows[i] = np.unpackbits(content)
        return rows

    def _refresh_ones_fraction(self, contents_bits: np.ndarray) -> None:
        if contents_bits.size:
            self._memory_ones_fraction = float(contents_bits.mean())
        self._ones_fraction_age = 0

    def _check_segment_address(self, addr: int) -> None:
        if addr % self.segment_size:
            raise ValueError(f"address {addr} is not segment-aligned")
        if not 0 <= addr < self.controller.n_segments * self.segment_size:
            raise IndexError(f"address {addr} out of range")

    def _require_trained(self) -> None:
        if not self.pipeline.trained:
            raise RuntimeError("E2NVM.train() must be called before operations")
