"""The cluster-to-memory Dynamic Address Pool (DAP, §3.3.1).

A mapping from cluster id to the free memory addresses whose current content
belongs to that cluster.  PUT pops the *first* available address of the
predicted cluster (the paper's deliberate first-fit choice); DELETE recycles
addresses back into the pool.  All mutation is lock-protected — the paper
notes E2-NVM "utilize[s] thread-safe methods ... to maintain address pools
and mapping" (§5.1).
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np


class PoolExhaustedError(RuntimeError):
    """Every cluster's free list is empty (and no fallback exists)."""


class DynamicAddressPool:
    """Per-cluster FIFO free lists of segment addresses.

    Addresses can additionally be *quarantined* (retired or retiring
    segments, reserved spares): a quarantined address is removed from its
    free list, refused by :meth:`add`, and survives the pool rebuilds a
    retrain or recovery performs — callers carry the set across with
    :meth:`adopt_quarantine`.
    """

    #: DRAM bytes per pool entry (an 8-byte address plus list overhead),
    #: used for the Figure 7 footprint accounting.
    BYTES_PER_ENTRY = 16
    #: Fixed DRAM bytes per cluster bucket.
    BYTES_PER_CLUSTER = 64

    def __init__(self, n_clusters: int) -> None:
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self._pools: dict[int, deque[int]] = {
            c: deque() for c in range(n_clusters)
        }
        self._quarantined: set[int] = set()
        self._lock = threading.Lock()
        # Nearest-neighbour fallback cache: per-cluster centroid-distance
        # order, memoised on the centroids array identity.  A model swap
        # installs a new centroids array, which invalidates this naturally.
        self._cached_centroids: np.ndarray | None = None
        self._neighbor_order: np.ndarray | None = None

    def populate(self, labels, addresses) -> None:
        """Bulk-load (cluster, address) pairs during initialisation.

        Raises:
            ValueError: when an address is quarantined (retired segments
                must never re-enter the free lists).
        """
        with self._lock:
            for label, addr in zip(labels, addresses):
                addr = int(addr)
                if addr in self._quarantined:
                    raise ValueError(
                        f"address {addr} is quarantined and cannot be pooled"
                    )
                self._pools[int(label)].append(addr)

    def get(self, cluster: int, centroids: np.ndarray | None = None) -> int:
        """Pop the first free address of ``cluster``.

        When the cluster is empty and ``centroids`` are given, falls back to
        the nearest non-empty cluster by centroid distance; without
        centroids, falls back to the fullest non-empty cluster.

        Raises:
            RuntimeError: when every cluster is empty.
        """
        with self._lock:
            pool = self._pools[cluster]
            if pool:
                return pool.popleft()
            fallback = self._fallback_cluster(cluster, centroids)
            if fallback is None:
                raise PoolExhaustedError(
                    "dynamic address pool is exhausted"
                )
            return self._pools[fallback].popleft()

    def get_many(
        self, clusters, centroids: np.ndarray | None = None
    ) -> list[int]:
        """Pop one free address per entry of ``clusters`` under a single
        lock acquisition (the batched write path's claim step).

        Falls back per entry exactly like :meth:`get`.  All-or-nothing: if
        the pool runs out partway through, every address popped so far is
        pushed back (in order) and ``RuntimeError`` is raised, so pool
        accounting stays exact.
        """
        with self._lock:
            popped: list[tuple[int, int]] = []
            out: list[int] = []
            for cluster in clusters:
                cluster = int(cluster)
                pool = self._pools[cluster]
                if not pool:
                    fallback = self._fallback_cluster(cluster, centroids)
                    if fallback is None:
                        for source, addr in reversed(popped):
                            self._pools[source].appendleft(addr)
                        raise PoolExhaustedError(
                            "dynamic address pool is exhausted"
                        )
                    cluster = fallback
                    pool = self._pools[cluster]
                addr = pool.popleft()
                popped.append((cluster, addr))
                out.append(addr)
            return out

    def add(self, cluster: int, addr: int) -> None:
        """Recycle ``addr`` into ``cluster`` (the DELETE path).

        Raises:
            ValueError: when ``addr`` is quarantined — retired segments
                must be recycled through :meth:`quarantine`-aware callers.
        """
        if not 0 <= cluster < self.n_clusters:
            raise KeyError(f"cluster {cluster} out of range")
        with self._lock:
            if int(addr) in self._quarantined:
                raise ValueError(
                    f"address {addr} is quarantined and cannot be pooled"
                )
            self._pools[cluster].append(int(addr))

    def take(self, addr: int) -> bool:
        """Claim a *specific* free address, removing it from whichever
        cluster's free list holds it (directed placement: the compactor's
        static wear-leveling swaps target the most-worn free segment).

        Returns False — without mutating anything — when the address is
        quarantined or not currently free.
        """
        addr = int(addr)
        with self._lock:
            if addr in self._quarantined:
                return False
            for pool in self._pools.values():
                try:
                    pool.remove(addr)
                    return True
                except ValueError:
                    continue
            return False

    # ------------------------------------------------------------ quarantine

    def quarantine(self, addr: int) -> None:
        """Bar ``addr`` from placement: drop it from any free list and
        refuse future :meth:`add`/:meth:`populate` calls for it.

        Used for retired/retiring segments and reserved spares.  Idempotent;
        composes with batch claims (a quarantined address simply is not in
        any pool) and with the nearest-cluster fallback.
        """
        addr = int(addr)
        with self._lock:
            self._quarantined.add(addr)
            for pool in self._pools.values():
                try:
                    pool.remove(addr)
                    break
                except ValueError:
                    continue

    def unquarantine(self, addr: int) -> None:
        """Lift the bar on ``addr`` (spare activation).  The caller re-pools
        it explicitly (e.g. ``E2NVM.add_addresses``); this only re-permits
        :meth:`add`/:meth:`populate`."""
        with self._lock:
            self._quarantined.discard(int(addr))

    def quarantined(self) -> set[int]:
        """Snapshot of every quarantined address."""
        with self._lock:
            return set(self._quarantined)

    def adopt_quarantine(self, addrs) -> None:
        """Carry a quarantine set into this (fresh) pool — retrains and
        recovery rebuild the DAP wholesale and must not lose it."""
        with self._lock:
            self._quarantined.update(int(a) for a in addrs)

    def drain(self) -> list[int]:
        """Remove and return every free address (used before a retrain)."""
        with self._lock:
            addrs = [a for pool in self._pools.values() for a in pool]
            for pool in self._pools.values():
                pool.clear()
            return addrs

    def snapshot_addresses(self) -> list[int]:
        """Every free address, without removing anything (for background
        retraining snapshots)."""
        with self._lock:
            return [a for pool in self._pools.values() for a in pool]

    def snapshot(self) -> dict[int, tuple[int, ...]]:
        """Exact per-cluster contents, in order (transactional retrains
        capture this before mutating and :meth:`restore` it on failure)."""
        with self._lock:
            return {c: tuple(pool) for c, pool in self._pools.items()}

    def restore(self, snapshot: dict[int, tuple[int, ...]]) -> None:
        """Reinstate a :meth:`snapshot` exactly, discarding current state."""
        with self._lock:
            for c in self._pools:
                self._pools[c] = deque(snapshot.get(c, ()))

    def free_count(self) -> int:
        """Total free addresses across all clusters."""
        with self._lock:
            return sum(len(pool) for pool in self._pools.values())

    def min_cluster_free(self) -> int:
        """Smallest per-cluster free count (drives the retrain trigger)."""
        with self._lock:
            return min(len(pool) for pool in self._pools.values())

    def sizes(self) -> dict[int, int]:
        """Free addresses per cluster."""
        with self._lock:
            return {c: len(pool) for c, pool in self._pools.items()}

    def memory_footprint_bytes(self) -> int:
        """Estimated DRAM footprint of the pool (Figure 7)."""
        with self._lock:
            entries = sum(len(pool) for pool in self._pools.values())
        return (
            entries * self.BYTES_PER_ENTRY
            + self.n_clusters * self.BYTES_PER_CLUSTER
        )

    def _fallback_cluster(
        self, cluster: int, centroids: np.ndarray | None
    ) -> int | None:
        if centroids is None:
            non_empty = [c for c, pool in self._pools.items() if pool]
            if not non_empty:
                return None
            return max(non_empty, key=lambda c: len(self._pools[c]))
        # O(k) walk over the cached nearest-centroid order instead of an
        # O(k * d) distance computation on every empty-cluster miss.
        #
        # Retirement-safety: the memo stores only the *cluster* visit
        # order, never addresses, and each candidate's free list is
        # re-checked here at use time under the pool lock.  A segment the
        # health manager retires between model swaps is removed from its
        # free list by ``quarantine()`` (same lock), so the fallback can
        # observe an emptied cluster but can never pop a retired address —
        # no invalidation of the memo is needed.
        for candidate in self._neighbor_order_for(centroids)[cluster]:
            if self._pools[int(candidate)]:
                return int(candidate)
        return None

    def _neighbor_order_for(self, centroids: np.ndarray) -> np.ndarray:
        """Per-cluster centroid indices sorted by squared distance.

        Memoised on the centroids array object: a trained model's centroid
        array is stable, and a swap replaces it wholesale.  Ties break on
        the lower cluster index (stable argsort), matching the previous
        linear-scan ``min``.
        """
        if (
            self._neighbor_order is None
            or self._cached_centroids is not centroids
        ):
            diffs = centroids[:, None, :] - centroids[None, :, :]
            sq = np.einsum("ijk,ijk->ij", diffs, diffs)
            self._neighbor_order = np.argsort(sq, axis=1, kind="stable")
            self._cached_centroids = centroids
        return self._neighbor_order
