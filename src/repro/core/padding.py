"""Padding strategies (§4 of the paper).

The VAE's input width is fixed at model-creation time; values shorter than a
memory segment are *padded to the model width for prediction only* — padded
bits are never written to NVM (§4.1: "the padded part ... is added to the
data just for clustering purposes").

Seven padding types across four positions are implemented:

=============  =================================================================
type           padding bit source
=============  =================================================================
``zero``       all zeros (universal data-agnostic)
``one``        all ones (universal data-agnostic)
``random``     iid fair coin flips (universal data-agnostic)
``input``      Bernoulli(p) with p = fraction of ones in this input item (IB)
``dataset``    Bernoulli(p) with p = fraction of ones over all items seen (DB)
``memory``     Bernoulli(p) with p = fraction of ones in the memory pool (MB)
``learned``    LSTM sliding-window extrapolation of the item's bit stream (LB)
=============  =================================================================

Positions: ``begin`` (pad before the data), ``end`` (after), ``edges`` (data
centred, pad split to both sides — Figure 14's "padding in the edges"), and
``middle`` (pad inserted in the middle of the data — Figure 5's rendering).
"""

from __future__ import annotations

import numpy as np

from repro.ml.lstm import LSTMPredictor
from repro.util.rng import rng_from_seed

PaddingStrategy = ("zero", "one", "random", "input", "dataset", "memory", "learned")
PaddingPosition = ("begin", "end", "middle", "edges")


class DatasetDistributionTracker:
    """Running count of ones/bits over every item the system has received.

    Backs the dataset-based (DB) strategy, whose padding distribution "uses
    the distribution of 1's and 0's in all the items it has received so far"
    (§4.1.2).
    """

    def __init__(self) -> None:
        self.ones = 0
        self.bits = 0

    def observe(self, bits: np.ndarray) -> None:
        """Fold one item's bit vector into the running distribution."""
        bits = np.asarray(bits)
        self.ones += int(np.count_nonzero(bits > 0.5))
        self.bits += int(bits.size)

    @property
    def ones_fraction(self) -> float:
        """P(bit = 1) over everything observed; 0.5 before any data."""
        return self.ones / self.bits if self.bits else 0.5


def split_pad_counts(q: int, position: str) -> tuple[int, int]:
    """How many padding bits go before/after the data for a position.

    For ``middle`` the "before" half is the part inserted after the data's
    first half (the counts still describe the pad split).
    """
    if position not in PaddingPosition:
        raise ValueError(f"unknown padding position {position!r}")
    if position == "begin":
        return q, 0
    if position == "end":
        return 0, q
    # middle and edges split the padding in two (extra bit goes first).
    first = (q + 1) // 2
    return first, q - first


def assemble(data: np.ndarray, pad_before: np.ndarray, pad_after: np.ndarray,
             position: str) -> np.ndarray:
    """Place data and padding according to ``position``."""
    if position == "begin":
        return np.concatenate([pad_before, pad_after, data])
    if position == "end":
        return np.concatenate([data, pad_before, pad_after])
    if position == "edges":
        return np.concatenate([pad_before, data, pad_after])
    if position == "middle":
        half = data.size // 2
        return np.concatenate(
            [data[:half], pad_before, pad_after, data[half:]]
        )
    raise ValueError(f"unknown padding position {position!r}")


class Padder:
    """Pads variable-size items to the model's fixed input width.

    Args:
        target_bits: the model input width ``w``.
        strategy: one of :data:`PaddingStrategy`.
        position: one of :data:`PaddingPosition`.
        seed: RNG for the stochastic strategies.
        lstm: a (trained or trainable) :class:`LSTMPredictor`; required for
            the ``learned`` strategy.
        tracker: shared :class:`DatasetDistributionTracker`; one is created
            when omitted.
    """

    def __init__(
        self,
        target_bits: int,
        strategy: str = "zero",
        position: str = "end",
        seed: int | np.random.Generator | None = 0,
        lstm: LSTMPredictor | None = None,
        tracker: DatasetDistributionTracker | None = None,
    ) -> None:
        if target_bits <= 0:
            raise ValueError("target_bits must be positive")
        if strategy not in PaddingStrategy:
            raise ValueError(
                f"unknown padding strategy {strategy!r}; "
                f"choose from {PaddingStrategy}"
            )
        if position not in PaddingPosition:
            raise ValueError(
                f"unknown padding position {position!r}; "
                f"choose from {PaddingPosition}"
            )
        if strategy == "learned" and lstm is None:
            raise ValueError("the learned strategy needs an LSTMPredictor")
        self.target_bits = target_bits
        self.strategy = strategy
        self.position = position
        self.lstm = lstm
        self.tracker = tracker or DatasetDistributionTracker()
        self._rng = rng_from_seed(seed)

    def pad(
        self, data_bits: np.ndarray, memory_ones_fraction: float | None = None
    ) -> np.ndarray:
        """Return a ``target_bits``-long vector containing the data + padding.

        Args:
            data_bits: the item's bits (length ``p`` ≤ ``target_bits``).
            memory_ones_fraction: ones fraction of the memory pool content,
                required by the ``memory`` strategy.
        """
        data = np.asarray(data_bits, dtype=np.float32).reshape(-1)
        if data.size > self.target_bits:
            raise ValueError(
                f"item of {data.size} bits exceeds model width {self.target_bits}"
            )
        self.tracker.observe(data)
        q = self.target_bits - data.size
        if q == 0:
            return data.copy()

        n_before, n_after = split_pad_counts(q, self.position)
        before, after = self._make_pad(
            data, n_before, n_after, memory_ones_fraction
        )
        return assemble(data, before, after, self.position)

    def pad_batch(
        self,
        items: list[np.ndarray],
        memory_ones_fraction: float | None = None,
    ) -> np.ndarray:
        """Pad a batch of items into one ``(B, target_bits)`` matrix.

        Bit-exact with ``B`` sequential :meth:`pad` calls in item order: the
        dataset tracker is folded item by item and the stochastic strategies
        draw from the RNG one item at a time, so a batched prediction and a
        per-value prediction see identical model inputs.  The win is the
        allocation pattern — one output matrix filled by slice assignment
        instead of ``B`` per-item ``np.concatenate`` chains — and, above
        this, a single batched model forward pass.
        """
        rows = [
            np.asarray(bits, dtype=np.float32).reshape(-1) for bits in items
        ]
        for row in rows:
            if row.size > self.target_bits:
                raise ValueError(
                    f"item of {row.size} bits exceeds model width "
                    f"{self.target_bits}"
                )
        out = np.empty((len(rows), self.target_bits), dtype=np.float32)
        if self.strategy == "zero":
            out.fill(0.0)
        elif self.strategy == "one":
            out.fill(1.0)
        for i, data in enumerate(rows):
            self.tracker.observe(data)
            q = self.target_bits - data.size
            if q == 0:
                out[i] = data
                continue
            if self.strategy in ("zero", "one"):
                # Padding is pre-filled; only the data needs placing.
                self._place_data(out[i], data, q)
                continue
            n_before, n_after = split_pad_counts(q, self.position)
            before, after = self._make_pad(
                data, n_before, n_after, memory_ones_fraction
            )
            out[i] = assemble(data, before, after, self.position)
        return out

    def _place_data(self, row: np.ndarray, data: np.ndarray, q: int) -> None:
        """Write ``data`` into its :attr:`position` slice of a padded row."""
        if self.position == "begin":
            row[q:] = data
        elif self.position == "end":
            row[: data.size] = data
        elif self.position == "edges":
            n_before, _ = split_pad_counts(q, self.position)
            row[n_before : n_before + data.size] = data
        else:  # middle
            half = data.size // 2
            row[:half] = data[:half]
            row[half + q :] = data[half:]

    def _make_pad(
        self,
        data: np.ndarray,
        n_before: int,
        n_after: int,
        memory_ones_fraction: float | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        total = n_before + n_after
        if self.strategy == "zero":
            pad = np.zeros(total, dtype=np.float32)
        elif self.strategy == "one":
            pad = np.ones(total, dtype=np.float32)
        elif self.strategy == "random":
            pad = self._bernoulli(0.5, total)
        elif self.strategy == "input":
            p = float(data.mean()) if data.size else 0.5
            pad = self._bernoulli(p, total)
        elif self.strategy == "dataset":
            pad = self._bernoulli(self.tracker.ones_fraction, total)
        elif self.strategy == "memory":
            if memory_ones_fraction is None:
                raise ValueError(
                    "memory-based padding needs memory_ones_fraction"
                )
            pad = self._bernoulli(float(memory_ones_fraction), total)
        else:  # learned
            assert self.lstm is not None
            pad = self._learned_pad(data, n_before, n_after)
            return pad
        return pad[:n_before], pad[n_before:]

    def _learned_pad(
        self, data: np.ndarray, n_before: int, n_after: int
    ) -> tuple[np.ndarray, np.ndarray]:
        assert self.lstm is not None
        after = (
            self.lstm.generate(data, n_after).astype(np.float32)
            if n_after
            else np.zeros(0, dtype=np.float32)
        )
        if n_before:
            # Predict bits *preceding* the data by extrapolating the reversed
            # stream (the LSTM trains on reversed windows too).
            reversed_pad = self.lstm.generate(data[::-1], n_before)
            before = reversed_pad[::-1].astype(np.float32)
        else:
            before = np.zeros(0, dtype=np.float32)
        return before, after

    def _bernoulli(self, p: float, n: int) -> np.ndarray:
        p = min(max(p, 0.0), 1.0)
        return (self._rng.random(n) < p).astype(np.float32)
