"""The E2-NVM prediction model: VAE encoder + K-means, with padding.

This wraps :class:`repro.ml.joint.JointVAEKMeans` behind the interface the
storage layer needs — ``fit`` on segment contents, ``predict_cluster`` for a
(possibly shorter-than-segment) value, ``predict_batch`` for many values in
one forward pass — and owns the padding machinery so that training and
prediction see consistently shaped inputs.

Thread-safety: prediction is safe to call concurrently.  The model forward
pass is stateless (see ``MLP.infer``); the padder (whose RNG and dataset
tracker are shared mutable state) is serialised behind a small internal
lock, as are the latency counters.  A batch of ``B`` values counts as ``B``
predictions in the latency statistics.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.config import E2NVMConfig
from repro.core.padding import DatasetDistributionTracker, Padder
from repro.ml.joint import JointVAEKMeans
from repro.ml.lstm import LSTMPredictor
from repro.ml.student import StudentPlacer, featurize_bits
from repro.util.bits import bytes_to_bits, bytes_to_bits_many
from repro.util.rng import rng_from_seed


class EncoderPipeline:
    """Trainable segment-content → cluster-id model.

    Args:
        input_bits: model width ``w`` (bits per memory segment).
        config: hyperparameters (cluster count, VAE shape, padding choice).
        faults: optional :class:`repro.testing.faults.FaultInjector`; when
            set, ``fit`` fires the ``"pipeline.fit"`` site so tests can
            inject slow or failing trainings.
    """

    def __init__(
        self, input_bits: int, config: E2NVMConfig, faults=None
    ) -> None:
        if input_bits <= 0:
            raise ValueError("input_bits must be positive")
        self.input_bits = input_bits
        self.config = config
        self.faults = faults
        self._rng = rng_from_seed(config.seed)
        self.model = JointVAEKMeans(
            input_dim=input_bits,
            n_clusters=config.n_clusters,
            latent_dim=config.latent_dim,
            hidden=config.hidden,
            gamma=config.gamma,
            pretrain_epochs=config.pretrain_epochs,
            joint_epochs=config.joint_epochs,
            batch_size=config.batch_size,
            lr=config.lr,
            kl_weight=config.kl_weight,
            seed=self._rng,
        )
        self.tracker = DatasetDistributionTracker()
        self.lstm: LSTMPredictor | None = None
        if config.padding_strategy == "learned":
            self.lstm = LSTMPredictor(
                window_bits=config.lstm_window_bits,
                chunk_bits=config.lstm_chunk_bits,
                hidden_dim=config.lstm_hidden,
                seed=self._rng,
            )
        self.padder = Padder(
            target_bits=input_bits,
            strategy=config.padding_strategy,
            position=config.padding_position,
            seed=self._rng,
            lstm=self.lstm,
            tracker=self.tracker,
        )
        self.trained = False
        self.prediction_count = 0
        self.prediction_seconds = 0.0
        # Serialises the padder's shared RNG/tracker (and the learned
        # strategy's LSTM caches); the model forward pass itself is
        # stateless and runs lock-free.
        self._pad_lock = threading.Lock()
        # Guards the latency counters against concurrent predictions.
        self._stats_lock = threading.Lock()

    def fit(self, segment_bits: np.ndarray, verbose: bool = False) -> dict:
        """Train on the bit contents of the (free) memory segments."""
        X = np.atleast_2d(np.asarray(segment_bits, dtype=np.float64))
        if X.shape[1] != self.input_bits:
            raise ValueError(
                f"segments have {X.shape[1]} bits, model expects {self.input_bits}"
            )
        if self.faults is not None:
            self.faults.fire("pipeline.fit")
        self.model.fit(X, verbose=verbose)
        if self.lstm is not None:
            self.lstm.fit(
                X,
                epochs=self.config.lstm_epochs,
                verbose=verbose,
            )
        self.trained = True
        return self.model.history

    def predict_cluster(
        self,
        value: bytes | np.ndarray,
        memory_ones_fraction: float | None = None,
    ) -> int:
        """Cluster id for a value, padding it to the model width if short."""
        bits = self._to_bits(value)
        with self._pad_lock:
            padded = self.padder.pad(bits, memory_ones_fraction)
        start = time.perf_counter()
        cluster = self.model.predict_one(padded)
        self._record_predictions(1, time.perf_counter() - start)
        return cluster

    def predict_batch(
        self,
        values: list[bytes | np.ndarray],
        memory_ones_fraction: float | None = None,
    ) -> np.ndarray:
        """Cluster ids for many values via one padded batch forward pass.

        Equivalent to ``[predict_cluster(v) for v in values]`` — padding is
        bit-exact with the sequential path (see ``Padder.pad_batch``) — but
        the encoder runs one stacked matmul instead of ``B`` single-row
        passes, and the batch counts as ``B`` predictions in the latency
        statistics.
        """
        if not values:
            return np.empty(0, dtype=np.int64)
        bit_rows = self._to_bits_many(values)
        with self._pad_lock:
            padded = self.padder.pad_batch(bit_rows, memory_ones_fraction)
        start = time.perf_counter()
        clusters = self.model.predict(padded)
        self._record_predictions(len(values), time.perf_counter() - start)
        return clusters

    def distill_student(self, segment_bits: np.ndarray) -> StudentPlacer:
        """Distill a cheap student placer from this (teacher) pipeline.

        The teacher labels ``segment_bits`` with :meth:`predict_segments`;
        the student — a logistic head over byte histograms
        (:class:`repro.ml.student.StudentPlacer`) — is fitted to reproduce
        those labels.  Called by the engine's (re)train path right after the
        teacher fit, so every installed model ships a matching student.
        """
        if not self.trained:
            raise RuntimeError("cannot distill from an untrained pipeline")
        X = np.atleast_2d(np.asarray(segment_bits, dtype=np.float64))
        labels = self.predict_segments(X)
        student = StudentPlacer(
            self.config.n_clusters,
            segment_size=self.input_bits // 8,
            seed=self.config.seed,
        )
        student.fit(
            featurize_bits(X, self.input_bits // 8),
            labels,
            epochs=self.config.student_epochs,
            lr=self.config.student_lr,
        )
        return student

    def predict_segments(self, segment_bits: np.ndarray) -> np.ndarray:
        """Cluster ids for full-width segment contents (no padding needed)."""
        return self.model.predict(
            np.atleast_2d(np.asarray(segment_bits, dtype=np.float64))
        )

    @property
    def centroids(self) -> np.ndarray:
        """Latent centroids of the trained model."""
        return self.model.centroids

    @property
    def mean_prediction_latency_us(self) -> float:
        """Average prediction latency in microseconds (Figure 10, right)."""
        with self._stats_lock:
            count = self.prediction_count
            seconds = self.prediction_seconds
        if not count:
            return 0.0
        return seconds / count * 1e6

    def _record_predictions(self, count: int, seconds: float) -> None:
        with self._stats_lock:
            self.prediction_count += count
            self.prediction_seconds += seconds

    def _to_bits(self, value: bytes | np.ndarray) -> np.ndarray:
        if isinstance(value, (bytes, bytearray, memoryview)):
            return bytes_to_bits(value)
        return np.asarray(value, dtype=np.float32).reshape(-1)

    def _to_bits_many(
        self, values: list[bytes | np.ndarray]
    ) -> list[np.ndarray]:
        """Bit-expand a batch; byte values share a single ``unpackbits``."""
        if all(
            isinstance(v, (bytes, bytearray, memoryview)) for v in values
        ):
            return bytes_to_bits_many(values)
        return [self._to_bits(v) for v in values]
