"""E2-NVM core: the paper's primary contribution.

- :mod:`repro.core.config` — hyperparameters of the whole stack;
- :mod:`repro.core.pipeline` — the VAE+K-means prediction model;
- :mod:`repro.core.address_pool` — the cluster-to-memory Dynamic Address
  Pool (DAP) of §3.3.1;
- :mod:`repro.core.padding` — the padding strategies of §4;
- :mod:`repro.core.e2nvm` — the placement engine (Algorithms 1 and 2);
- :mod:`repro.core.retraining` — lazy retrain policy (§4.1.4, §5.3);
- :mod:`repro.core.kvstore` — the persistent key/value store of Figure 3.
"""

from repro.core.address_pool import DynamicAddressPool, PoolExhaustedError
from repro.core.batching import BatchLocator, WriteBatcher
from repro.core.config import E2NVMConfig
from repro.core.e2nvm import E2NVM
from repro.core.kvstore import (
    CorruptValueError,
    KVStore,
    RecoveryReport,
    StoreReadOnlyError,
)
from repro.core.padding import Padder, PaddingPosition, PaddingStrategy
from repro.core.pipeline import EncoderPipeline
from repro.core.retraining import RetrainDecision, RetrainPolicy, RetrainStats

__all__ = [
    "E2NVM",
    "E2NVMConfig",
    "KVStore",
    "CorruptValueError",
    "RecoveryReport",
    "DynamicAddressPool",
    "PoolExhaustedError",
    "StoreReadOnlyError",
    "EncoderPipeline",
    "Padder",
    "PaddingStrategy",
    "PaddingPosition",
    "RetrainDecision",
    "RetrainPolicy",
    "RetrainStats",
    "WriteBatcher",
    "BatchLocator",
]
