"""Retrain policy and observability (§4.1.4 and §5.3).

E2-NVM "set[s] a minimum threshold to [the] number of addresses in each
cluster and will trigger the re-training process in the background when one
of the clusters reaches the threshold".  The policy here decides *when*; the
engine performs the retrain in a background worker and swaps models
atomically, so — per §5.3 — "the writing process does not have to be
stopped because the retraining is done in the background lazily".

Three pieces live here:

- :class:`RetrainDecision` — what the policy wants *right now*: nothing,
  fire a background retrain, or defer because the pool is too empty to
  train on (fewer free segments than clusters);
- :class:`RetrainPolicy` — the threshold-plus-cooldown trigger;
- :class:`RetrainStats` — counters the engine exposes so benchmarks and
  tests can observe retrain/recovery behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RetrainDecision(enum.Enum):
    """Outcome of one :meth:`RetrainPolicy.decide` evaluation."""

    #: Nothing to do: threshold not tripped (or cooldown active).
    SKIP = "skip"
    #: Start a retrain now.
    FIRE = "fire"
    #: A retrain is wanted but fewer than ``n_clusters`` segments are free;
    #: retry later, once capacity returns.
    DEFER = "defer"


@dataclass
class RetrainStats:
    """Retrain/recovery counters exposed as ``engine.retrain_stats``.

    Only *re*-trains are counted — the initial ``train()`` that boots the
    engine is not.  ``pool_restores`` counts the times a failed swap rolled
    the Dynamic Address Pool back to its pre-retrain snapshot.
    """

    started: int = 0
    succeeded: int = 0
    failed: int = 0
    deferred: int = 0
    pool_restores: int = 0
    last_duration_s: float = 0.0
    total_duration_s: float = 0.0
    #: Student placers distilled alongside a successful (re)train — the
    #: fast placement layer's tier-2 model is refreshed at each of these.
    student_refreshes: int = 0
    #: Distillation fidelity of the most recent student (fraction of the
    #: training sample where its argmax matched the teacher's label).
    last_student_agreement: float = 0.0
    #: Distillations whose teacher agreement fell below
    #: ``config.student_agreement_warn`` — such a student rarely clears
    #: the ``student_confidence`` serving threshold and sits dormant.
    student_low_agreement_warnings: int = 0

    def as_dict(self) -> dict[str, float]:
        """Flat dict view (benchmark reporting)."""
        return {
            "retrains_started": self.started,
            "retrains_succeeded": self.succeeded,
            "retrains_failed": self.failed,
            "retrains_deferred": self.deferred,
            "pool_restores": self.pool_restores,
            "last_retrain_s": self.last_duration_s,
            "total_retrain_s": self.total_duration_s,
            "student_refreshes": self.student_refreshes,
            "last_student_agreement": self.last_student_agreement,
            "student_low_agreement_warnings": (
                self.student_low_agreement_warnings
            ),
        }


@dataclass
class RetrainPolicy:
    """Threshold-plus-cooldown retrain trigger.

    Attributes:
        min_free_per_cluster: trigger when any cluster's free list shrinks
            below this.
        cooldown_writes: suppress triggers within this many writes of the
            previous retrain (successful or failed — a failure resets the
            cooldown too, giving retries a back-off).
    """

    min_free_per_cluster: int = 1
    cooldown_writes: int = 256
    triggers: int = field(default=0, init=False)
    _writes_since_retrain: int = field(default=0, init=False)

    def record_write(self, count: int = 1) -> None:
        """Count ``count`` writes toward the cooldown window."""
        self._writes_since_retrain += count

    def record_retrain(self) -> None:
        """Reset the cooldown after a retrain attempt (success or failure)."""
        self._writes_since_retrain = 0

    def decide(
        self,
        min_cluster_free: int,
        total_free: int,
        n_clusters: int,
        pending: bool = False,
    ) -> RetrainDecision:
        """Decide what the engine should do about retraining right now.

        Args:
            min_cluster_free: smallest per-cluster free count.
            total_free: total free addresses across clusters.
            n_clusters: cluster count (minimum viable training set size).
            pending: a previously wanted retrain was deferred (not enough
                free segments) or failed; it retries as soon as the
                cooldown allows, regardless of the threshold.

        Returns ``FIRE`` when a retrain should start, ``DEFER`` when one is
        wanted but fewer than ``n_clusters`` segments are free (training
        would be impossible), and ``SKIP`` otherwise.  ``DEFER`` never
        fails a write: the engine keeps placing via the pool's first-fit
        fallback and retries later.
        """
        wanted = pending or min_cluster_free < self.min_free_per_cluster
        if not wanted or self._writes_since_retrain < self.cooldown_writes:
            return RetrainDecision.SKIP
        if total_free < n_clusters:
            return RetrainDecision.DEFER
        if not pending:
            # Retries of a deferred/failed retrain are not new triggers.
            self.triggers += 1
        return RetrainDecision.FIRE

    def should_retrain(self, min_cluster_free: int, total_free: int,
                       n_clusters: int) -> bool:
        """Back-compat boolean view of :meth:`decide` (no pending retry)."""
        decision = self.decide(min_cluster_free, total_free, n_clusters)
        return decision is RetrainDecision.FIRE
