"""Retrain policy (§4.1.4 and §5.3).

E2-NVM "set[s] a minimum threshold to [the] number of addresses in each
cluster and will trigger the re-training process in the background when one
of the clusters reaches the threshold".  The policy here decides *when*; the
engine performs the retrain and swaps models atomically (our simulation runs
the retrain synchronously at the trigger point — the paper stresses that
writes need not stop, which changes the timeline but not placement quality).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RetrainPolicy:
    """Threshold-plus-cooldown retrain trigger.

    Attributes:
        min_free_per_cluster: trigger when any cluster's free list shrinks
            below this.
        cooldown_writes: suppress triggers within this many writes of the
            previous retrain.
    """

    min_free_per_cluster: int = 1
    cooldown_writes: int = 256
    triggers: int = field(default=0, init=False)
    _writes_since_retrain: int = field(default=0, init=False)

    def record_write(self) -> None:
        """Count one write toward the cooldown window."""
        self._writes_since_retrain += 1

    def record_retrain(self) -> None:
        """Reset the cooldown after a (manual or automatic) retrain."""
        self._writes_since_retrain = 0

    def should_retrain(self, min_cluster_free: int, total_free: int,
                       n_clusters: int) -> bool:
        """Decide whether a retrain should fire now.

        Requires the threshold to be tripped, the cooldown expired, and
        enough free segments left to train on (at least one per cluster).
        """
        if min_cluster_free >= self.min_free_per_cluster:
            return False
        if self._writes_since_retrain < self.cooldown_writes:
            return False
        if total_free < n_clusters:
            return False
        self.triggers += 1
        return True
