"""Two-tier fast placement in front of the VAE+K-means teacher.

The encoder forward pass dominates the hot write path (~hundreds of µs per
prediction), yet skewed traffic (YCSB / Zipfian) re-writes similar values
constantly and the placer only *needs* the full model when content is
novel.  Two cheap tiers sit in front of :class:`~repro.core.pipeline
.EncoderPipeline`:

1. a **content-fingerprint → cluster memo cache** — a bounded LRU keyed on
   a cheap stable hash of the value bytes, consulted before any matmul;
2. a **distilled student placer** (:class:`repro.ml.student.StudentPlacer`)
   — a logistic head over raw byte histograms trained from the teacher at
   every (re)train, serving cache-miss predictions whose softmax confidence
   clears a threshold and deferring to the teacher otherwise.

Both tiers are **epoch-scoped**: the engine bumps ``_model_epoch`` under
its swap lock whenever a new model/pool pair is installed, and
:meth:`FastPlacementLayer.install` (called at the same point) wholesale
invalidates the cache and replaces the student.  A lookup or insert carrying
a stale epoch is refused, so a mid-flight model swap can never place with a
stale cluster map — the engine's epoch re-validation then retries against
the new model.

Correctness note: both tiers only ever short-circuit the *cluster
prediction*.  The address claim still goes through the Dynamic Address
Pool, whose free lists never contain quarantined (retired/retiring/spare)
addresses — so cached and student-served placements respect health-manager
quarantine and wear-out retirement exactly like teacher-served ones.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict

import numpy as np

from repro.ml.student import StudentPlacer, featurize_values


def fingerprint(value) -> tuple[int, int, int] | None:
    """Cheap stable content fingerprint of a bytes-like value.

    CRC32 and Adler32 are independent single-pass checksums; combined with
    the length they form a ~64-bit key whose collision odds are negligible
    at cache scale.  Non-bytes inputs (raw bit arrays) are not fingerprinted
    — they bypass the fast tiers and go straight to the teacher.
    """
    if not isinstance(value, (bytes, bytearray, memoryview)):
        return None
    buf = bytes(value)
    return (len(buf), zlib.crc32(buf), zlib.adler32(buf))


class PlacementCache:
    """Bounded LRU mapping content fingerprints to cluster ids.

    All entries belong to one model epoch; :meth:`invalidate` clears the
    cache wholesale when a new model is installed.  Telemetry counters
    (hits/misses/evictions/invalidations) are cumulative across epochs.
    Callers serialise access (the owning :class:`FastPlacementLayer` holds
    its lock around every call).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key) -> int | None:
        """Cluster id for ``key``, refreshing its LRU position; ``None``
        (a counted miss) when absent."""
        cluster = self._entries.get(key)
        if cluster is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return cluster

    def insert(self, key, cluster: int) -> None:
        """Memoise ``key`` → ``cluster``, evicting the LRU entry at capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = int(cluster)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = int(cluster)

    def invalidate(self) -> None:
        """Drop every entry (model swap: all memoised clusters are stale)."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1


class FastPlacementLayer:
    """Cache tier + student tier + teacher fallback, with epoch scoping.

    Args:
        cache_size: memo-cache capacity; 0 disables the cache tier.
        student_confidence: minimum softmax confidence for the student tier
            to serve a prediction; misses below it defer to the teacher.

    The layer is thread-safe: a single lock guards the cache and the
    installed (student, epoch) pair, held only for dictionary operations —
    never across a student or teacher forward pass.
    """

    def __init__(
        self, cache_size: int = 0, student_confidence: float = 0.9
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if not 0.0 <= student_confidence <= 1.0:
            raise ValueError("student_confidence must be in [0, 1]")
        self.cache = PlacementCache(cache_size) if cache_size else None
        self.student_confidence = student_confidence
        self.student: StudentPlacer | None = None
        self._epoch: int | None = None
        self._lock = threading.Lock()
        # Telemetry: how many predictions each tier served.
        self.student_served = 0
        self.student_deferred = 0
        self.teacher_served = 0

    # ------------------------------------------------------------- lifecycle

    def install(self, epoch: int, student: StudentPlacer | None) -> None:
        """Adopt a new model epoch: wholesale-invalidate the memo cache and
        replace the student.  The engine calls this under its swap lock at
        the same point it bumps ``_model_epoch``, so entries from the old
        model can never serve the new pool."""
        with self._lock:
            self._epoch = epoch
            self.student = student
            if self.cache is not None:
                self.cache.invalidate()

    # ------------------------------------------------------------ prediction

    def predict(
        self,
        values,
        pipeline,
        epoch: int,
        memory_ones_fraction: float | None = None,
    ) -> np.ndarray:
        """Cluster ids for ``values``, consulting cache → student → teacher.

        ``epoch`` is the model epoch the caller captured with ``pipeline``;
        cache lookups and inserts are refused when it disagrees with the
        installed epoch (a swap landed), in which case everything falls
        through to the teacher and the caller's own epoch re-validation
        retries the placement.
        """
        n = len(values)
        clusters = np.empty(n, dtype=np.int64)
        pending = list(range(n))
        keys = [fingerprint(v) for v in values]

        if self.cache is not None:
            with self._lock:
                if self._epoch == epoch:
                    still = []
                    for i in pending:
                        hit = (
                            self.cache.lookup(keys[i])
                            if keys[i] is not None
                            else None
                        )
                        if hit is None:
                            still.append(i)
                        else:
                            clusters[i] = hit
                    pending = still

        if pending:
            pending = self._predict_student(values, keys, clusters, pending, epoch)

        if pending:
            teacher = pipeline.predict_batch(
                [values[i] for i in pending],
                memory_ones_fraction=memory_ones_fraction,
            )
            for i, cluster in zip(pending, teacher):
                clusters[i] = cluster
            self._memoise(keys, clusters, pending, epoch)
            with self._lock:
                self.teacher_served += len(pending)
        return clusters

    def _predict_student(
        self, values, keys, clusters: np.ndarray, pending: list[int], epoch: int
    ) -> list[int]:
        """Serve confident student predictions for ``pending``; returns the
        indices the student deferred (or all of them when no student of the
        right epoch is installed, or the value is not bytes-like)."""
        with self._lock:
            student = self.student if self._epoch == epoch else None
        if student is None or not student.trained:
            return pending
        eligible = [i for i in pending if keys[i] is not None]
        if not eligible:
            return pending
        features = featurize_values(
            [values[i] for i in eligible], student.segment_size
        )
        labels, confidence = student.predict(features)
        served: list[int] = []
        for i, label, conf in zip(eligible, labels, confidence):
            if conf >= self.student_confidence:
                clusters[i] = label
                served.append(i)
        if served:
            self._memoise(keys, clusters, served, epoch)
        with self._lock:
            self.student_served += len(served)
            self.student_deferred += len(eligible) - len(served)
        if not served:
            return pending
        served_set = set(served)
        return [i for i in pending if i not in served_set]

    def _memoise(
        self, keys, clusters: np.ndarray, indices: list[int], epoch: int
    ) -> None:
        if self.cache is None:
            return
        with self._lock:
            # A swap that landed mid-prediction makes these labels stale:
            # drop them instead of poisoning the fresh epoch's cache.
            if self._epoch != epoch:
                return
            for i in indices:
                if keys[i] is not None:
                    self.cache.insert(keys[i], int(clusters[i]))

    # ------------------------------------------------------------- telemetry

    def stats(self) -> dict:
        """Flat telemetry snapshot (benchmark/monitoring reporting)."""
        # NB: ``is None`` checks, never truthiness — an empty cache has
        # ``len() == 0`` and would read as absent right after an
        # invalidation, zeroing every cache counter in the report.
        cache = self.cache
        with self._lock:
            out = {
                "cache_hits": cache.hits if cache is not None else 0,
                "cache_misses": cache.misses if cache is not None else 0,
                "cache_evictions": (
                    cache.evictions if cache is not None else 0
                ),
                "cache_invalidations": (
                    cache.invalidations if cache is not None else 0
                ),
                "cache_entries": len(cache) if cache is not None else 0,
                "cache_capacity": cache.capacity if cache is not None else 0,
                "student_served": self.student_served,
                "student_deferred": self.student_deferred,
                "teacher_served": self.teacher_served,
                "student_trained": bool(
                    self.student is not None and self.student.trained
                ),
                "student_train_agreement": (
                    self.student.train_agreement
                    if self.student is not None
                    else 0.0
                ),
            }
        return out
