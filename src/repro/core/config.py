"""Configuration for the E2-NVM stack.

One dataclass gathers every tunable the paper discusses: the cluster count K
(Figure 8), the VAE architecture (§3.1), the joint-training weight (§3.2),
the padding strategy and position (§4.1), and the retrain trigger threshold
(§4.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class E2NVMConfig:
    """Hyperparameters of the E2-NVM placement engine.

    Attributes:
        n_clusters: K, the number of content clusters.
        latent_dim: VAE latent width (paper example: 10).
        hidden: encoder trunk widths; the decoder mirrors them.
        gamma: weight of the K-means loss during joint fine-tuning.
        kl_weight: weight of the KL term in the VAE loss.
        pretrain_epochs: VAE-only epochs before joint training.
        joint_epochs: joint VAE+K-means fine-tuning epochs.
        batch_size: SGD mini-batch size.
        lr: Adam learning rate.
        train_sample_limit: cap on free segments sampled for (re)training.
        padding_strategy: one of ``zero``, ``one``, ``random``, ``input``,
            ``dataset``, ``memory``, ``learned``.
        padding_position: one of ``begin``, ``end``, ``middle``, ``edges``.
        retrain_threshold: minimum free addresses per cluster before a
            retrain is triggered (§4.1.4).
        auto_retrain: let the engine retrain itself when the threshold
            trips; off by default so experiments control retrain timing.
        retrain_cooldown_writes: minimum writes between automatic retrains,
            preventing thrash when the pool is nearly full.  A failed
            retrain also resets the cooldown, so retries back off.
        ones_fraction_refresh_writes: refresh the memory ones-fraction used
            by ``memory`` padding from a sample of free segments every this
            many writes, so padding tracks content drift (0 disables).
        ones_fraction_sample_segments: free segments sampled per refresh.
        lstm_window_bits / lstm_chunk_bits / lstm_hidden / lstm_epochs:
            learned-padding LSTM shape and schedule (§4.1.3; paper uses a
            64-bit window predicting 8 bits per step).
        fastpath_cache_size: capacity of the content-fingerprint → cluster
            memo cache consulted before any model forward pass (0 disables
            it).  The cache is invalidated wholesale on every model swap,
            so it never changes *which* cluster a value lands in — only how
            fast repeated content is placed.
        student_enabled: distill a logistic student placer from the
            VAE+K-means teacher at every (re)train and serve cache-miss
            predictions from it when its confidence clears
            ``student_confidence``.  Off by default: the student may
            disagree with the teacher on low-margin content, which
            experiments comparing exact placements should not see.
        student_confidence: minimum softmax confidence for the student to
            serve a prediction; below it the teacher is consulted.  This
            knob *interacts* with distillation fidelity: a student whose
            train-time teacher agreement is low rarely produces confident
            softmax outputs, so with the default 0.9 threshold it defers
            nearly everything to the teacher — ``student_served: 0`` in
            the placement telemetry is the designed outcome of a
            low-agreement distillation, not a wiring failure.  Lowering
            ``student_confidence`` trades teacher forward passes for
            placements the teacher may disagree with.
        student_agreement_warn: distillation-fidelity floor.  A (re)train
            whose student's teacher agreement lands below this emits a
            ``UserWarning``, bumps ``retrain_stats
            .student_low_agreement_warnings`` and flags
            ``placement_telemetry()["student_low_agreement"]`` — making a
            student that will sit dormant behind ``student_confidence``
            visible instead of failing silent.
        student_epochs / student_lr: distillation schedule of the student
            head (full-batch softmax regression).
        place_epoch_retries: lock-free placement retries after a model swap
            lands mid-prediction before the engine predicts *under* the
            swap lock — bounding writer latency against a hostile retrain
            cadence instead of starving.
        seed: seed for every stochastic component.
    """

    n_clusters: int = 10
    latent_dim: int = 10
    hidden: tuple[int, ...] = (128, 64)
    gamma: float = 0.1
    kl_weight: float = 1.0
    pretrain_epochs: int = 8
    joint_epochs: int = 4
    batch_size: int = 64
    lr: float = 1e-3
    train_sample_limit: int = 4096
    padding_strategy: str = "zero"
    padding_position: str = "end"
    retrain_threshold: int = 1
    auto_retrain: bool = False
    retrain_cooldown_writes: int = 256
    ones_fraction_refresh_writes: int = 1024
    ones_fraction_sample_segments: int = 64
    lstm_window_bits: int = 64
    lstm_chunk_bits: int = 8
    lstm_hidden: int = 32
    lstm_epochs: int = 4
    fastpath_cache_size: int = 4096
    student_enabled: bool = False
    student_confidence: float = 0.9
    student_agreement_warn: float = 0.8
    student_epochs: int = 120
    student_lr: float = 0.05
    place_epoch_retries: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if self.retrain_threshold < 0:
            raise ValueError("retrain_threshold must be non-negative")
        if self.ones_fraction_refresh_writes < 0:
            raise ValueError("ones_fraction_refresh_writes must be >= 0")
        if self.ones_fraction_sample_segments <= 0:
            raise ValueError("ones_fraction_sample_segments must be positive")
        if self.fastpath_cache_size < 0:
            raise ValueError("fastpath_cache_size must be >= 0")
        if not 0.0 <= self.student_confidence <= 1.0:
            raise ValueError("student_confidence must be in [0, 1]")
        if not 0.0 <= self.student_agreement_warn <= 1.0:
            raise ValueError("student_agreement_warn must be in [0, 1]")
        if self.student_epochs <= 0:
            raise ValueError("student_epochs must be positive")
        if self.place_epoch_retries < 1:
            raise ValueError("place_epoch_retries must be >= 1")
        self.hidden = tuple(self.hidden)
        if not self.hidden:
            raise ValueError("hidden must name at least one layer width")


#: Small-model settings for unit tests and quick examples.
FAST_TEST_CONFIG = E2NVMConfig(
    n_clusters=3,
    latent_dim=4,
    hidden=(32,),
    pretrain_epochs=3,
    joint_epochs=2,
    batch_size=32,
    train_sample_limit=512,
    lstm_epochs=2,
    lstm_hidden=12,
)


def fast_test_config(**overrides) -> E2NVMConfig:
    """Return a fresh small-model config, optionally overriding fields."""
    base = {
        field_name: getattr(FAST_TEST_CONFIG, field_name)
        for field_name in FAST_TEST_CONFIG.__dataclass_fields__
    }
    base.update(overrides)
    return E2NVMConfig(**base)
