"""Write batching for small values (§4.1.4).

"To overcome the overhead incurred due to small key-value pairs, batching
can be applied so that small writes are grouped together to form larger
writes to memory segments.  This way, E2-NVM needs to map the free memory
locations based on the batch size rather than the key-value pair size."

``WriteBatcher`` accumulates small values into a segment-sized buffer; when
the buffer fills (or ``flush`` is called), the whole batch is placed by the
engine as one segment write.  ``put`` returns a :class:`PendingValue`
handle whose ``locator`` resolves to (batch address, offset, length) once
its batch is flushed.  Deleting a value tombstones it inside its batch; a
batch whose live bytes drop to zero is released back to the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.e2nvm import E2NVM


@dataclass(frozen=True)
class BatchLocator:
    """Where a batched value lives: its batch's segment and slice."""

    batch_addr: int
    offset: int
    length: int


class PendingValue:
    """Handle for a buffered value; resolves to a locator at flush time."""

    def __init__(self, batcher: "WriteBatcher", offset: int, length: int) -> None:
        self._batcher = batcher
        self._offset = offset
        self._length = length
        self._locator: BatchLocator | None = None

    def _resolve(self, batch_addr: int) -> None:
        self._locator = BatchLocator(batch_addr, self._offset, self._length)

    @property
    def resolved(self) -> bool:
        """Whether the value's batch has been flushed."""
        return self._locator is not None

    @property
    def locator(self) -> BatchLocator:
        """The value's final location (flushes the open batch if needed)."""
        if self._locator is None:
            self._batcher.flush()
        assert self._locator is not None
        return self._locator


class WriteBatcher:
    """Groups small values into engine-segment-sized batch writes.

    Args:
        engine: a trained :class:`E2NVM` engine providing placement.
        pad_byte: filler for the unused tail of a flushed batch buffer.
    """

    def __init__(self, engine: E2NVM, pad_byte: int = 0) -> None:
        if not 0 <= pad_byte <= 255:
            raise ValueError("pad_byte must be a byte value")
        self.engine = engine
        self.segment_size = engine.segment_size
        self.pad_byte = pad_byte
        self._buffer = bytearray()
        self._open_handles: list[PendingValue] = []
        self._live_bytes: dict[int, int] = {}  # batch addr -> live payload
        self._dead: dict[int, set[int]] = {}  # batch addr -> deleted offsets

    @property
    def open_bytes(self) -> int:
        """Bytes buffered and not yet flushed."""
        return len(self._buffer)

    def put(self, value: bytes) -> PendingValue:
        """Buffer a value; returns a handle that resolves after flush.

        Values longer than a segment are rejected — write those directly
        through the engine.
        """
        if not isinstance(value, bytes) or not value:
            raise TypeError("values must be non-empty bytes")
        if len(value) > self.segment_size:
            raise ValueError(
                f"value of {len(value)} bytes exceeds the "
                f"{self.segment_size}-byte batch size"
            )
        if len(self._buffer) + len(value) > self.segment_size:
            self.flush()
        handle = PendingValue(self, len(self._buffer), len(value))
        self._buffer.extend(value)
        self._open_handles.append(handle)
        return handle

    def put_many(self, values: list[bytes]) -> list[PendingValue]:
        """Buffer many values; full batches are written in one engine call.

        Behaves like sequential :meth:`put` calls, except every batch that
        fills up along the way is flushed through ``engine.write_many`` —
        one forward pass and one vectorised device write for all of them.
        On a write failure no batcher state changes: the engine has already
        un-claimed the batch addresses and none of the values (or handles)
        are committed.
        """
        values = list(values)
        for value in values:
            if not isinstance(value, bytes) or not value:
                raise TypeError("values must be non-empty bytes")
            if len(value) > self.segment_size:
                raise ValueError(
                    f"value of {len(value)} bytes exceeds the "
                    f"{self.segment_size}-byte batch size"
                )
        handles: list[PendingValue] = []
        payloads: list[bytes] = []
        payload_handles: list[list[PendingValue]] = []
        buffer = bytearray(self._buffer)
        open_handles = list(self._open_handles)
        for value in values:
            if len(buffer) + len(value) > self.segment_size:
                payloads.append(
                    bytes(buffer).ljust(self.segment_size, bytes([self.pad_byte]))
                )
                payload_handles.append(open_handles)
                buffer = bytearray()
                open_handles = []
            handle = PendingValue(self, len(buffer), len(value))
            buffer.extend(value)
            open_handles.append(handle)
            handles.append(handle)
        if payloads:
            results = self.engine.write_many(payloads)
            for (addr, _), batch in zip(results, payload_handles):
                self._live_bytes[addr] = sum(h._length for h in batch)
                for handle in batch:
                    handle._resolve(addr)
        self._buffer = buffer
        self._open_handles = open_handles
        return handles

    def flush(self) -> int | None:
        """Write the open batch through the engine; returns its address."""
        if not self._buffer:
            return None
        payload = bytes(self._buffer).ljust(
            self.segment_size, bytes([self.pad_byte])
        )
        addr, _ = self.engine.write(payload)
        self._live_bytes[addr] = sum(h._length for h in self._open_handles)
        for handle in self._open_handles:
            handle._resolve(addr)
        self._buffer = bytearray()
        self._open_handles = []
        return addr

    def read(self, locator: BatchLocator) -> bytes:
        """Read one batched value back through the engine's controller."""
        return self.engine.controller.read(
            locator.batch_addr + locator.offset, locator.length
        )

    def delete(self, locator: BatchLocator) -> None:
        """Tombstone a value; releases the batch when it empties.

        Deleting the same locator twice raises ``KeyError`` — a repeated
        delete must not double-decrement the batch's live-byte count (which
        would prematurely release a batch still holding live values).
        """
        if locator.batch_addr not in self._live_bytes:
            raise KeyError(f"unknown batch {locator.batch_addr}")
        dead = self._dead.setdefault(locator.batch_addr, set())
        if locator.offset in dead:
            raise KeyError(
                f"value at batch {locator.batch_addr} offset "
                f"{locator.offset} is already deleted"
            )
        dead.add(locator.offset)
        self._live_bytes[locator.batch_addr] -= locator.length
        if self._live_bytes[locator.batch_addr] <= 0:
            del self._live_bytes[locator.batch_addr]
            del self._dead[locator.batch_addr]
            self.engine.release(locator.batch_addr)

    def live_batches(self) -> int:
        """Flushed batches still holding live values."""
        return len(self._live_bytes)
