"""The persistent key/value store of Figure 3.

Four components cooperate exactly as the paper's diagram shows:

- **E2-NVM** (the placement engine) predicts clusters and serves addresses;
- the **Dynamic Address Pool** lives inside the engine;
- the **data index** — a DRAM-resident red-black tree — maps keys to the NVM
  address and length of their value;
- **NVM storage** holds the values, one per fixed-size segment.

PUT/UPDATE follow Algorithm 1 (new writes go to a freshly predicted similar
segment; the update's old segment is recycled).  DELETE follows Algorithm 2
(the validity flag is reset and the address re-clustered into the DAP).  GET
and SCAN go through the index only.
"""

from __future__ import annotations

from repro.core.e2nvm import E2NVM
from repro.index.rbtree import RedBlackTree


class KVStore:
    """Persistent KV store with memory-aware write placement.

    Args:
        engine: a trained (or to-be-trained) :class:`E2NVM` engine.
        index: the key → location index; defaults to a red-black tree, as in
            Figure 3 ("RB-Tree.put(D, A)").
    """

    def __init__(self, engine: E2NVM, index=None) -> None:
        self.engine = engine
        self.index = index if index is not None else RedBlackTree()
        # Per-address validity flags (the paper resets a flag bit on DELETE;
        # we keep the flags DRAM-resident as segment layout has no header).
        self._valid: dict[int, bool] = {}

    def train(self, verbose: bool = False) -> dict:
        """Train the placement engine on the current memory contents."""
        return self.engine.train(verbose=verbose)

    def put(self, key: bytes, value: bytes) -> int:
        """Insert or update; returns the NVM address chosen for the value."""
        if not isinstance(key, bytes):
            raise TypeError("keys must be bytes")
        if not isinstance(value, bytes) or not value:
            raise TypeError("values must be non-empty bytes")
        old = self.index.get(key)
        addr, _ = self.engine.write(value)
        self._valid[addr] = True
        self.index.put(key, (addr, len(value)))
        if old is not None:
            # UPDATE: the previous location is recycled (Algorithm 2's path).
            old_addr, _ = old
            self._valid[old_addr] = False
            self.engine.release(old_addr)
        return addr

    def get(self, key: bytes) -> bytes | None:
        """Value for ``key``, or ``None`` when absent."""
        entry = self.index.get(key)
        if entry is None:
            return None
        addr, length = entry
        return self.engine.controller.read(addr, length)

    def delete(self, key: bytes) -> bool:
        """Algorithm 2: unlink, reset the flag, recycle the address."""
        entry = self.index.get(key)
        if entry is None:
            return False
        addr, _ = entry
        self.index.delete(key)
        self._valid[addr] = False
        self.engine.release(addr)
        return True

    def scan(self, start_key: bytes, end_key: bytes) -> list[tuple[bytes, bytes]]:
        """All (key, value) pairs with start_key <= key <= end_key, in order."""
        out = []
        for key, (addr, length) in self.index.range(start_key, end_key):
            out.append((key, self.engine.controller.read(addr, length)))
        return out

    def items(self):
        """Yield every (key, value) pair in key order."""
        for key, (addr, length) in self.index.items():
            yield key, self.engine.controller.read(addr, length)

    def keys(self):
        """Yield every key in order."""
        yield from self.index.keys()

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, key: bytes) -> bool:
        return self.index.get(key) is not None
