"""The persistent key/value store of Figure 3.

Four components cooperate exactly as the paper's diagram shows:

- **E2-NVM** (the placement engine) predicts clusters and serves addresses;
- the **Dynamic Address Pool** lives inside the engine;
- the **data index** — a DRAM-resident red-black tree — maps keys to the NVM
  address and length of their value;
- **NVM storage** holds the values, one per fixed-size segment.

PUT/UPDATE follow Algorithm 1 (new writes go to a freshly predicted similar
segment; the update's old segment is recycled).  DELETE follows Algorithm 2
(the validity flag is reset and the address re-clustered into the DAP).  GET
and SCAN go through the index only.

The store runs in one of two modes:

- **volatile** (``KVStore(engine)``): the historical simulator mode — index
  and validity flags are DRAM-only and die with the process;
- **durable** (:meth:`KVStore.create` / :meth:`KVStore.open` over a
  :class:`~repro.pmem.pool.PersistentPool`): every mutation routes through
  an undo-log transaction that updates the value segment *and* its
  :class:`~repro.pmem.catalog.PersistentCatalog` record failure-atomically,
  the paper's Algorithm 2 validity flag becomes a persisted bit, and
  :meth:`KVStore.open` rebuilds the index, validity map, allocator state
  and DAP from the media alone after a crash.  See the README's
  "Durability contract" section.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.core.address_pool import PoolExhaustedError
from repro.core.config import E2NVMConfig
from repro.core.e2nvm import E2NVM
from repro.index.rbtree import RedBlackTree
from repro.nvm.health import SegmentRetiredError
from repro.pmem.catalog import DEFAULT_KEY_CAPACITY, PersistentCatalog
from repro.pmem.pool import PersistentPool
from repro.testing.faults import CrashError


class StoreReadOnlyError(RuntimeError):
    """Wear-out exhausted every placement option (free capacity and
    reserved spares alike): the store now serves reads only.  Every value
    written before the transition stays readable — retirement never loses
    committed data — but PUT/DELETE raise this error from here on."""


class CorruptValueError(RuntimeError):
    """A value failed its CRC32 check and could not be repaired.

    The read path *never* returns bytes that disagree with the checksum
    persisted alongside the value: on mismatch it first re-reads through
    the ECP-corrected path, then (when a scrubber is attached) refresh-
    writes the segment to heal resistance drift and re-reads — and only
    when every repair avenue fails does this error surface, instead of
    silently returning garbage."""


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`KVStore.open` found and rebuilt from the media."""

    rolled_back_records: int
    live_objects: int
    free_objects: int
    duplicate_keys_dropped: int
    max_epoch: int
    #: Live values whose bytes disagreed with their catalog CRC32 during
    #: the recovery scan (drift or undetected media damage); the values
    #: stay in place — GET repairs them on demand or raises
    #: :class:`CorruptValueError`, and an attached scrubber heals them.
    crc_mismatches: int = 0
    #: Drained retiring segments the recovery scan reclaimed into the
    #: spares pool (the crash-safe replay of ``HealthManager.reclaim``:
    #: a retiring segment with no live catalog record was fully
    #: evacuated before the crash).
    reclaimed_segments: int = 0


class KVStore:
    """Persistent KV store with memory-aware write placement.

    Args:
        engine: a trained (or to-be-trained) :class:`E2NVM` engine.
        index: the key → location index; defaults to a red-black tree, as in
            Figure 3 ("RB-Tree.put(D, A)").
        pool: optional :class:`PersistentPool` enabling the durable,
            transactional write path; prefer :meth:`create`/:meth:`open`
            over passing it directly.
        catalog: the pool's :class:`PersistentCatalog`; required with
            ``pool``.
    """

    def __init__(
        self,
        engine: E2NVM,
        index=None,
        *,
        pool: PersistentPool | None = None,
        catalog: PersistentCatalog | None = None,
    ) -> None:
        if (pool is None) != (catalog is None):
            raise ValueError("durable mode needs both pool and catalog")
        self.engine = engine
        self.index = index if index is not None else RedBlackTree()
        self.pool = pool
        self.catalog = catalog
        # Per-address validity flags.  In durable mode this mirrors the
        # catalog's persisted flag bits; in volatile mode (no segment
        # headers) it is the only copy.
        self._valid: dict[int, bool] = {}
        # Reverse map address → key for live values, used by wear-out
        # relocation to find which key a retiring segment belongs to.
        self._by_addr: dict[int, bytes] = {}
        self._next_epoch = 1
        # CRC32 of every live value, keyed by address — the DRAM mirror of
        # the catalog's persisted checksum (and, in volatile mode, the only
        # copy).  Every read is verified against it; see _read_value().
        self._crc_by_addr: dict[int, int] = {}
        # Degraded mode: set when wear-out retirement exhausts the last
        # placement option; see :class:`StoreReadOnlyError`.
        self._read_only = False
        self._relocating = False
        self.recovery: RecoveryReport | None = None
        # Optional background scrubber (repro.nvm.scrubber.Scrubber); when
        # attached, the read path can refresh-write a drifted segment to
        # repair a CRC mismatch instead of raising CorruptValueError.
        self.scrubber = None
        # Optional background compactor (repro.nvm.compactor.Compactor):
        # drains the relocation queue and runs static wear-leveling swaps
        # off the PUT path.
        self.compactor = None
        self.corrupt_reads_detected = 0
        self.read_repairs = 0
        self.corrupt_relocations_skipped = 0
        # Write-temperature tracking for static wear leveling: a per-address
        # "last user write" sequence stamp.  Migrations forward the stamp
        # unchanged (moving a value does not make it hot), so coldness =
        # _write_seq - stamp measures genuine dormancy.  DRAM-only; recovery
        # re-seeds it from catalog epochs (an equivalent monotone clock).
        self._heat_by_addr: dict[int, int] = {}
        self._write_seq = 0

    # ------------------------------------------------------- durable set-up

    @classmethod
    def create(
        cls,
        pool: PersistentPool,
        *,
        config: E2NVMConfig | None = None,
        faults=None,
        key_capacity: int = DEFAULT_KEY_CAPACITY,
        pipeline=None,
        index=None,
    ) -> "KVStore":
        """Format fresh media and build a durable store over ``pool``.

        Initialises the undo log and catalog, then trains the placement
        engine on the (empty) object segments — or adopts an already
        trained ``pipeline`` when given, e.g. a deserialised model or a
        test harness's shared one.
        """
        catalog = PersistentCatalog(pool, key_capacity)
        cls._check_log_capacity(pool, catalog)
        pool.format()
        catalog.format()
        engine = E2NVM(
            pool.controller,
            config,
            faults,
            reserved_segments=pool.object_start_segment,
        )
        if pipeline is not None:
            engine.adopt(pipeline, engine.free_addresses())
        else:
            engine.train()
        return cls(engine, index=index, pool=pool, catalog=catalog)

    @classmethod
    def open(
        cls,
        pool: PersistentPool,
        *,
        config: E2NVMConfig | None = None,
        faults=None,
        key_capacity: int = DEFAULT_KEY_CAPACITY,
        pipeline=None,
        index=None,
    ) -> "KVStore":
        """Re-open an existing store from the media alone (full recovery).

        1. Runs the pool's undo-log rollback, repairing any transaction a
           crash left half-applied (idempotent — a crash *during* recovery
           just recovers again).
        2. Scans the persistent catalog: every valid record rebuilds one
           index entry, validity flag and allocator registration.
        3. Re-encodes the free segments through the trained pipeline to
           reconstruct the DAP cluster pools — the same re-cluster path
           DELETE takes.  Pass ``pipeline`` (e.g. a deserialised model) to
           skip retraining; with ``None`` a fresh model is trained on the
           free segments.

        No DRAM state of the previous incarnation is consulted; the report
        of what was rebuilt lands on :attr:`recovery`.
        """
        rolled_back = pool.recover()
        catalog = PersistentCatalog(pool, key_capacity)
        cls._check_log_capacity(pool, catalog)

        # Catalog scan: newest epoch wins should a duplicate key ever
        # surface (it cannot under atomic PUTs; this is defensive).
        live: dict[bytes, object] = {}
        dropped = 0
        max_epoch = 0
        for entry in catalog.scan():
            max_epoch = max(max_epoch, entry.epoch)
            other = live.get(entry.key)
            if other is None or entry.epoch > other.epoch:
                if other is not None:
                    dropped += 1
                    catalog.pool.write(
                        catalog.record_address(other.slot), b"\x00"
                    )
                live[entry.key] = entry
            else:
                dropped += 1
                catalog.pool.write(catalog.record_address(entry.slot), b"\x00")

        live_addrs = {
            entry.key: pool.object_address(entry.slot)
            for entry in live.values()
        }
        taken = set(live_addrs.values())

        # Wear-out state lives on the device object (simulated media
        # metadata): retired/retiring segments and reserved spares survive
        # the crash and must be excluded from the rebuilt free pool.
        health_state = pool.controller.device.health
        unplaceable: set[int] = set()
        spare_addrs: set[int] = set()
        reclaimed_on_open = 0
        if health_state is not None:
            seg_size = pool.segment_size
            # Crash-safe reclamation replay: a retiring segment with no
            # live catalog record was fully drained before the crash.
            # Fold it into the spares pool instead of stranding it — the
            # ``compact.reclaim`` site fires *before* the health-state
            # mutation, so recovery always redoes an interrupted reclaim.
            for seg in sorted(health_state.retiring):
                if seg * seg_size in taken:
                    continue
                health_state.retiring.discard(seg)
                health_state.reclaimed.add(seg)
                health_state.spares.append(seg * seg_size)
                reclaimed_on_open += 1
            unplaceable = {
                s * seg_size
                for s in health_state.retired | health_state.retiring
            }
            spare_addrs = set(health_state.spares)

        free_addrs = [
            pool.object_address(i)
            for i in range(pool.capacity_objects)
            if pool.object_address(i) not in taken
            and pool.object_address(i) not in unplaceable
            and pool.object_address(i) not in spare_addrs
        ]

        engine = E2NVM(
            pool.controller,
            config,
            faults,
            reserved_segments=pool.object_start_segment,
        )
        if pipeline is not None:
            engine.adopt(pipeline, free_addrs)
        else:
            engine.train(addresses=free_addrs)

        store = cls(engine, index=index, pool=pool, catalog=catalog)
        crc_mismatches = 0
        for key, entry in live.items():
            addr = live_addrs[key]
            engine.mark_allocated(addr)
            pool.mark_allocated(addr)
            store.index.put(key, (addr, entry.value_len))
            store._valid[addr] = True
            store._by_addr[addr] = key
            store._crc_by_addr[addr] = entry.crc
            # Approximate the write-temperature stamp from the persisted
            # epoch: both are monotone per-PUT clocks, so relative
            # coldness survives the crash even though the DRAM heat map
            # does not.  (Migration bumps the epoch, so a value moved by
            # wear leveling looks warmer after recovery than before — a
            # conservative error: it only delays re-migrating it.)
            store._heat_by_addr[addr] = entry.epoch
            # Recovery-time integrity scan: verify every live value against
            # its persisted CRC.  Mismatches (resistance drift while the
            # store was down, or media damage) are only *counted* here —
            # the data stays put, and the read path repairs or refuses it.
            value = pool.read(addr, entry.value_len)
            if zlib.crc32(value) & 0xFFFFFFFF != entry.crc:
                crc_mismatches += 1
        store._next_epoch = max_epoch + 1
        store._write_seq = max_epoch

        if health_state is not None:
            # Quarantine every dead/dying/spare address in the rebuilt
            # DAP, mirror dead free segments in the pool allocator, and
            # re-queue retiring segments that still hold live data so the
            # next PUT resumes their evacuation.
            engine.dap.adopt_quarantine(unplaceable | spare_addrs)
            seg_size = pool.segment_size
            for addr in sorted(unplaceable - taken):
                pool.retire(addr)
            health = engine.health
            if health is not None:
                for seg in sorted(health_state.retiring):
                    if seg * seg_size in taken:
                        health.queue_relocation(seg)
        store.recovery = RecoveryReport(
            rolled_back_records=rolled_back,
            live_objects=len(live),
            free_objects=len(free_addrs),
            duplicate_keys_dropped=dropped,
            max_epoch=max_epoch,
            crc_mismatches=crc_mismatches,
            reclaimed_segments=reclaimed_on_open,
        )
        return store

    @staticmethod
    def _check_log_capacity(
        pool: PersistentPool, catalog: PersistentCatalog
    ) -> None:
        """The undo log must hold the largest transaction a PUT can form:
        one value write, one full catalog record, one flag reset."""
        overhead = pool.record_overhead_bytes()
        worst = (
            (overhead + pool.segment_size)
            + (overhead + catalog.record_size)
            + (overhead + 1)
        )
        if pool.log_capacity_bytes < worst:
            raise ValueError(
                f"undo log of {pool.log_capacity_bytes} B cannot hold a "
                f"worst-case PUT transaction of {worst} B; raise log_segments"
            )

    # -------------------------------------------------------------- training

    def train(self, verbose: bool = False) -> dict:
        """Train the placement engine on the current memory contents."""
        return self.engine.train(verbose=verbose)

    # ------------------------------------------------------------ operations

    def put(self, key: bytes, value: bytes) -> int:
        """Insert or update; returns the NVM address chosen for the value."""
        if not isinstance(key, bytes):
            raise TypeError("keys must be bytes")
        if not isinstance(value, bytes) or not value:
            raise TypeError("values must be non-empty bytes")
        self._check_writable()
        # Drain pending evacuations *before* this PUT's own write: every
        # relocation is content-neutral (same key, same value, new home),
        # so a crash anywhere inside one never changes observable store
        # contents — whereas relocating after the commit would open a
        # window where this PUT is committed but not yet acknowledged.
        self._maybe_relocate()
        if self.pool is None:
            return self._put_volatile(key, value)
        return self._put_durable(key, value)

    @property
    def read_only(self) -> bool:
        """Whether wear-out has degraded the store to read-only."""
        return self._read_only

    def _check_writable(self) -> None:
        if self._read_only:
            raise StoreReadOnlyError(
                "wear-out exhausted free capacity and spares; the store "
                "is read-only"
            )

    def put_many(self, items: list[tuple[bytes, bytes]]) -> list[int]:
        """Insert or update a batch of pairs; returns one address per item.

        Placement for the whole batch is one engine forward pass and one
        short DAP claim.  In volatile mode the media write is one batched
        differential write; in durable mode each pair still commits in its
        own undo-log transaction (the log holds one transaction at a time),
        in batch order, so the durability contract is byte-identical to
        sequential :meth:`put` calls — a crash mid-batch leaves a prefix of
        the batch committed.
        """
        items = list(items)
        for key, value in items:
            if not isinstance(key, bytes):
                raise TypeError("keys must be bytes")
            if not isinstance(value, bytes) or not value:
                raise TypeError("values must be non-empty bytes")
        if not items:
            return []
        self._check_writable()
        self._maybe_relocate()
        if self.pool is None:
            return self._put_many_volatile(items)
        return self._put_many_durable(items)

    def _put_volatile(self, key: bytes, value: bytes) -> int:
        old = self.index.get(key)
        try:
            addr, _ = self.engine.write(value)
        except PoolExhaustedError as exc:
            # The engine exhausted free capacity *and* reserved spares.
            # Before degrading, try to reclaim stranded drained retiring
            # segments into spares and retry once.
            if not self._reclaim_stranded():
                self._enter_read_only(exc)
            try:
                addr, _ = self.engine.write(value)
            except PoolExhaustedError as exc2:
                self._enter_read_only(exc2)
        self._valid[addr] = True
        self._by_addr[addr] = key
        self._crc_by_addr[addr] = zlib.crc32(value) & 0xFFFFFFFF
        self._write_seq += 1
        self._heat_by_addr[addr] = self._write_seq
        self.index.put(key, (addr, len(value)))
        if old is not None:
            # UPDATE: the previous location is recycled (Algorithm 2's path).
            old_addr, _ = old
            self._valid[old_addr] = False
            self._by_addr.pop(old_addr, None)
            self._crc_by_addr.pop(old_addr, None)
            self._heat_by_addr.pop(old_addr, None)
            self._recycle_addr(old_addr)
        return addr

    def _put_many_volatile(self, items: list[tuple[bytes, bytes]]) -> list[int]:
        try:
            results = self.engine.write_many([value for _, value in items])
        except PoolExhaustedError as exc:
            if not self._reclaim_stranded():
                self._enter_read_only(exc)
            try:
                results = self.engine.write_many(
                    [value for _, value in items]
                )
            except PoolExhaustedError as exc2:
                self._enter_read_only(exc2)
        addrs: list[int] = []
        stale: list[int] = []
        for (key, value), (addr, _) in zip(items, results):
            old = self.index.get(key)
            self._valid[addr] = True
            self._by_addr[addr] = key
            self._crc_by_addr[addr] = zlib.crc32(value) & 0xFFFFFFFF
            self._write_seq += 1
            self._heat_by_addr[addr] = self._write_seq
            self.index.put(key, (addr, len(value)))
            if old is not None:
                old_addr, _ = old
                self._valid[old_addr] = False
                self._by_addr.pop(old_addr, None)
                self._crc_by_addr.pop(old_addr, None)
                self._heat_by_addr.pop(old_addr, None)
                stale.append(old_addr)
            addrs.append(addr)
        if stale:
            # UPDATEs: healthy previous locations recycle in one
            # re-encoding pass; dying ones route through _recycle_addr so
            # retirement/reclamation bookkeeping happens per address.
            health = self.engine.health
            if health is None:
                self.engine.release_many(stale)
            else:
                healthy = []
                for old_addr in stale:
                    seg = old_addr // self.engine.segment_size
                    if health.is_unplaceable(seg):
                        self._recycle_addr(old_addr)
                    else:
                        healthy.append(old_addr)
                if healthy:
                    self.engine.release_many(healthy)
        return addrs

    def _put_durable(self, key: bytes, value: bytes) -> int:
        """Algorithm 1 with a real durability contract: value, catalog
        record and (on UPDATE) the old record's flag reset commit or roll
        back as one undo-log transaction.  The PUT is acknowledged only
        after commit; a crash at any earlier point leaves the previous
        store state recoverable.

        With wear-out enabled, a placement whose verify-after-write
        retires the segment mid-transaction is retried on a fresh
        placement (activating a reserved spare when one is left); only
        exhaustion of every option degrades the store to read-only.
        """
        self._check_durable_key(key)
        for _ in range(self.engine.controller.n_segments + 1):
            try:
                addr = self.engine.place(value)
            except PoolExhaustedError as exc:
                # Free capacity ran dry: a remaining reserved spare can
                # still save the PUT, and when even spares are gone,
                # reclaiming a stranded drained retiring segment can mint
                # one more; only true exhaustion degrades.
                if self.engine.adopt_spare() is not None:
                    continue
                if (
                    self._reclaim_stranded()
                    and self.engine.adopt_spare() is not None
                ):
                    continue
                self._enter_read_only(exc)
            try:
                self._commit_durable(key, value, addr)
            except SegmentRetiredError:
                # ``_commit_durable`` already un-claimed (and the engine
                # quarantined) the dead address; mirror the retirement in
                # the pool's allocator, pull in a spare and re-place.
                self.pool.retire(addr)
                self.engine.adopt_spare()
                continue
            self.engine.record_committed_write()
            return addr
        raise PoolExhaustedError(
            "durable PUT retries exhausted: every placement candidate "
            "retired"
        )

    def _put_many_durable(self, items: list[tuple[bytes, bytes]]) -> list[int]:
        for key, _ in items:
            self._check_durable_key(key)
        if self.engine.controller.verify_writes:
            # Per-pair PUTs: a mid-batch segment retirement must retry
            # *that pair* on a fresh placement, which the shared batch
            # claim cannot express.  The durability contract is unchanged
            # (each pair commits in its own transaction either way).
            return [self._put_durable(key, value) for key, value in items]
        addrs = self.engine.place_many([value for _, value in items])
        out: list[int] = []
        for i, ((key, value), addr) in enumerate(zip(items, addrs)):
            try:
                self._commit_durable(key, value, addr)
            except CrashError:
                raise
            except BaseException:
                # ``_commit_durable`` already un-claimed ``addr``; the
                # not-yet-written rest of the batch is un-claimed here so
                # the DAP stays exact.  Items before ``i`` stay committed,
                # exactly as sequential PUTs would leave them.
                rest = addrs[i + 1 :]
                if rest:
                    self.engine.release_many(rest)
                raise
            out.append(addr)
        self.engine.record_committed_writes(len(items))
        return out

    def _check_durable_key(self, key: bytes) -> None:
        if len(key) > self.catalog.key_capacity:
            raise ValueError(
                f"key of {len(key)} bytes exceeds catalog key capacity "
                f"{self.catalog.key_capacity}"
            )

    def _commit_durable(self, key: bytes, value: bytes, addr: int) -> None:
        """Commit one placed value: undo-log transaction, then DRAM mirrors.

        On a non-crash failure the (rolled-back) transaction's address is
        un-claimed before the error propagates; a :class:`CrashError`
        propagates raw — no DRAM cleanup, the harness re-opens from media.
        """
        old = self.index.get(key)
        epoch = self._next_epoch
        crc = zlib.crc32(value) & 0xFFFFFFFF
        try:
            if self.engine.faults is not None:
                self.engine.faults.fire("device.write")
            with self.pool.transaction() as tx:
                tx.write(addr, value)
                if old is not None:
                    # Record forwarding: full record at the new slot, old
                    # flag reset, one transaction (newest-epoch-wins keeps
                    # exactly one copy across any crash point).
                    self.catalog.tx_move(
                        tx, self.pool.object_index(old[0]),
                        self.pool.object_index(addr), key, len(value),
                        epoch, crc=crc,
                    )
                else:
                    self.catalog.tx_set(
                        tx, self.pool.object_index(addr), key, len(value),
                        epoch, crc=crc,
                    )
        except CrashError:
            # Simulated process death: no DRAM cleanup — the harness
            # discards this object and re-opens from the media.
            raise
        except BaseException:
            # Failed (and rolled-back) transaction: un-claim the address so
            # the DAP stays exact, then surface the error.
            self.engine.release(addr)
            raise
        # Committed: now (and only now) update the DRAM mirrors.
        self._next_epoch = epoch + 1
        self._valid[addr] = True
        self._by_addr[addr] = key
        self._crc_by_addr[addr] = crc
        self._write_seq += 1
        self._heat_by_addr[addr] = self._write_seq
        self.index.put(key, (addr, len(value)))
        self.pool.mark_allocated(addr)
        if old is not None:
            old_addr, _ = old
            self._valid[old_addr] = False
            self._by_addr.pop(old_addr, None)
            self._crc_by_addr.pop(old_addr, None)
            self._heat_by_addr.pop(old_addr, None)
            self._recycle_addr(old_addr)

    def get(self, key: bytes) -> bytes | None:
        """Value for ``key``, or ``None`` when absent.

        Every read is verified against the value's CRC32 (persisted in the
        catalog record in durable mode); see :class:`CorruptValueError`
        for the mismatch contract.

        Raises:
            CorruptValueError: the value failed its checksum and no repair
                avenue (ECP-corrected re-read, scrubber refresh-write)
                produced matching bytes.
        """
        return self._read_value(key)

    def attach_scrubber(self, scrubber) -> None:
        """Register a :class:`~repro.nvm.scrubber.Scrubber` so CRC-failed
        reads can attempt a refresh-write repair before giving up."""
        self.scrubber = scrubber

    def attach_compactor(self, compactor) -> None:
        """Register a :class:`~repro.nvm.compactor.Compactor` (capacity
        reclamation + static wear leveling); test harnesses drive it
        synchronously through ``store.compactor.compact_round()``."""
        self.compactor = compactor

    @property
    def write_seq(self) -> int:
        """Monotone user-write clock backing the per-address temperature
        stamps (coldness of an address = ``write_seq`` minus its stamp)."""
        return self._write_seq

    def heat_of(self, addr: int) -> int | None:
        """Temperature stamp of a live address (``None`` when untracked)."""
        return self._heat_by_addr.get(addr)

    def _fire_site(self, site: str) -> None:
        if self.engine.faults is not None:
            self.engine.faults.fire(site)

    def _read_value(self, key: bytes) -> bytes | None:
        """Read, verify and (if needed) repair the value of ``key``.

        The read is raced against concurrent relocation/update of the same
        key: after the media read, the index entry and validity flag are
        re-checked, and the read retries when the value moved mid-flight
        (the read-after-retire window of background evacuation).  A CRC
        mismatch on a stable entry goes through the repair ladder —
        ECP-corrected re-read, then scrubber refresh-write — and raises
        :class:`CorruptValueError` when nothing restores matching bytes.
        """
        for _ in range(16):
            entry = self.index.get(key)
            if entry is None:
                return None
            addr, length = entry
            value = self.engine.controller.read(addr, length)
            if self.index.get(key) != entry or not self._valid.get(addr):
                continue  # moved mid-read (relocation/update); retry
            expected = self._crc_by_addr.get(addr)
            if expected is None:
                return value  # no checksum on record (engine-level write)
            if zlib.crc32(value) & 0xFFFFFFFF == expected:
                return value
            repaired = self._attempt_repair(key, addr, length, expected)
            if repaired is not None:
                return repaired
            raise CorruptValueError(
                f"value of key {key!r} at address {addr} fails its CRC32 "
                "and could not be repaired"
            )
        raise RuntimeError(
            f"read of key {key!r} kept racing concurrent relocation"
        )

    def _attempt_repair(
        self, key: bytes, addr: int, length: int, expected: int
    ) -> bytes | None:
        """The repair ladder for a CRC-failed read.

        1. Re-read through the ECP-corrected path — catches corrections
           recorded between our first read and the verify.
        2. With a scrubber attached: refresh-write the segment (healing
           resistance drift *persistently* — the margin read recovers the
           true charge and the rewrite re-programs it), then re-read.

        Returns the repaired bytes, or ``None`` when the value really is
        lost (the caller raises :class:`CorruptValueError`).
        """
        self.corrupt_reads_detected += 1
        value = self.engine.controller.read(addr, length)
        if zlib.crc32(value) & 0xFFFFFFFF == expected:
            self.read_repairs += 1
            return value
        if self.scrubber is not None:
            self.scrubber.scrub_segment(addr // self.engine.segment_size)
            value = self.engine.controller.read(addr, length)
            if zlib.crc32(value) & 0xFFFFFFFF == expected:
                self.read_repairs += 1
                return value
        return None

    def delete(self, key: bytes) -> bool:
        """Algorithm 2: unlink, reset the flag, recycle the address."""
        self._check_writable()
        entry = self.index.get(key)
        if entry is None:
            return False
        addr, _ = entry
        if self.pool is not None:
            # The persisted validity-flag reset is the durable part; it
            # commits before any DRAM structure changes.
            with self.pool.transaction() as tx:
                self.catalog.tx_clear(tx, self.pool.object_index(addr))
        self.index.delete(key)
        self._valid[addr] = False
        self._by_addr.pop(addr, None)
        self._crc_by_addr.pop(addr, None)
        self._heat_by_addr.pop(addr, None)
        self._recycle_addr(addr)
        return True

    # ---------------------------------------------------- wear-out degradation

    def _recycle_addr(self, old_addr: int) -> None:
        """Recycle a no-longer-live address through the engine *and* (in
        durable mode) the pool allocator — except that dying segments do
        not re-pool:

        - a *retired* segment's media is dead: it is retired in the
          allocator and quarantined in the DAP, for good;
        - a *retiring* segment that this free has just fully drained (one
          value per segment) is **reclaimed**: its address joins the
          spares list as spare-class capacity instead of being stranded
          (see :meth:`HealthManager.reclaim`).  The ``compact.reclaim``
          site fires inside ``reclaim()`` before the health-state
          mutation; a crash there is idempotent because recovery reclaims
          any drained retiring segment it finds.
        """
        health = self.engine.health
        seg = old_addr // self.engine.segment_size
        if health is None or not health.is_unplaceable(seg):
            if self.pool is not None:
                self.pool.free(old_addr)
            self.engine.release(old_addr)
            return
        if health.is_retired(seg):
            if self.pool is not None:
                self.pool.retire(old_addr)
            self.engine.release(old_addr)  # quarantined by the release
            return
        # Retiring and now empty: reclaim into the spares pool.  The
        # address stays free in the allocator and quarantined in the DAP
        # (exactly like a reserved spare) until adopt_spare() activates it.
        if self.pool is not None:
            self.pool.free(old_addr)
        self.engine.quarantine_address(old_addr)
        health.reclaim(seg)

    def _reclaim_stranded(self) -> int:
        """Last-ditch reclamation before read-only degradation: fold any
        *drained* retiring segment — one that no longer holds a live value
        but was never recycled through :meth:`_recycle_addr` (e.g. freed
        by an engine-level release) — into the spares list.  Returns how
        many segments were reclaimed."""
        health = self.engine.health
        if health is None:
            return 0
        count = 0
        for seg in sorted(health.state.retiring):
            addr = seg * self.engine.segment_size
            if self._by_addr.get(addr) is not None:
                continue  # live value; the relocation queue drains it
            if (
                self.pool is not None
                and addr in self.pool.retired_addresses()
            ):
                # Recorded as dead in the allocator (a pre-reclamation
                # incarnation stranded it); resurrecting it here would
                # desynchronise the allocator. Leave it.
                continue
            if health.reclaim(seg) is not None:
                self.engine.quarantine_address(addr)
                count += 1
        return count

    def _enter_read_only(self, exc: BaseException):
        """Pool exhaustion under a wear-out model means capacity is truly
        gone (spares included): flip to read-only and raise the dedicated
        error.  Without wear-out the exhaustion propagates unchanged (a
        full store, not a degraded one)."""
        if self.engine.health is None:
            raise exc
        self._read_only = True
        raise StoreReadOnlyError(
            "wear-out exhausted free capacity and spares; the store is "
            "now read-only"
        ) from exc

    def _maybe_relocate(self) -> None:
        """Drain the whole relocation queue opportunistically at the
        *start* of every PUT (see :meth:`drain_relocations`): relocations
        are content-neutral, so doing them before this PUT's own write
        adds no window where a crash could leave the caller's PUT
        committed but unacknowledged."""
        self.drain_relocations()

    def drain_relocations(self, budget: int | None = None) -> int:
        """Evacuate live values off retiring segments (ECP at capacity).

        Each queued segment's value is read back (patched through its ECP
        entries), re-placed via a normal PUT — the ``health.relocate``
        fault site fires just before the rewrite — and the drained dying
        segment is reclaimed (or retired) by the PUT's own update path.
        Re-entrant PUTs the relocation itself performs are guarded from
        recursing.

        Args:
            budget: queue entries to process at most (the compactor's
                rate limit); ``None`` drains the whole queue.

        Returns the number of values actually moved.
        """
        health = self.engine.health
        if health is None or self._relocating or self._read_only:
            return 0
        moved = 0
        popped = 0
        self._relocating = True
        try:
            while budget is None or popped < budget:
                seg = health.pop_pending_relocation()
                if seg is None:
                    return moved
                popped += 1
                addr = seg * self.engine.segment_size
                key = self._by_addr.get(addr)
                if key is None:
                    continue  # freed since it was queued; nothing to move
                entry = self.index.get(key)
                if entry is None or entry[0] != addr:
                    continue
                health.fire_relocate()
                try:
                    value = self._read_value(key)
                except CorruptValueError:
                    # Unrepairable value on the dying segment: leave it in
                    # place (GET keeps refusing it explicitly) rather than
                    # relocating garbage under a now-wrong checksum, and
                    # don't re-queue — retrying cannot make the bytes come
                    # back.
                    self.corrupt_relocations_skipped += 1
                    continue
                if value is None:
                    continue  # deleted while we were looking at it
                try:
                    self.put(key, value)
                except StoreReadOnlyError:
                    # No capacity left to move it to.  The value stays
                    # readable where it is (its ECP entries still hold);
                    # re-queue so a future incarnation can retry.
                    health.queue_relocation(seg)
                    return moved
                moved += 1
        finally:
            self._relocating = False
        return moved

    def migrate(self, key: bytes, target_addr: int) -> bool:
        """Move the live value of ``key`` onto the specific free segment
        at ``target_addr`` — the compactor's static wear-leveling
        primitive (cold data is parked on worn media; the barely-worn
        segment it vacates re-enters the free pool).

        The move reuses the normal transactional PUT path end to end —
        DCW differential write, energy/endurance accounting, CRC, catalog
        record forwarding (:meth:`PersistentCatalog.tx_move`) — so fsck
        and the crash sweep stay authoritative over migrated values, and a
        crash at any point leaves exactly one committed copy.  The value's
        write-temperature stamp is forwarded unchanged: migration must not
        make cold data look hot.

        Fault sites: ``compact.migrate`` fires after the target is
        claimed, before any media write; the usual ``device.write`` site
        fires inside the write itself.

        Returns True when the value now lives at ``target_addr``; False
        when nothing needed to change or the move was refused (unknown
        key, busy/quarantined target, unreadable value, store read-only)
        — except that a target retiring mid-write is quarantined and a
        spare adopted in its place before returning False.
        """
        if self._read_only:
            return False
        entry = self.index.get(key)
        if entry is None:
            return False
        old_addr, _ = entry
        if old_addr == target_addr:
            return False
        try:
            value = self._read_value(key)
        except CorruptValueError:
            self.corrupt_relocations_skipped += 1
            return False
        if value is None:
            return False
        if not self.engine.claim_address(target_addr):
            return False
        heat = self._heat_by_addr.get(old_addr)
        self._fire_site("compact.migrate")
        if self.pool is None:
            try:
                self.engine.write_at(target_addr, value)
            except SegmentRetiredError:
                self.engine.adopt_spare()
                return False
            self._valid[target_addr] = True
            self._by_addr[target_addr] = key
            self._crc_by_addr[target_addr] = zlib.crc32(value) & 0xFFFFFFFF
            self.index.put(key, (target_addr, len(value)))
            self._valid[old_addr] = False
            self._by_addr.pop(old_addr, None)
            self._crc_by_addr.pop(old_addr, None)
            self._heat_by_addr.pop(old_addr, None)
            self._recycle_addr(old_addr)
        else:
            try:
                self._commit_durable(key, value, target_addr)
            except CrashError:
                raise
            except SegmentRetiredError:
                # _commit_durable already released (and the engine
                # quarantined) the dead target; mirror it in the
                # allocator and pull in a spare.
                self.pool.retire(target_addr)
                self.engine.adopt_spare()
                return False
        if heat is not None:
            # Forward the temperature stamp (the fresh-write stamp the
            # commit path set would make every migrated value look hot).
            self._heat_by_addr[target_addr] = heat
        return True

    def placement_telemetry(self) -> dict:
        """Fast placement layer telemetry for this store's engine.

        PUT/``put_many`` route placement through the engine's two-tier fast
        layer (fingerprint memo cache, then the distilled student placer)
        before any model forward pass; this exposes its hit/miss/serve
        counters for monitoring and benchmarks.
        """
        return self.engine.placement_telemetry()

    def scan(self, start_key: bytes, end_key: bytes) -> list[tuple[bytes, bytes]]:
        """All (key, value) pairs with start_key <= key <= end_key, in order."""
        out = []
        for key, _ in self.index.range(start_key, end_key):
            value = self._read_value(key)
            if value is not None:
                out.append((key, value))
        return out

    def items(self):
        """Yield every (key, value) pair in key order (CRC-verified)."""
        for key, _ in self.index.items():
            value = self._read_value(key)
            if value is not None:
                yield key, value

    def keys(self):
        """Yield every key in order."""
        yield from self.index.keys()

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, key: bytes) -> bool:
        return self.index.get(key) is not None
