"""The persistent key/value store of Figure 3.

Four components cooperate exactly as the paper's diagram shows:

- **E2-NVM** (the placement engine) predicts clusters and serves addresses;
- the **Dynamic Address Pool** lives inside the engine;
- the **data index** — a DRAM-resident red-black tree — maps keys to the NVM
  address and length of their value;
- **NVM storage** holds the values, one per fixed-size segment.

PUT/UPDATE follow Algorithm 1 (new writes go to a freshly predicted similar
segment; the update's old segment is recycled).  DELETE follows Algorithm 2
(the validity flag is reset and the address re-clustered into the DAP).  GET
and SCAN go through the index only.

The store runs in one of two modes:

- **volatile** (``KVStore(engine)``): the historical simulator mode — index
  and validity flags are DRAM-only and die with the process;
- **durable** (:meth:`KVStore.create` / :meth:`KVStore.open` over a
  :class:`~repro.pmem.pool.PersistentPool`): every mutation routes through
  an undo-log transaction that updates the value segment *and* its
  :class:`~repro.pmem.catalog.PersistentCatalog` record failure-atomically,
  the paper's Algorithm 2 validity flag becomes a persisted bit, and
  :meth:`KVStore.open` rebuilds the index, validity map, allocator state
  and DAP from the media alone after a crash.  See the README's
  "Durability contract" section.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import E2NVMConfig
from repro.core.e2nvm import E2NVM
from repro.index.rbtree import RedBlackTree
from repro.pmem.catalog import DEFAULT_KEY_CAPACITY, PersistentCatalog
from repro.pmem.pool import PersistentPool
from repro.testing.faults import CrashError


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`KVStore.open` found and rebuilt from the media."""

    rolled_back_records: int
    live_objects: int
    free_objects: int
    duplicate_keys_dropped: int
    max_epoch: int


class KVStore:
    """Persistent KV store with memory-aware write placement.

    Args:
        engine: a trained (or to-be-trained) :class:`E2NVM` engine.
        index: the key → location index; defaults to a red-black tree, as in
            Figure 3 ("RB-Tree.put(D, A)").
        pool: optional :class:`PersistentPool` enabling the durable,
            transactional write path; prefer :meth:`create`/:meth:`open`
            over passing it directly.
        catalog: the pool's :class:`PersistentCatalog`; required with
            ``pool``.
    """

    def __init__(
        self,
        engine: E2NVM,
        index=None,
        *,
        pool: PersistentPool | None = None,
        catalog: PersistentCatalog | None = None,
    ) -> None:
        if (pool is None) != (catalog is None):
            raise ValueError("durable mode needs both pool and catalog")
        self.engine = engine
        self.index = index if index is not None else RedBlackTree()
        self.pool = pool
        self.catalog = catalog
        # Per-address validity flags.  In durable mode this mirrors the
        # catalog's persisted flag bits; in volatile mode (no segment
        # headers) it is the only copy.
        self._valid: dict[int, bool] = {}
        self._next_epoch = 1
        self.recovery: RecoveryReport | None = None

    # ------------------------------------------------------- durable set-up

    @classmethod
    def create(
        cls,
        pool: PersistentPool,
        *,
        config: E2NVMConfig | None = None,
        faults=None,
        key_capacity: int = DEFAULT_KEY_CAPACITY,
        pipeline=None,
        index=None,
    ) -> "KVStore":
        """Format fresh media and build a durable store over ``pool``.

        Initialises the undo log and catalog, then trains the placement
        engine on the (empty) object segments — or adopts an already
        trained ``pipeline`` when given, e.g. a deserialised model or a
        test harness's shared one.
        """
        catalog = PersistentCatalog(pool, key_capacity)
        cls._check_log_capacity(pool, catalog)
        pool.format()
        catalog.format()
        engine = E2NVM(
            pool.controller,
            config,
            faults,
            reserved_segments=pool.object_start_segment,
        )
        if pipeline is not None:
            engine.adopt(pipeline, engine.free_addresses())
        else:
            engine.train()
        return cls(engine, index=index, pool=pool, catalog=catalog)

    @classmethod
    def open(
        cls,
        pool: PersistentPool,
        *,
        config: E2NVMConfig | None = None,
        faults=None,
        key_capacity: int = DEFAULT_KEY_CAPACITY,
        pipeline=None,
        index=None,
    ) -> "KVStore":
        """Re-open an existing store from the media alone (full recovery).

        1. Runs the pool's undo-log rollback, repairing any transaction a
           crash left half-applied (idempotent — a crash *during* recovery
           just recovers again).
        2. Scans the persistent catalog: every valid record rebuilds one
           index entry, validity flag and allocator registration.
        3. Re-encodes the free segments through the trained pipeline to
           reconstruct the DAP cluster pools — the same re-cluster path
           DELETE takes.  Pass ``pipeline`` (e.g. a deserialised model) to
           skip retraining; with ``None`` a fresh model is trained on the
           free segments.

        No DRAM state of the previous incarnation is consulted; the report
        of what was rebuilt lands on :attr:`recovery`.
        """
        rolled_back = pool.recover()
        catalog = PersistentCatalog(pool, key_capacity)
        cls._check_log_capacity(pool, catalog)

        # Catalog scan: newest epoch wins should a duplicate key ever
        # surface (it cannot under atomic PUTs; this is defensive).
        live: dict[bytes, object] = {}
        dropped = 0
        max_epoch = 0
        for entry in catalog.scan():
            max_epoch = max(max_epoch, entry.epoch)
            other = live.get(entry.key)
            if other is None or entry.epoch > other.epoch:
                if other is not None:
                    dropped += 1
                    catalog.pool.write(
                        catalog.record_address(other.slot), b"\x00"
                    )
                live[entry.key] = entry
            else:
                dropped += 1
                catalog.pool.write(catalog.record_address(entry.slot), b"\x00")

        live_addrs = {
            entry.key: pool.object_address(entry.slot)
            for entry in live.values()
        }
        taken = set(live_addrs.values())
        free_addrs = [
            pool.object_address(i)
            for i in range(pool.capacity_objects)
            if pool.object_address(i) not in taken
        ]

        engine = E2NVM(
            pool.controller,
            config,
            faults,
            reserved_segments=pool.object_start_segment,
        )
        if pipeline is not None:
            engine.adopt(pipeline, free_addrs)
        else:
            engine.train(addresses=free_addrs)

        store = cls(engine, index=index, pool=pool, catalog=catalog)
        for key, entry in live.items():
            addr = live_addrs[key]
            engine.mark_allocated(addr)
            pool.mark_allocated(addr)
            store.index.put(key, (addr, entry.value_len))
            store._valid[addr] = True
        store._next_epoch = max_epoch + 1
        store.recovery = RecoveryReport(
            rolled_back_records=rolled_back,
            live_objects=len(live),
            free_objects=len(free_addrs),
            duplicate_keys_dropped=dropped,
            max_epoch=max_epoch,
        )
        return store

    @staticmethod
    def _check_log_capacity(
        pool: PersistentPool, catalog: PersistentCatalog
    ) -> None:
        """The undo log must hold the largest transaction a PUT can form:
        one value write, one full catalog record, one flag reset."""
        overhead = pool.record_overhead_bytes()
        worst = (
            (overhead + pool.segment_size)
            + (overhead + catalog.record_size)
            + (overhead + 1)
        )
        if pool.log_capacity_bytes < worst:
            raise ValueError(
                f"undo log of {pool.log_capacity_bytes} B cannot hold a "
                f"worst-case PUT transaction of {worst} B; raise log_segments"
            )

    # -------------------------------------------------------------- training

    def train(self, verbose: bool = False) -> dict:
        """Train the placement engine on the current memory contents."""
        return self.engine.train(verbose=verbose)

    # ------------------------------------------------------------ operations

    def put(self, key: bytes, value: bytes) -> int:
        """Insert or update; returns the NVM address chosen for the value."""
        if not isinstance(key, bytes):
            raise TypeError("keys must be bytes")
        if not isinstance(value, bytes) or not value:
            raise TypeError("values must be non-empty bytes")
        if self.pool is None:
            return self._put_volatile(key, value)
        return self._put_durable(key, value)

    def put_many(self, items: list[tuple[bytes, bytes]]) -> list[int]:
        """Insert or update a batch of pairs; returns one address per item.

        Placement for the whole batch is one engine forward pass and one
        short DAP claim.  In volatile mode the media write is one batched
        differential write; in durable mode each pair still commits in its
        own undo-log transaction (the log holds one transaction at a time),
        in batch order, so the durability contract is byte-identical to
        sequential :meth:`put` calls — a crash mid-batch leaves a prefix of
        the batch committed.
        """
        items = list(items)
        for key, value in items:
            if not isinstance(key, bytes):
                raise TypeError("keys must be bytes")
            if not isinstance(value, bytes) or not value:
                raise TypeError("values must be non-empty bytes")
        if not items:
            return []
        if self.pool is None:
            return self._put_many_volatile(items)
        return self._put_many_durable(items)

    def _put_volatile(self, key: bytes, value: bytes) -> int:
        old = self.index.get(key)
        addr, _ = self.engine.write(value)
        self._valid[addr] = True
        self.index.put(key, (addr, len(value)))
        if old is not None:
            # UPDATE: the previous location is recycled (Algorithm 2's path).
            old_addr, _ = old
            self._valid[old_addr] = False
            self.engine.release(old_addr)
        return addr

    def _put_many_volatile(self, items: list[tuple[bytes, bytes]]) -> list[int]:
        results = self.engine.write_many([value for _, value in items])
        addrs: list[int] = []
        stale: list[int] = []
        for (key, value), (addr, _) in zip(items, results):
            old = self.index.get(key)
            self._valid[addr] = True
            self.index.put(key, (addr, len(value)))
            if old is not None:
                old_addr, _ = old
                self._valid[old_addr] = False
                stale.append(old_addr)
            addrs.append(addr)
        if stale:
            # UPDATEs: previous locations recycled in one re-encoding pass.
            self.engine.release_many(stale)
        return addrs

    def _put_durable(self, key: bytes, value: bytes) -> int:
        """Algorithm 1 with a real durability contract: value, catalog
        record and (on UPDATE) the old record's flag reset commit or roll
        back as one undo-log transaction.  The PUT is acknowledged only
        after commit; a crash at any earlier point leaves the previous
        store state recoverable."""
        self._check_durable_key(key)
        addr = self.engine.place(value)
        self._commit_durable(key, value, addr)
        self.engine.record_committed_write()
        return addr

    def _put_many_durable(self, items: list[tuple[bytes, bytes]]) -> list[int]:
        for key, _ in items:
            self._check_durable_key(key)
        addrs = self.engine.place_many([value for _, value in items])
        out: list[int] = []
        for i, ((key, value), addr) in enumerate(zip(items, addrs)):
            try:
                self._commit_durable(key, value, addr)
            except CrashError:
                raise
            except BaseException:
                # ``_commit_durable`` already un-claimed ``addr``; the
                # not-yet-written rest of the batch is un-claimed here so
                # the DAP stays exact.  Items before ``i`` stay committed,
                # exactly as sequential PUTs would leave them.
                rest = addrs[i + 1 :]
                if rest:
                    self.engine.release_many(rest)
                raise
            out.append(addr)
        self.engine.record_committed_writes(len(items))
        return out

    def _check_durable_key(self, key: bytes) -> None:
        if len(key) > self.catalog.key_capacity:
            raise ValueError(
                f"key of {len(key)} bytes exceeds catalog key capacity "
                f"{self.catalog.key_capacity}"
            )

    def _commit_durable(self, key: bytes, value: bytes, addr: int) -> None:
        """Commit one placed value: undo-log transaction, then DRAM mirrors.

        On a non-crash failure the (rolled-back) transaction's address is
        un-claimed before the error propagates; a :class:`CrashError`
        propagates raw — no DRAM cleanup, the harness re-opens from media.
        """
        old = self.index.get(key)
        epoch = self._next_epoch
        try:
            if self.engine.faults is not None:
                self.engine.faults.fire("device.write")
            with self.pool.transaction() as tx:
                tx.write(addr, value)
                self.catalog.tx_set(
                    tx, self.pool.object_index(addr), key, len(value), epoch
                )
                if old is not None:
                    self.catalog.tx_clear(
                        tx, self.pool.object_index(old[0])
                    )
        except CrashError:
            # Simulated process death: no DRAM cleanup — the harness
            # discards this object and re-opens from the media.
            raise
        except BaseException:
            # Failed (and rolled-back) transaction: un-claim the address so
            # the DAP stays exact, then surface the error.
            self.engine.release(addr)
            raise
        # Committed: now (and only now) update the DRAM mirrors.
        self._next_epoch = epoch + 1
        self._valid[addr] = True
        self.index.put(key, (addr, len(value)))
        self.pool.mark_allocated(addr)
        if old is not None:
            old_addr, _ = old
            self._valid[old_addr] = False
            self.pool.free(old_addr)
            self.engine.release(old_addr)

    def get(self, key: bytes) -> bytes | None:
        """Value for ``key``, or ``None`` when absent."""
        entry = self.index.get(key)
        if entry is None:
            return None
        addr, length = entry
        return self.engine.controller.read(addr, length)

    def delete(self, key: bytes) -> bool:
        """Algorithm 2: unlink, reset the flag, recycle the address."""
        entry = self.index.get(key)
        if entry is None:
            return False
        addr, _ = entry
        if self.pool is not None:
            # The persisted validity-flag reset is the durable part; it
            # commits before any DRAM structure changes.
            with self.pool.transaction() as tx:
                self.catalog.tx_clear(tx, self.pool.object_index(addr))
            self.pool.free(addr)
        self.index.delete(key)
        self._valid[addr] = False
        self.engine.release(addr)
        return True

    def scan(self, start_key: bytes, end_key: bytes) -> list[tuple[bytes, bytes]]:
        """All (key, value) pairs with start_key <= key <= end_key, in order."""
        out = []
        for key, (addr, length) in self.index.range(start_key, end_key):
            out.append((key, self.engine.controller.read(addr, length)))
        return out

    def items(self):
        """Yield every (key, value) pair in key order."""
        for key, (addr, length) in self.index.items():
            yield key, self.engine.controller.read(addr, length)

    def keys(self):
        """Yield every key in order."""
        yield from self.index.keys()

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, key: bytes) -> bool:
        return self.index.get(key) is not None
