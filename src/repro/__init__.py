"""E2-NVM reproduction: memory-aware NVM write placement with VAE+K-means.

Reproduces *E2-NVM: A Memory-Aware Write Scheme to Improve Energy Efficiency
and Write Endurance of NVMs using Variational Autoencoders* (EDBT 2023) as a
pure-Python library over a bit-accurate simulated PCM device.

Quick start::

    from repro import E2NVM, E2NVMConfig, NVMDevice, MemoryController

    device = NVMDevice(capacity_bytes=64 * 1024, segment_size=64,
                       initial_fill="random", seed=7)
    controller = MemoryController(device)
    engine = E2NVM(controller, E2NVMConfig(n_clusters=6))
    engine.train()
    addr = engine.place(b"... a 64-byte value ...")
"""

from repro.core import E2NVM, E2NVMConfig, KVStore
from repro.nvm import (
    EnergyModel,
    LatencyModel,
    MemoryController,
    NVMDevice,
    SegmentSwapWearLeveling,
    StartGapWearLeveling,
)

__version__ = "1.0.0"

__all__ = [
    "E2NVM",
    "E2NVMConfig",
    "KVStore",
    "NVMDevice",
    "MemoryController",
    "EnergyModel",
    "LatencyModel",
    "SegmentSwapWearLeveling",
    "StartGapWearLeveling",
    "__version__",
]
