"""FP-Tree — Oukid et al., SIGMOD 2016 [45].

A hybrid SCM-DRAM B-tree: inner nodes live in DRAM (rebuilt on recovery),
persistent *leaf* nodes keep entries **unsorted** with a slot bitmap and a
one-byte fingerprint per slot.  Inserts write one slot plus the small
header, so — unlike the sorted B+-tree — no entries shift and the bit-flip
cost per insert stays near the payload size.

Leaf layout within one NVM segment::

    [bitmap: slots bytes][fingerprints: slots bytes][slot 0][slot 1]...

(each bitmap byte is one slot's validity flag; a byte per flag keeps slot
writes segment-aligned and models the persisted-bitmap update).
"""

from __future__ import annotations

import hashlib

from repro.index.alloc import SegmentAllocator
from repro.index.base import NVMIndex, encode_kv
from repro.nvm.controller import MemoryController


def _fingerprint(key: bytes) -> int:
    """One-byte key fingerprint, as in the FP-Tree paper."""
    return hashlib.blake2b(key, digest_size=1).digest()[0]


class _Leaf:
    __slots__ = ("addr", "bitmap", "fingerprints", "keys", "values")

    def __init__(self, addr: int, slots: int) -> None:
        self.addr = addr
        self.bitmap = [False] * slots
        self.fingerprints = [0] * slots
        self.keys: list[bytes | None] = [None] * slots
        self.values: list[bytes | None] = [None] * slots


class FPTree(NVMIndex):
    """Fingerprinting persistent tree with unsorted slotted leaves.

    Args:
        controller: NVM for the leaves.
        values: value-store strategy.
        slots: entries per leaf.
        slot_size: fixed byte size reserved per entry (key + stored value +
            4-byte lengths must fit).
    """

    name = "fp-tree"

    def __init__(
        self,
        controller: MemoryController,
        values=None,
        slots: int = 16,
        slot_size: int | None = None,
    ) -> None:
        super().__init__(controller, values)
        self.slots = slots
        header = 2 * slots
        available = controller.segment_size - header
        self.slot_size = slot_size or available // slots
        if self.slot_size <= 8 or header + slots * self.slot_size > controller.segment_size:
            raise ValueError(
                f"{slots} slots of {self.slot_size} bytes do not fit a "
                f"{controller.segment_size}-byte segment"
            )
        self._alloc = SegmentAllocator(controller)
        first = _Leaf(self._alloc.allocate(), slots)
        # DRAM inner structure: sorted list of (smallest key, leaf).
        self._leaves: list[_Leaf] = [first]
        self._split_keys: list[bytes] = []  # len(self._leaves) - 1 separators

    # ------------------------------------------------------------ operations

    def put(self, key: bytes, value: bytes) -> None:
        self.record_data(key, value)
        stored = self.values.store(value)
        entry = encode_kv(key, stored)
        if len(entry) > self.slot_size:
            raise ValueError(
                f"entry of {len(entry)} bytes exceeds slot size {self.slot_size}"
            )
        leaf = self._locate(key)
        fp = _fingerprint(key)
        existing = self._find_slot(leaf, key, fp)
        free = self._free_slot(leaf)
        if free is None:
            self._split(leaf)
            self.put_stored(key, stored, entry)
            return
        # Out-of-place slot write, then the header commit (bitmap + fp).
        self._write_slot(leaf, free, entry, key, stored, fp)
        if existing is not None:
            self.values.release(leaf.values[existing])
            leaf.bitmap[existing] = False
            leaf.keys[existing] = None
            leaf.values[existing] = None
        self._write_header(leaf)

    def put_stored(self, key: bytes, stored: bytes, entry: bytes) -> None:
        """Re-drive an insert whose value bytes were already stored
        (used after a split so plugged values are not written twice)."""
        leaf = self._locate(key)
        fp = _fingerprint(key)
        existing = self._find_slot(leaf, key, fp)
        free = self._free_slot(leaf)
        if free is None:
            self._split(leaf)
            self.put_stored(key, stored, entry)
            return
        self._write_slot(leaf, free, entry, key, stored, fp)
        if existing is not None:
            self.values.release(leaf.values[existing])
            leaf.bitmap[existing] = False
            leaf.keys[existing] = None
            leaf.values[existing] = None
        self._write_header(leaf)

    def get(self, key: bytes) -> bytes | None:
        leaf = self._locate(key)
        idx = self._find_slot(leaf, key, _fingerprint(key))
        if idx is None:
            return None
        self.controller.read(self._slot_addr(leaf, idx), self.slot_size)
        return self.values.load(self.controller, leaf.values[idx])

    def delete(self, key: bytes) -> bool:
        leaf = self._locate(key)
        idx = self._find_slot(leaf, key, _fingerprint(key))
        if idx is None:
            return False
        self.values.release(leaf.values[idx])
        leaf.bitmap[idx] = False
        leaf.keys[idx] = None
        leaf.values[idx] = None
        self._write_header(leaf)
        return True

    def __len__(self) -> int:
        return sum(sum(leaf.bitmap) for leaf in self._leaves)

    # -------------------------------------------------------------- internals

    def _locate(self, key: bytes) -> _Leaf:
        lo, hi = 0, len(self._split_keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._split_keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        return self._leaves[lo]

    def _find_slot(self, leaf: _Leaf, key: bytes, fp: int) -> int | None:
        for i in range(self.slots):
            if leaf.bitmap[i] and leaf.fingerprints[i] == fp and leaf.keys[i] == key:
                return i
        return None

    def _free_slot(self, leaf: _Leaf) -> int | None:
        for i in range(self.slots):
            if not leaf.bitmap[i]:
                return i
        return None

    def _slot_addr(self, leaf: _Leaf, idx: int) -> int:
        return leaf.addr + 2 * self.slots + idx * self.slot_size

    def _write_slot(
        self, leaf: _Leaf, idx: int, entry: bytes, key: bytes, stored: bytes,
        fp: int,
    ) -> None:
        self.controller.write(
            self._slot_addr(leaf, idx), entry.ljust(self.slot_size, b"\x00")
        )
        leaf.bitmap[idx] = True
        leaf.fingerprints[idx] = fp
        leaf.keys[idx] = key
        leaf.values[idx] = stored

    def _write_header(self, leaf: _Leaf) -> None:
        header = bytes(
            1 if bit else 0 for bit in leaf.bitmap
        ) + bytes(leaf.fingerprints)
        self.controller.write(leaf.addr, header)

    def _split(self, leaf: _Leaf) -> None:
        live = sorted(
            (leaf.keys[i], i) for i in range(self.slots) if leaf.bitmap[i]
        )
        mid = len(live) // 2
        split_key = live[mid][0]
        right = _Leaf(self._alloc.allocate(), self.slots)
        # Move the upper half into the new leaf.
        for slot_out, (key, i) in enumerate(live[mid:]):
            entry = encode_kv(leaf.keys[i], leaf.values[i])
            self.controller.write(
                self._slot_addr(right, slot_out),
                entry.ljust(self.slot_size, b"\x00"),
            )
            right.bitmap[slot_out] = True
            right.fingerprints[slot_out] = leaf.fingerprints[i]
            right.keys[slot_out] = leaf.keys[i]
            right.values[slot_out] = leaf.values[i]
            leaf.bitmap[i] = False
            leaf.keys[i] = None
            leaf.values[i] = None
        self._write_header(right)
        self._write_header(leaf)
        pos = self._leaves.index(leaf)
        self._leaves.insert(pos + 1, right)
        self._split_keys.insert(pos, split_key)
