"""Segment-granularity node allocator for the NVM index structures."""

from __future__ import annotations

from collections import deque

from repro.nvm.controller import MemoryController


class SegmentAllocator:
    """Bump allocator with a free list over a controller's segments."""

    def __init__(self, controller: MemoryController, start_segment: int = 0) -> None:
        self.controller = controller
        self._next = start_segment
        self._free: deque[int] = deque()

    def allocate(self) -> int:
        """Return the address of a fresh (or recycled) segment.

        Raises:
            RuntimeError: when the device is out of segments.
        """
        if self._free:
            return self._free.popleft()
        if self._next >= self.controller.n_segments:
            raise RuntimeError("index device is out of segments")
        addr = self.controller.segment_address(self._next)
        self._next += 1
        return addr

    def free(self, addr: int) -> None:
        """Recycle a segment address."""
        self._free.append(addr)

    @property
    def segments_in_use(self) -> int:
        """Segments handed out and not yet recycled."""
        return self._next - len(self._free)
