"""NVM-resident index structures evaluated in Figure 12.

Each structure persists its data through a :class:`repro.nvm.MemoryController`
and counts every programmed bit, so the paper's "bit updates per data bit"
metric falls out directly.  Every structure runs in two modes:

- **standalone** — values live wherever the structure's own layout puts them
  (inline in B+-tree leaves, hash cells, the vLog, ...);
- **plugged into E2-NVM** — value placement is delegated to a trained
  :class:`repro.core.E2NVM` engine, and the structure stores an 8-byte
  pointer instead; this is the paper's "augmenting E2-NVM to existing NVM
  data structures".

Implemented structures: B+-tree [9], FP-Tree [45], Path Hashing [54],
WiscKey [35], NoveLSM [25], plus the DRAM red-black tree that serves as the
KV store's data index (Figure 3).
"""

from repro.index.base import InlineValues, PluggedValues, NVMIndex
from repro.index.rbtree import RedBlackTree
from repro.index.bplustree import BPlusTree
from repro.index.fptree import FPTree
from repro.index.path_hashing import PathHashingTable
from repro.index.wisckey import WiscKeyStore
from repro.index.novelsm import NoveLSMStore

__all__ = [
    "NVMIndex",
    "InlineValues",
    "PluggedValues",
    "RedBlackTree",
    "BPlusTree",
    "FPTree",
    "PathHashingTable",
    "WiscKeyStore",
    "NoveLSMStore",
]
