"""Path Hashing — Zuo & Hua, MSST 2017 [54].

A write-friendly NVM hash table: below the root hash level sits an inverted
complete binary tree of standby cells.  A key hashes to two root positions;
on collision the insert walks *up* the two paths (each level halves in
size), claiming the first empty cell.  Collisions therefore never shift or
rewrite other entries — an insert programs exactly one fixed-size cell.

Cell occupancy/location metadata is mirrored in DRAM; the cell payloads are
the NVM traffic being measured.
"""

from __future__ import annotations

import hashlib

from repro.index.base import NVMIndex, encode_kv
from repro.nvm.controller import MemoryController


def _hash(key: bytes, salt: bytes) -> int:
    digest = hashlib.blake2b(key, key=salt, digest_size=8).digest()
    return int.from_bytes(digest, "little")


class PathHashingTable(NVMIndex):
    """Path hashing over fixed-size NVM cells.

    Args:
        controller: NVM backing the cell array.
        values: value-store strategy.
        root_cells: width of the bottom (root) hash level; total capacity is
            about ``2 * root_cells`` across all levels.
        levels: path length (number of standby levels above the root).
        cell_size: fixed bytes per cell (must fit the largest entry).
    """

    name = "path-hashing"

    def __init__(
        self,
        controller: MemoryController,
        values=None,
        root_cells: int = 256,
        levels: int = 4,
        cell_size: int = 64,
    ) -> None:
        super().__init__(controller, values)
        if root_cells < 2 or levels < 1:
            raise ValueError("need root_cells >= 2 and levels >= 1")
        if cell_size > controller.segment_size or controller.segment_size % cell_size:
            raise ValueError("cell_size must evenly divide the segment size")
        self.cell_size = cell_size
        self.levels = levels
        # Level l has root_cells >> l cells; level 0 is the root level.
        self._level_sizes = [max(1, root_cells >> l) for l in range(levels + 1)]
        self._level_offsets = []
        offset = 0
        for size in self._level_sizes:
            self._level_offsets.append(offset)
            offset += size
        total_cells = offset
        needed = total_cells * cell_size
        if needed > controller.n_segments * controller.segment_size:
            raise ValueError("device too small for the requested table")
        # DRAM mirror of cell state.
        self._keys: list[bytes | None] = [None] * total_cells
        self._stored: list[bytes | None] = [None] * total_cells

    # ------------------------------------------------------------ operations

    def put(self, key: bytes, value: bytes) -> None:
        self.record_data(key, value)
        stored = self.values.store(value)
        entry = encode_kv(key, stored)
        if len(entry) > self.cell_size:
            raise ValueError(
                f"entry of {len(entry)} bytes exceeds cell size {self.cell_size}"
            )
        existing = self._find(key)
        if existing is not None:
            self.values.release(self._stored[existing])
            self._write_cell(existing, entry, key, stored)
            return
        for cell in self._candidate_cells(key):
            if self._keys[cell] is None:
                self._write_cell(cell, entry, key, stored)
                return
        raise RuntimeError("path hashing table is full on both paths")

    def get(self, key: bytes) -> bytes | None:
        cell = self._find(key)
        if cell is None:
            return None
        self.controller.read(self._cell_addr(cell), self.cell_size)
        return self.values.load(self.controller, self._stored[cell])

    def delete(self, key: bytes) -> bool:
        cell = self._find(key)
        if cell is None:
            return False
        self.values.release(self._stored[cell])
        self._keys[cell] = None
        self._stored[cell] = None
        return True

    def __len__(self) -> int:
        return sum(1 for key in self._keys if key is not None)

    @property
    def capacity(self) -> int:
        """Total cells across every level."""
        return len(self._keys)

    # -------------------------------------------------------------- internals

    def _candidate_cells(self, key: bytes):
        """The 2·(levels+1) cells on the key's two paths, root first."""
        for salt in (b"path-h1", b"path-h2"):
            pos = _hash(key, salt) % self._level_sizes[0]
            for level in range(self.levels + 1):
                level_pos = pos >> level
                if level_pos >= self._level_sizes[level]:
                    level_pos = self._level_sizes[level] - 1
                yield self._level_offsets[level] + level_pos

    def _find(self, key: bytes) -> int | None:
        for cell in self._candidate_cells(key):
            if self._keys[cell] == key:
                return cell
        return None

    def _cell_addr(self, cell: int) -> int:
        return cell * self.cell_size

    def _write_cell(
        self, cell: int, entry: bytes, key: bytes, stored: bytes
    ) -> None:
        self.controller.write(
            self._cell_addr(cell), entry.ljust(self.cell_size, b"\x00")
        )
        self._keys[cell] = key
        self._stored[cell] = stored
