"""Persistent B+-tree [9] with sorted leaves on NVM.

The paper's Figure 12 finds the plain B+-tree has the *worst* bit-flip
behaviour: "the items in leaf nodes need to be sorted, which increases the
number of movements and bit flips".  We reproduce exactly that: every insert
re-serialises the sorted leaf and rewrites the whole node, so entries shift
and nearly every byte after the insertion point changes.

The tree topology is mirrored in DRAM for traversal convenience; every node
mutation writes the node's full serialised image to its NVM segment, which
is what determines the measured flips.  Deletion is lazy (no rebalancing),
as is common for persistent B+-tree variants.
"""

from __future__ import annotations

import struct

from repro.index.alloc import SegmentAllocator
from repro.index.base import NVMIndex, encode_kv
from repro.nvm.controller import MemoryController

_LEAF_HEADER = struct.Struct("<BH")  # node type, entry count


class _Leaf:
    __slots__ = ("keys", "values", "addr", "next")

    def __init__(self, addr: int) -> None:
        self.keys: list[bytes] = []
        self.values: list[bytes] = []
        self.addr = addr
        self.next: "_Leaf | None" = None


class _Inner:
    __slots__ = ("keys", "children", "addr")

    def __init__(self, addr: int) -> None:
        self.keys: list[bytes] = []  # separator keys
        self.children: list = []
        self.addr = addr


class BPlusTree(NVMIndex):
    """Sorted-leaf B+-tree; node size equals the device segment size."""

    name = "b+tree"

    def __init__(self, controller: MemoryController, values=None) -> None:
        super().__init__(controller, values)
        self.node_size = controller.segment_size
        self._alloc = SegmentAllocator(controller)
        self._root = _Leaf(self._alloc.allocate())
        self._write_leaf(self._root)

    # ------------------------------------------------------------ operations

    def put(self, key: bytes, value: bytes) -> None:
        self.record_data(key, value)
        stored = self.values.store(value)
        leaf, path = self._descend(key)
        idx = self._lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            self.values.release(leaf.values[idx])
            leaf.values[idx] = stored
        else:
            leaf.keys.insert(idx, key)
            leaf.values.insert(idx, stored)
        self._write_leaf_or_split(leaf, path)

    def get(self, key: bytes) -> bytes | None:
        leaf, _ = self._descend(key)
        idx = self._lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            # Touch the media for the read, then decode from the mirror.
            self.controller.read(leaf.addr, self.node_size)
            return self.values.load(self.controller, leaf.values[idx])
        return None

    def delete(self, key: bytes) -> bool:
        leaf, _ = self._descend(key)
        idx = self._lower_bound(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        self.values.release(leaf.values[idx])
        del leaf.keys[idx]
        del leaf.values[idx]
        self._write_leaf(leaf)
        return True

    def items(self):
        """All (key, value) pairs in key order (DRAM traversal)."""
        leaf = self._leftmost()
        while leaf is not None:
            for key, stored in zip(leaf.keys, leaf.values):
                yield key, self.values.load(self.controller, stored)
            leaf = leaf.next

    def __len__(self) -> int:
        return sum(len(leaf.keys) for leaf in self._leaves())

    # -------------------------------------------------------------- internals

    def _descend(self, key: bytes):
        path: list[_Inner] = []
        node = self._root
        while isinstance(node, _Inner):
            path.append(node)
            idx = self._upper_bound(node.keys, key)
            node = node.children[idx]
        return node, path

    def _write_leaf_or_split(self, leaf: _Leaf, path: list[_Inner]) -> None:
        if self._leaf_bytes(leaf) <= self.node_size:
            self._write_leaf(leaf)
            return
        # Split: move the upper half into a fresh leaf.
        mid = len(leaf.keys) // 2
        right = _Leaf(self._alloc.allocate())
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        self._write_leaf(leaf)
        self._write_leaf(right)
        self._insert_separator(path, right.keys[0], leaf, right)

    def _insert_separator(
        self, path: list[_Inner], sep: bytes, left, right
    ) -> None:
        if not path:
            root = _Inner(self._alloc.allocate())
            root.keys = [sep]
            root.children = [left, right]
            self._root = root
            self._write_inner(root)
            return
        parent = path[-1]
        idx = self._upper_bound(parent.keys, sep)
        parent.keys.insert(idx, sep)
        parent.children.insert(idx + 1, right)
        if self._inner_bytes(parent) <= self.node_size:
            self._write_inner(parent)
            return
        mid = len(parent.keys) // 2
        up = parent.keys[mid]
        new_inner = _Inner(self._alloc.allocate())
        new_inner.keys = parent.keys[mid + 1 :]
        new_inner.children = parent.children[mid + 1 :]
        parent.keys = parent.keys[:mid]
        parent.children = parent.children[: mid + 1]
        self._write_inner(parent)
        self._write_inner(new_inner)
        self._insert_separator(path[:-1], up, parent, new_inner)

    def _leaf_bytes(self, leaf: _Leaf) -> int:
        return _LEAF_HEADER.size + sum(
            4 + len(k) + len(v) for k, v in zip(leaf.keys, leaf.values)
        )

    def _inner_bytes(self, inner: _Inner) -> int:
        return (
            _LEAF_HEADER.size
            + sum(2 + len(k) for k in inner.keys)
            + 8 * len(inner.children)
        )

    def _write_leaf(self, leaf: _Leaf) -> None:
        body = b"".join(
            encode_kv(k, v) for k, v in zip(leaf.keys, leaf.values)
        )
        image = _LEAF_HEADER.pack(0, len(leaf.keys)) + body
        self.controller.write(leaf.addr, image.ljust(self.node_size, b"\x00"))

    def _write_inner(self, inner: _Inner) -> None:
        parts = [_LEAF_HEADER.pack(1, len(inner.keys))]
        for key in inner.keys:
            parts.append(struct.pack("<H", len(key)) + key)
        for child in inner.children:
            parts.append(struct.pack("<Q", child.addr))
        image = b"".join(parts)
        self.controller.write(inner.addr, image.ljust(self.node_size, b"\x00"))

    def _leftmost(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        return node

    def _leaves(self):
        leaf = self._leftmost()
        while leaf is not None:
            yield leaf
            leaf = leaf.next

    @staticmethod
    def _lower_bound(keys: list[bytes], key: bytes) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @staticmethod
    def _upper_bound(keys: list[bytes], key: bytes) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo
