"""DRAM-resident red-black tree — the KV store's data index (Figure 3).

Algorithm 1 ends with "RB-Tree.put(D, A)": the tree maps keys to NVM
locations.  It lives in DRAM, so it costs no NVM bit flips; a classic CLRS
implementation with insert, delete, point lookup, and ordered range scans.
"""

from __future__ import annotations

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key, value, color, nil) -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


class RedBlackTree:
    """Ordered map over ``bytes`` keys (any totally ordered keys work)."""

    def __init__(self) -> None:
        self._nil = _Node(None, None, BLACK, None)
        self._nil.left = self._nil.right = self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def get(self, key):
        """Value for ``key`` or ``None``."""
        node = self._find(key)
        return node.value if node is not self._nil else None

    def put(self, key, value) -> None:
        """Insert ``key`` or overwrite its value."""
        parent = self._nil
        cursor = self._root
        while cursor is not self._nil:
            parent = cursor
            if key == cursor.key:
                cursor.value = value
                return
            cursor = cursor.left if key < cursor.key else cursor.right
        node = _Node(key, value, RED, self._nil)
        node.parent = parent
        if parent is self._nil:
            self._root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self._size += 1
        self._insert_fixup(node)

    def delete(self, key) -> bool:
        """Remove ``key``; returns whether it was present."""
        node = self._find(key)
        if node is self._nil:
            return False
        self._delete_node(node)
        self._size -= 1
        return True

    def range(self, start_key, end_key):
        """Yield (key, value) pairs with start_key <= key <= end_key, sorted."""
        stack = []
        cursor = self._root
        while stack or cursor is not self._nil:
            while cursor is not self._nil:
                # Prune subtrees entirely below the range.
                if cursor.key < start_key:
                    cursor = cursor.right
                    continue
                stack.append(cursor)
                cursor = cursor.left
            if not stack:
                break
            node = stack.pop()
            if node.key > end_key:
                break
            yield node.key, node.value
            cursor = node.right

    def items(self):
        """Yield all (key, value) pairs in key order."""
        stack = []
        cursor = self._root
        while stack or cursor is not self._nil:
            while cursor is not self._nil:
                stack.append(cursor)
                cursor = cursor.left
            node = stack.pop()
            yield node.key, node.value
            cursor = node.right

    def keys(self):
        """Yield all keys in order."""
        for key, _ in self.items():
            yield key

    def minimum(self):
        """Smallest (key, value) pair, or ``None`` when empty."""
        if self._root is self._nil:
            return None
        node = self._minimum(self._root)
        return node.key, node.value

    def maximum(self):
        """Largest (key, value) pair, or ``None`` when empty."""
        if self._root is self._nil:
            return None
        node = self._root
        while node.right is not self._nil:
            node = node.right
        return node.key, node.value

    # ------------------------------------------------------------- internals

    def _find(self, key) -> _Node:
        cursor = self._root
        while cursor is not self._nil:
            if key == cursor.key:
                return cursor
            cursor = cursor.left if key < cursor.key else cursor.right
        return self._nil

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            node = node.left
        return node

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = grand.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self._root.color = BLACK

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_node(self, z: _Node) -> None:
        y = z
        y_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color is BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                sibling = x.parent.right
                if sibling.color is RED:
                    sibling.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    sibling = x.parent.right
                if sibling.left.color is BLACK and sibling.right.color is BLACK:
                    sibling.color = RED
                    x = x.parent
                else:
                    if sibling.right.color is BLACK:
                        sibling.left.color = BLACK
                        sibling.color = RED
                        self._rotate_right(sibling)
                        sibling = x.parent.right
                    sibling.color = x.parent.color
                    x.parent.color = BLACK
                    sibling.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                sibling = x.parent.left
                if sibling.color is RED:
                    sibling.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    sibling = x.parent.left
                if sibling.right.color is BLACK and sibling.left.color is BLACK:
                    sibling.color = RED
                    x = x.parent
                else:
                    if sibling.left.color is BLACK:
                        sibling.right.color = BLACK
                        sibling.color = RED
                        self._rotate_left(sibling)
                        sibling = x.parent.left
                    sibling.color = x.parent.color
                    x.parent.color = BLACK
                    sibling.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = BLACK
