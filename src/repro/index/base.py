"""Shared plumbing for the NVM index structures of Figure 12.

``NVMIndex`` tracks the logical data volume so the figure's metric —
programmed bits per written data bit — is uniform across structures, and the
value-store strategies implement the standalone vs. plugged-into-E2-NVM
split described in the package docstring.
"""

from __future__ import annotations

import abc
import struct

from repro.nvm.controller import MemoryController


class InlineValues:
    """Standalone mode: the structure stores value bytes itself."""

    plugged = False

    def store(self, value: bytes) -> bytes:
        """Return the bytes the structure should embed for this value."""
        return value

    def load(self, controller: MemoryController, stored: bytes) -> bytes:
        """Recover the value from the embedded bytes."""
        return stored

    def release(self, stored: bytes) -> None:
        """Nothing to free: the bytes die with the structure's node."""

    def extra_bits_programmed(self) -> int:
        """Programmed bits on storage the strategy owns (none inline)."""
        return 0


class PluggedValues:
    """Plugged mode: values are placed by an E2-NVM engine; the structure
    embeds an 8-byte little-endian address + 4-byte length pointer."""

    plugged = True
    POINTER_BYTES = 12

    def __init__(self, engine) -> None:
        self.engine = engine
        self._stats_base = engine.stats.snapshot()

    def store(self, value: bytes) -> bytes:
        addr, _ = self.engine.write(value)
        return struct.pack("<QI", addr, len(value))

    def load(self, controller: MemoryController, stored: bytes) -> bytes:
        addr, length = struct.unpack("<QI", stored[: self.POINTER_BYTES])
        return self.engine.controller.read(addr, length)

    def release(self, stored: bytes) -> None:
        addr, _ = struct.unpack("<QI", stored[: self.POINTER_BYTES])
        self.engine.release(addr)

    def extra_bits_programmed(self) -> int:
        delta = self.engine.stats.snapshot() - self._stats_base
        return delta.bits_programmed


class NVMIndex(abc.ABC):
    """An index structure persisted on simulated NVM.

    Args:
        controller: NVM front-end for the structure's own nodes.
        values: value-store strategy (:class:`InlineValues` or
            :class:`PluggedValues`).
    """

    name: str = "index"

    def __init__(
        self, controller: MemoryController, values=None
    ) -> None:
        self.controller = controller
        self.values = values if values is not None else InlineValues()
        self.logical_data_bits = 0
        self._stats_base = controller.stats.snapshot()

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update one key/value pair."""

    @abc.abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Look up a key; ``None`` when absent."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> bool:
        """Remove a key; returns whether it existed."""

    def record_data(self, key: bytes, value: bytes) -> None:
        """Account the logical payload of one write (for the Fig. 12 ratio)."""
        self.logical_data_bits += 8 * (len(key) + len(value))

    def bits_programmed(self) -> int:
        """Programmed bits since construction, on the structure's device
        plus (in plugged mode) the engine's device."""
        delta = self.controller.stats.snapshot() - self._stats_base
        return delta.bits_programmed + self.values.extra_bits_programmed()

    def bit_updates_per_data_bit(self) -> float:
        """The Figure 12 metric."""
        if not self.logical_data_bits:
            return 0.0
        return self.bits_programmed() / self.logical_data_bits


def encode_kv(key: bytes, stored_value: bytes) -> bytes:
    """Length-prefixed key/value encoding used by several structures."""
    return struct.pack("<HH", len(key), len(stored_value)) + key + stored_value


def decode_kv(buf: bytes, offset: int = 0) -> tuple[bytes, bytes, int]:
    """Inverse of :func:`encode_kv`; returns (key, value, bytes consumed)."""
    klen, vlen = struct.unpack_from("<HH", buf, offset)
    start = offset + 4
    key = buf[start : start + klen]
    value = buf[start + klen : start + klen + vlen]
    return key, value, 4 + klen + vlen
