"""WiscKey — Lu et al., TOS 2017 [35]: key/value separation.

Keys and small pointers live in an LSM tree; values are appended to a
separate value log (vLog).  Appends land on fresh (previously reclaimed)
media, so a value's flip cost is whatever differs from the stale bytes
there; sorted runs of (key, pointer) pairs are flushed from the DRAM
memtable and merged by compaction.

Layout on the structure's device: the first ``vlog_segments`` segments are
the circular vLog; the rest hold serialised sorted runs.  In plugged mode
the vLog is bypassed entirely — E2-NVM places each value instead.
"""

from __future__ import annotations

import struct

from repro.index.alloc import SegmentAllocator
from repro.index.base import NVMIndex, encode_kv
from repro.nvm.controller import MemoryController

_TOMBSTONE = object()


class _Run:
    """A sorted immutable (key -> pointer) run with its NVM segments."""

    __slots__ = ("keys", "pointers", "segments")

    def __init__(self, keys, pointers, segments) -> None:
        self.keys = keys
        self.pointers = pointers
        self.segments = segments

    def get(self, key: bytes):
        lo, hi = 0, len(self.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.keys) and self.keys[lo] == key:
            return self.pointers[lo]
        return None


class WiscKeyStore(NVMIndex):
    """LSM with key/value separation.

    Args:
        controller: device holding the vLog and the key runs.
        values: value-store strategy; plugged mode replaces the vLog.
        vlog_segments: segments reserved for the circular value log.
        memtable_limit: entries buffered in DRAM before a flush.
        max_runs: runs allowed before a full compaction.
    """

    name = "wisckey"

    def __init__(
        self,
        controller: MemoryController,
        values=None,
        vlog_segments: int = 16,
        memtable_limit: int = 64,
        max_runs: int = 4,
    ) -> None:
        super().__init__(controller, values)
        if vlog_segments >= controller.n_segments:
            raise ValueError("vlog_segments must leave room for key runs")
        self.vlog_segments = vlog_segments
        self.memtable_limit = memtable_limit
        self.max_runs = max_runs
        self._vlog_head = 0  # byte offset within the vLog region
        self._vlog_capacity = vlog_segments * controller.segment_size
        self._memtable: dict[bytes, object] = {}
        self._runs: list[_Run] = []
        self._alloc = SegmentAllocator(controller, start_segment=vlog_segments)

    # ------------------------------------------------------------ operations

    def put(self, key: bytes, value: bytes) -> None:
        self.record_data(key, value)
        if self.values.plugged:
            old = self._live_pointer(key)
            if old is not None:
                self.values.release(old)
            pointer = self.values.store(value)
        else:
            pointer = self._vlog_append(key, value)
        self._memtable[key] = pointer
        if len(self._memtable) >= self.memtable_limit:
            self._flush()

    def get(self, key: bytes) -> bytes | None:
        pointer = self._live_pointer(key)
        if pointer is None:
            return None
        return self._load_value(pointer)

    def delete(self, key: bytes) -> bool:
        pointer = self._live_pointer(key)
        if pointer is None:
            return False
        if self.values.plugged:
            self.values.release(pointer)
        self._memtable[key] = _TOMBSTONE
        if len(self._memtable) >= self.memtable_limit:
            self._flush()
        return True

    def _live_pointer(self, key: bytes):
        """The newest pointer for ``key``, or None if absent/tombstoned."""
        pointer = self._memtable.get(key)
        if pointer is None:
            for run in reversed(self._runs):
                pointer = run.get(key)
                if pointer is not None:
                    break
        if pointer is None or pointer is _TOMBSTONE:
            return None
        return pointer

    def __len__(self) -> int:
        live = {}
        for run in self._runs:
            for key, pointer in zip(run.keys, run.pointers):
                live[key] = pointer
        live.update(self._memtable)
        return sum(1 for p in live.values() if p is not _TOMBSTONE)

    # -------------------------------------------------------------- internals

    def _vlog_append(self, key: bytes, value: bytes) -> bytes:
        """Append the (key, value) record to the circular log; returns an
        (address, length) pointer to the value bytes."""
        record = encode_kv(key, value)
        seg_size = self.controller.segment_size
        if len(record) > seg_size:
            raise ValueError("vLog record exceeds one segment")
        # Records never straddle segments; skip to the next one if needed.
        room = seg_size - (self._vlog_head % seg_size)
        if len(record) > room:
            self._vlog_head += room
        if self._vlog_head + len(record) > self._vlog_capacity:
            self._vlog_head = 0  # wrap (stale bytes get overwritten)
        addr = self._vlog_head
        self.controller.write(addr, record)
        self._vlog_head += len(record)
        value_addr = addr + 4 + len(key)
        return struct.pack("<QI", value_addr, len(value))

    def _load_value(self, pointer: bytes) -> bytes:
        if self.values.plugged:
            return self.values.load(self.controller, pointer)
        addr, length = struct.unpack("<QI", pointer)
        return self.controller.read(addr, length)

    def _flush(self) -> None:
        if not self._memtable:
            return
        keys = sorted(self._memtable)
        pointers = [self._memtable[k] for k in keys]
        segments = self._write_run(keys, pointers)
        self._runs.append(_Run(keys, pointers, segments))
        self._memtable = {}
        if len(self._runs) > self.max_runs:
            self._compact()

    def _write_run(self, keys, pointers) -> list[int]:
        """Serialise (key, pointer) pairs into fresh run segments."""
        seg_size = self.controller.segment_size
        segments: list[int] = []
        buffer = b""
        for key, pointer in zip(keys, pointers):
            body = pointer if pointer is not _TOMBSTONE else b""
            flag = b"\x01" if pointer is _TOMBSTONE else b"\x00"
            record = flag + encode_kv(key, body)
            if len(buffer) + len(record) > seg_size:
                segments.append(self._flush_block(buffer))
                buffer = b""
            buffer += record
        if buffer:
            segments.append(self._flush_block(buffer))
        return segments

    def _flush_block(self, buffer: bytes) -> int:
        addr = self._alloc.allocate()
        self.controller.write(
            addr, buffer.ljust(self.controller.segment_size, b"\x00")
        )
        return addr

    def _compact(self) -> None:
        """Merge every run (newest wins), dropping tombstones."""
        merged: dict[bytes, object] = {}
        for run in self._runs:
            for key, pointer in zip(run.keys, run.pointers):
                merged[key] = pointer
        for run in self._runs:
            for segment in run.segments:
                self._alloc.free(segment)
        keys = sorted(k for k, p in merged.items() if p is not _TOMBSTONE)
        pointers = [merged[k] for k in keys]
        segments = self._write_run(keys, pointers)
        self._runs = [_Run(keys, pointers, segments)] if keys else []
