"""NoveLSM — Kannan et al., USENIX ATC 2018 [25]: an LSM redesigned for NVM.

NoveLSM's key idea is a *persistent NVM memtable* that is updated in place,
skipping the DRAM-memtable serialise-and-flush path for data already in NVM.
We model it as a slot array on NVM: a key's first insert claims a slot;
subsequent updates overwrite the same slot in place (the DCW substrate then
programs only the bytes that changed).  When the memtable fills, its live
entries are flushed to a sorted run (as in any LSM) and the slots recycle.

In plugged mode the slot stores a pointer and E2-NVM places the value.
"""

from __future__ import annotations

from repro.index.alloc import SegmentAllocator
from repro.index.base import NVMIndex, encode_kv
from repro.nvm.controller import MemoryController

_TOMBSTONE = object()


class NoveLSMStore(NVMIndex):
    """LSM with an in-place-updated persistent NVM memtable.

    Args:
        controller: device holding the memtable slots and the runs.
        values: value-store strategy.
        memtable_slots: capacity of the NVM memtable.
        slot_size: fixed bytes per memtable slot.
        max_runs: runs allowed before a full compaction.
    """

    name = "novelsm"

    def __init__(
        self,
        controller: MemoryController,
        values=None,
        memtable_slots: int = 64,
        slot_size: int = 64,
        max_runs: int = 4,
    ) -> None:
        super().__init__(controller, values)
        if slot_size > controller.segment_size or controller.segment_size % slot_size:
            raise ValueError("slot_size must evenly divide the segment size")
        self.memtable_slots = memtable_slots
        self.slot_size = slot_size
        self.max_runs = max_runs
        slots_per_segment = controller.segment_size // slot_size
        self._memtable_segments = -(-memtable_slots // slots_per_segment)
        if self._memtable_segments >= controller.n_segments:
            raise ValueError("device too small for the memtable")
        self._slot_of: dict[bytes, int] = {}
        self._free_slots = list(range(memtable_slots))
        self._slot_entry: dict[int, tuple[bytes, object]] = {}
        self._runs: list[dict[bytes, object]] = []
        self._run_segments: list[list[int]] = []
        self._alloc = SegmentAllocator(
            controller, start_segment=self._memtable_segments
        )

    # ------------------------------------------------------------ operations

    def put(self, key: bytes, value: bytes) -> None:
        self.record_data(key, value)
        stored = self.values.store(value)
        entry = encode_kv(key, stored)
        if len(entry) > self.slot_size:
            raise ValueError(
                f"entry of {len(entry)} bytes exceeds slot size {self.slot_size}"
            )
        slot = self._slot_of.get(key)
        if slot is None:
            if self.values.plugged:
                old = self._run_pointer(key)
                if old is not None:
                    self.values.release(old)
            if not self._free_slots:
                self._flush()
            slot = self._free_slots.pop()
            self._slot_of[key] = slot
        else:
            old = self._slot_entry[slot][1]
            if old is not _TOMBSTONE and self.values.plugged:
                self.values.release(old)
        # In-place overwrite of the slot: the differential write programs
        # only the changed bytes — NoveLSM's core saving.
        self.controller.write(
            self._slot_addr(slot), entry.ljust(self.slot_size, b"\x00")
        )
        self._slot_entry[slot] = (key, stored)

    def get(self, key: bytes) -> bytes | None:
        slot = self._slot_of.get(key)
        if slot is not None:
            _, stored = self._slot_entry[slot]
            if stored is _TOMBSTONE:
                return None
            self.controller.read(self._slot_addr(slot), self.slot_size)
            return self.values.load(self.controller, stored)
        for run in reversed(self._runs):
            if key in run:
                stored = run[key]
                if stored is _TOMBSTONE:
                    return None
                return self.values.load(self.controller, stored)
        return None

    def delete(self, key: bytes) -> bool:
        if self.get(key) is None:
            return False
        slot = self._slot_of.get(key)
        if slot is None:
            if self.values.plugged:
                old = self._run_pointer(key)
                if old is not None:
                    self.values.release(old)
            if not self._free_slots:
                self._flush()
            slot = self._free_slots.pop()
            self._slot_of[key] = slot
        else:
            _, old = self._slot_entry[slot]
            if old is not _TOMBSTONE and self.values.plugged:
                self.values.release(old)
        self._slot_entry[slot] = (key, _TOMBSTONE)
        return True

    def _run_pointer(self, key: bytes):
        """Newest run-resident stored value for ``key`` (None if absent)."""
        for run in reversed(self._runs):
            if key in run:
                stored = run[key]
                return None if stored is _TOMBSTONE else stored
        return None

    def __len__(self) -> int:
        live: dict[bytes, object] = {}
        for run in self._runs:
            live.update(run)
        for key, slot in self._slot_of.items():
            live[key] = self._slot_entry[slot][1]
        return sum(1 for v in live.values() if v is not _TOMBSTONE)

    # -------------------------------------------------------------- internals

    def _slot_addr(self, slot: int) -> int:
        seg_size = self.controller.segment_size
        slots_per_segment = seg_size // self.slot_size
        segment = slot // slots_per_segment
        offset = (slot % slots_per_segment) * self.slot_size
        return segment * seg_size + offset

    def _flush(self) -> None:
        """Write the memtable's live entries to a sorted run; free the slots."""
        entries = {
            key: self._slot_entry[slot][1]
            for key, slot in self._slot_of.items()
        }
        segments = self._write_run(entries)
        self._runs.append(entries)
        self._run_segments.append(segments)
        self._free_slots = list(range(self.memtable_slots))
        self._slot_of.clear()
        self._slot_entry.clear()
        if len(self._runs) > self.max_runs:
            self._compact()

    def _write_run(self, entries: dict[bytes, object]) -> list[int]:
        seg_size = self.controller.segment_size
        segments: list[int] = []
        buffer = b""
        for key in sorted(entries):
            stored = entries[key]
            body = stored if stored is not _TOMBSTONE else b""
            flag = b"\x01" if stored is _TOMBSTONE else b"\x00"
            record = flag + encode_kv(key, body)
            if len(buffer) + len(record) > seg_size:
                segments.append(self._flush_block(buffer))
                buffer = b""
            buffer += record
        if buffer:
            segments.append(self._flush_block(buffer))
        return segments

    def _flush_block(self, buffer: bytes) -> int:
        addr = self._alloc.allocate()
        self.controller.write(
            addr, buffer.ljust(self.controller.segment_size, b"\x00")
        )
        return addr

    def _compact(self) -> None:
        merged: dict[bytes, object] = {}
        for run in self._runs:
            merged.update(run)
        for segments in self._run_segments:
            for segment in segments:
                self._alloc.free(segment)
        live = {k: v for k, v in merged.items() if v is not _TOMBSTONE}
        segments = self._write_run(live)
        self._runs = [live] if live else []
        self._run_segments = [segments] if live else []
