"""Execution backends: where a shard's vertical slice actually runs.

Two interchangeable backends serve the facade:

- :class:`InProcessBackend` — N :class:`~repro.sharding.shard.Shard`
  objects in this process, one lock per shard.  The correctness baseline
  (and the fallback where ``fork`` + shared memory are unavailable): every
  behaviour of the sharded store is defined by this backend, and the
  process backend must match it.  Crash and hang cannot happen for real
  here, so the backend carries *simulation hooks*
  (:meth:`InProcessBackend.inject_crash` and friends) with the same
  observable surface — supervisor and circuit-breaker logic is testable
  in tier-1 without spawning a single process.
- :class:`ProcessBackend` — one worker *process* per shard, talking over a
  request/response pipe, with the shard's device content array backed by a
  ``multiprocessing.shared_memory.SharedMemory`` block the parent owns.
  Shards place, encode and write concurrently on real cores — the forward
  pass, DAP claim and media write of shard 2 never serialise behind shard
  0's GIL — so aggregate ops/s multiplies with the core count.

The shared-memory media is the crash story: a worker process dying
mid-operation (simulated power loss on one channel) takes its DRAM state
with it but not the media bytes.  :meth:`ProcessBackend.reopen_shard`
spawns a fresh worker that re-attaches to the same block and runs ordinary
undo-log recovery — only that shard's in-flight transaction rolls back;
every other shard never notices.

Liveness is supervised, not assumed:

- Every RPC has a **deadline**: the response wait is a
  ``Connection.poll(timeout)``, never a bare ``recv()``.  A worker that
  does not answer in time is *hung* — after a deadline the pipe is
  desynchronised (a late reply could pair with the wrong request), so the
  only safe recovery is to kill the worker and raise
  :class:`ShardHungError`; a fresh worker then re-attaches to the media.
- Every worker ships a **heartbeat**: a background thread stamping a
  monotonic timestamp into a shared value ~10×/s.  A SIGSTOP'd or
  wedged worker stops beating long before any RPC deadline expires, and
  the :class:`~repro.sharding.supervisor.ShardSupervisor` watchdog kills
  it from outside — which closes the pipe and wakes any in-flight
  ``poll`` immediately.
- **Teardown is bounded**: ``close()`` and ``reopen_shard()`` never issue
  an unbounded ``join()``/``recv()``; a worker that does not exit within
  its grace period is SIGTERM'd, then SIGKILL'd (SIGKILL also reaps
  SIGSTOP'd workers, which ignore SIGTERM while stopped).

Both backends speak the same protocol: ``call(shard_id, op, args)`` for one
shard, ``call_many(requests)`` to fan a batch out (the process backend
sends every request before collecting any response, which is where the
parallelism comes from).  When shards die mid-``call_many``, survivors'
results are **not** discarded: the raised error carries
``partial_results`` (aligned to the request list) and a per-shard
``shard_status`` map, so callers — and the facade's degraded mode — can
keep the committed work.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from multiprocessing import shared_memory
from multiprocessing.sharedctypes import RawValue
from threading import RLock

from repro.sharding.shard import Shard, ShardSpec
from repro.testing.faults import CrashError

#: Exit status a worker uses for a simulated crash (power loss on the
#: channel): no pipe response, no cleanup, media left as-is in shared
#: memory.
_CRASH_EXIT_STATUS = 17

#: Default per-op response deadline (seconds).  ``None`` entries in
#: ``op_deadlines`` disable the deadline for that op (the heartbeat
#: watchdog still covers a wedged worker).
DEFAULT_DEADLINE_S = 60.0

#: Ops whose duration is caller-controlled or legitimately long; their
#: deadline defaults to unbounded (watchdog-covered) instead of
#: ``deadline_s``.
DEFAULT_OP_DEADLINES: dict[str, float | None] = {
    "wait_retrain": None,
}

#: Seconds a worker gets to exit after SIGTERM before SIGKILL.
DEFAULT_KILL_GRACE_S = 1.0

#: Seconds a worker gets to answer ``__shutdown__`` and exit on close.
DEFAULT_CLOSE_GRACE_S = 5.0

#: Seconds a fresh worker gets to boot (build/recover its shard — model
#: training included, hence generous).
DEFAULT_BOOT_DEADLINE_S = 300.0

#: Worker heartbeat stamp period (seconds).
HEARTBEAT_INTERVAL_S = 0.05


class ShardUnavailableError(RuntimeError):
    """A shard cannot serve right now (dead worker, hung worker, or an
    open circuit breaker).

    Attributes:
        shard_ids: the affected shards, sorted.
        partial_results: set by ``call_many`` — results aligned to the
            request list, ``None`` for requests the unavailable shards
            owned.  Survivors' committed work is never discarded.
        shard_status: set by ``call_many`` — ``shard_id -> "ok" |
            "crashed" | "hung" | "error"`` for every shard in the batch.
    """

    def __init__(self, shard_ids: list[int], message: str) -> None:
        self.shard_ids = sorted(shard_ids)
        self.partial_results: list | None = None
        self.shard_status: dict[int, str] = {}
        super().__init__(message)


class ShardCrashedError(ShardUnavailableError):
    """A shard's worker process died mid-operation.

    The facade's data on every *other* shard is unaffected; call
    ``ShardedKVStore.reopen_shard(shard_id)`` (or let the
    :class:`~repro.sharding.supervisor.ShardSupervisor` do it) to recover
    the crashed one from its surviving shared-memory media (undo-log
    rollback included).
    """

    def __init__(self, shard_ids: list[int]) -> None:
        super().__init__(
            shard_ids,
            f"shard worker(s) {sorted(shard_ids)} died mid-operation; "
            "reopen_shard() recovers them from the surviving media",
        )


class ShardHungError(ShardCrashedError):
    """A shard's worker missed its response deadline (or its heartbeat
    went stale) and was killed.

    Subclasses :class:`ShardCrashedError` because after the kill the
    worker *is* dead and recovery is identical: a fresh worker re-attaches
    to the surviving media and rolls back the in-flight transaction.
    """

    def __init__(self, shard_ids: list[int], deadline_s: float | None) -> None:
        ShardUnavailableError.__init__(
            self,
            shard_ids,
            f"shard worker(s) {sorted(shard_ids)} missed their response "
            f"deadline ({deadline_s}s) and were killed; reopen_shard() "
            "recovers them from the surviving media",
        )
        self.deadline_s = deadline_s


class InProcessBackend:
    """All shards in this process; one lock per shard (per-shard lock
    domains — never a global one).

    Fault *simulation* hooks give this backend the same unavailability
    surface as the process backend, so supervisor/breaker/degraded-mode
    logic runs in tier-1:

    - :meth:`inject_crash` — subsequent calls raise
      :class:`ShardCrashedError` until :meth:`reopen_shard`.
    - :meth:`inject_hang` — the next call "misses its deadline": the
      shard is killed (marked crashed) and :class:`ShardHungError` is
      raised; the heartbeat age grows from the injection instant so a
      watchdog can also detect it without calling.
    - :meth:`inject_reopen_failures` — the next N ``reopen_shard`` calls
      raise, exercising restart-budget exhaustion.

    The simulation is *routing-level*: the shard object and its media are
    untouched (nothing actually dies in-process), which is exactly what
    supervisor logic needs — media-level crash fidelity lives in the
    process backend and the crash sweeps.  A real :class:`CrashError`
    escaping a shard op is converted to the same crashed state for
    parity.
    """

    def __init__(self, specs: list[ShardSpec], mode: str) -> None:
        self.specs = list(specs)
        self._shards = [Shard.build(spec, mode) for spec in specs]
        self._locks = [RLock() for _ in specs]
        self._crashed = [False] * len(specs)
        self._hung = [False] * len(specs)
        self._hang_since: list[float | None] = [None] * len(specs)
        self._reopen_failures = [0] * len(specs)
        self.kills = [0] * len(specs)
        self.reopens = [0] * len(specs)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard(self, shard_id: int) -> Shard:
        """Direct access for tests (twin-object comparisons)."""
        return self._shards[shard_id]

    # ------------------------------------------------------- fault simulation

    def inject_crash(self, shard_id: int) -> None:
        """Simulate the shard's worker dying: calls raise
        :class:`ShardCrashedError` until :meth:`reopen_shard`."""
        self._crashed[shard_id] = True

    def inject_hang(self, shard_id: int) -> None:
        """Simulate the shard's worker wedging: its heartbeat goes stale
        now, and the next call to it times out (killing it)."""
        self._hung[shard_id] = True
        self._hang_since[shard_id] = time.monotonic()

    def inject_reopen_failures(self, shard_id: int, times: int) -> None:
        """Make the next ``times`` reopen attempts of ``shard_id`` fail —
        the restart-budget-exhaustion drill."""
        self._reopen_failures[shard_id] = times

    # ----------------------------------------------------------------- calls

    def _check_available(self, shard_id: int) -> None:
        if self._hung[shard_id]:
            # The simulated deadline expires: kill the "worker" exactly as
            # the process backend would, then surface the hang.
            self.kill_shard(shard_id, hung=True)
            raise ShardHungError([shard_id], DEFAULT_DEADLINE_S)
        if self._crashed[shard_id]:
            raise ShardCrashedError([shard_id])

    def call(self, shard_id: int, op: str, args: tuple = (), kwargs=None):
        self._check_available(shard_id)
        with self._locks[shard_id]:
            try:
                return self._shards[shard_id].execute(op, args, kwargs)
            except CrashError:
                # Parity with a worker's os._exit: the shard is gone until
                # reopened.  (Routing-level only — in-process state is not
                # discarded; media-fidelity crashes live in the process
                # backend.)
                self._crashed[shard_id] = True
                raise ShardCrashedError([shard_id]) from None

    def call_many(
        self,
        requests: list[tuple[int, str, tuple, dict | None]],
        *,
        deadline: float | None = ...,
    ):
        """Execute ``(shard_id, op, args, kwargs)`` requests; results in
        request order.  Sequential here — the in-process backend is the
        semantics baseline, not the fast path — but failure semantics
        match the process backend: survivors still execute and their
        results ride on the raised error (``partial_results``).
        ``deadline`` is accepted for interface parity and ignored (calls
        run on the caller's thread)."""
        results: list = []
        status: dict[int, str] = {}
        first_error: BaseException | None = None
        for shard_id, op, args, kwargs in requests:
            try:
                results.append(self.call(shard_id, op, args, kwargs))
            except ShardHungError:
                status[shard_id] = "hung"
                results.append(None)
            except ShardCrashedError:
                status[shard_id] = "crashed"
                results.append(None)
            except Exception as exc:  # noqa: BLE001 - deferred like process
                status[shard_id] = "error"
                first_error = first_error or exc
                results.append(None)
            else:
                status.setdefault(shard_id, "ok")
        bad = [s for s, st in status.items() if st in ("crashed", "hung")]
        if bad:
            if all(status[s] == "hung" for s in bad):
                exc = ShardHungError(bad, DEFAULT_DEADLINE_S)
            else:
                exc = ShardCrashedError(bad)
            exc.partial_results = results
            exc.shard_status = status
            raise exc
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------- liveness

    def shard_alive(self, shard_id: int) -> bool:
        # A hung shard still counts as alive — exactly like a SIGSTOP'd
        # worker process, which the OS reports alive until the watchdog
        # (reading its stale heartbeat) kills it.
        return 0 <= shard_id < len(self._shards) and not self._crashed[
            shard_id
        ]

    def worker_pid(self, shard_id: int) -> int | None:
        """Interface parity with :class:`ProcessBackend`; in-process
        shards have no worker of their own."""
        return None

    def heartbeat_age(self, shard_id: int) -> float:
        """Seconds since the shard's last (simulated) heartbeat: 0 while
        healthy, growing from the :meth:`inject_hang` instant."""
        since = self._hang_since[shard_id]
        return 0.0 if since is None else time.monotonic() - since

    def kill_shard(self, shard_id: int, *, hung: bool = False) -> None:
        """Simulated SIGTERM→SIGKILL: the shard is crashed afterwards."""
        self._hung[shard_id] = False
        self._hang_since[shard_id] = None
        self._crashed[shard_id] = True
        self.kills[shard_id] += 1

    def reopen_shard(self, shard_id: int) -> None:
        """Recover a (simulated-)crashed shard: clear the fault flags.

        Raises while the shard is alive (parity with the process
        backend), and honours :meth:`inject_reopen_failures`."""
        if self.shard_alive(shard_id):
            raise RuntimeError(
                f"shard {shard_id} is alive; reopen is for crashed shards"
            )
        if self._reopen_failures[shard_id] > 0:
            self._reopen_failures[shard_id] -= 1
            raise RuntimeError(
                f"injected reopen failure on shard {shard_id}"
            )
        self._crashed[shard_id] = False
        self._hung[shard_id] = False
        self._hang_since[shard_id] = None
        self.reopens[shard_id] += 1

    def close(self) -> None:
        for shard in self._shards:
            shard.stop_maintenance()
        self._shards = []


def _send_error(conn, exc: BaseException) -> None:
    """Ship an exception to the parent, degrading to a picklable stand-in
    when the original will not survive the pipe."""
    try:
        conn.send(("err", exc))
    except Exception:
        conn.send(("err", RuntimeError(f"{type(exc).__name__}: {exc}")))


def _beat(heartbeat, stop: threading.Event) -> None:
    """Heartbeat loop: stamp a monotonic timestamp ~10×/s.  Runs as a
    daemon thread in the worker; a SIGSTOP freezes it (with every other
    thread), which is exactly the signal the watchdog reads."""
    while not stop.wait(HEARTBEAT_INTERVAL_S):
        heartbeat.value = time.monotonic()


def _shard_worker(conn, shm_name: str, spec: ShardSpec, mode: str, heartbeat) -> None:
    """Worker main: build the shard over the shared media, then serve the
    request/response loop until shutdown (or simulated crash).

    The heartbeat thread starts *before* the build so a worker stuck in
    model training still reads as alive; maintenance workers (scrubber /
    compactor / retrain ticker) are paused around each foreground op and
    stopped on clean shutdown."""
    shm = shared_memory.SharedMemory(name=shm_name)
    heartbeat.value = time.monotonic()
    beat_stop = threading.Event()
    threading.Thread(
        target=_beat, args=(heartbeat, beat_stop), daemon=True,
        name=f"shard-{spec.shard_id}-heartbeat",
    ).start()
    shard = None
    try:
        try:
            shard = Shard.build(spec, mode, content_buffer=shm.buf)
        except BaseException as exc:
            _send_error(conn, exc)
            return
        conn.send(("ready", spec.shard_id))
        while True:
            try:
                op, args, kwargs = conn.recv()
            except EOFError:
                return  # parent went away; nothing to serve
            if op == "__shutdown__":
                shard.stop_maintenance()
                conn.send(("ok", None))
                return
            shard.pause_maintenance()
            try:
                result = shard.execute(op, args, kwargs)
            except CrashError:
                # Simulated power loss on this channel: die without a
                # response or any cleanup.  The media bytes live in the
                # parent's shared-memory block and survive verbatim.
                os._exit(_CRASH_EXIT_STATUS)
            except BaseException as exc:
                _send_error(conn, exc)
            else:
                conn.send(("ok", result))
            finally:
                shard.resume_maintenance()
    finally:
        beat_stop.set()
        # Release our view of the media.  NumPy may still hold exported
        # buffer pointers through the device array; process exit reclaims
        # them either way.
        shard = None
        try:
            shm.close()
        except BufferError:
            pass


class _WorkerHandle:
    """Parent-side state of one shard worker.

    ``lock`` serialises the send→recv conversation (and reopen) per
    shard; ``kill_shard`` deliberately does *not* take it — an os-level
    kill closes the worker's pipe end, which wakes any in-flight
    ``poll`` immediately with EOF."""

    def __init__(self, spec: ShardSpec, shm) -> None:
        self.spec = spec
        self.shm = shm
        self.process = None
        self.conn = None
        self.crashed = False
        self.hung = False
        self.lock = RLock()
        self.heartbeat = RawValue("d", 0.0)
        self.spawned_at = 0.0


class ProcessBackend:
    """One worker process per shard over shared-memory media.

    Args:
        specs: one :class:`ShardSpec` per shard.
        mode: forwarded to :meth:`Shard.build` in each worker
            (``"create"`` or ``"open"``).  Workers build — including model
            training and recovery — **in parallel**: a sharded store
            recovers shard-by-shard on real cores.
        start_method: multiprocessing start method; default prefers
            ``fork`` (cheap, inherits the imported stack) and falls back
            to the platform default elsewhere.
        deadline_s: default per-RPC response deadline; a worker that
            does not answer in time is killed and the call raises
            :class:`ShardHungError`.  ``None`` disables deadlines (the
            heartbeat watchdog still covers wedged workers).
        op_deadlines: per-op deadline overrides (``{"op": seconds}``;
            ``None`` values mean unbounded for that op).  Merged over
            :data:`DEFAULT_OP_DEADLINES`.
        kill_grace_s: seconds between SIGTERM and SIGKILL when a worker
            must die.
        boot_deadline_s: seconds a fresh worker gets to report ready.
    """

    def __init__(
        self,
        specs: list[ShardSpec],
        mode: str,
        start_method: str | None = None,
        *,
        deadline_s: float | None = DEFAULT_DEADLINE_S,
        op_deadlines: dict[str, float | None] | None = None,
        kill_grace_s: float = DEFAULT_KILL_GRACE_S,
        close_grace_s: float = DEFAULT_CLOSE_GRACE_S,
        boot_deadline_s: float = DEFAULT_BOOT_DEADLINE_S,
    ) -> None:
        self.specs = list(specs)
        self.deadline_s = deadline_s
        self.op_deadlines = dict(DEFAULT_OP_DEADLINES)
        if op_deadlines:
            self.op_deadlines.update(op_deadlines)
        self.kill_grace_s = kill_grace_s
        self.close_grace_s = close_grace_s
        self.boot_deadline_s = boot_deadline_s
        self.kills = [0] * len(specs)
        self.reopens = [0] * len(specs)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        self._handles: list[_WorkerHandle] = []
        try:
            for spec in specs:
                shm = shared_memory.SharedMemory(
                    create=True, size=spec.capacity_bytes
                )
                self._handles.append(_WorkerHandle(spec, shm))
            for handle in self._handles:
                self._spawn(handle, mode)
            # All workers boot concurrently; collect readiness afterwards.
            for handle in self._handles:
                self._await_ready(handle)
        except BaseException:
            self.close()
            raise

    @property
    def n_shards(self) -> int:
        return len(self._handles)

    def _deadline_for(self, op: str) -> float | None:
        if op in self.op_deadlines:
            return self.op_deadlines[op]
        return self.deadline_s

    def _spawn(self, handle: _WorkerHandle, mode: str) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        handle.spawned_at = time.monotonic()
        handle.heartbeat.value = handle.spawned_at
        process = self._ctx.Process(
            target=_shard_worker,
            args=(
                child_conn, handle.shm.name, handle.spec, mode,
                handle.heartbeat,
            ),
            daemon=True,
            name=f"shard-{handle.spec.shard_id}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.crashed = False
        handle.hung = False

    def _await_ready(self, handle: _WorkerHandle) -> None:
        status, payload = self._recv(handle, self.boot_deadline_s)
        if status != "ready":
            raise payload

    def _recv(self, handle: _WorkerHandle, deadline: float | None):
        """Bounded response wait: ``poll(deadline)`` then ``recv()``.

        A missed deadline means the pipe is desynchronised (a late reply
        would pair with the wrong request), so the worker is killed and
        the call raises :class:`ShardHungError`.  A closed pipe (worker
        died, or the watchdog killed it from outside) raises
        :class:`ShardCrashedError`/:class:`ShardHungError` immediately —
        the RPC never outlives the worker."""
        try:
            if deadline is not None and not handle.conn.poll(deadline):
                self.kill_shard(handle.spec.shard_id, hung=True)
                raise ShardHungError([handle.spec.shard_id], deadline)
            return handle.conn.recv()
        except (EOFError, OSError):
            was_hung = handle.hung
            handle.crashed = True
            self._join_bounded(handle.process, self.kill_grace_s)
            if was_hung:
                raise ShardHungError(
                    [handle.spec.shard_id], deadline
                ) from None
            raise ShardCrashedError([handle.spec.shard_id]) from None

    def _send(self, handle: _WorkerHandle, message) -> None:
        if handle.crashed:
            if handle.hung:
                raise ShardHungError([handle.spec.shard_id], None)
            raise ShardCrashedError([handle.spec.shard_id])
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError):
            handle.crashed = True
            self._join_bounded(handle.process, self.kill_grace_s)
            raise ShardCrashedError([handle.spec.shard_id]) from None

    @staticmethod
    def _join_bounded(process, timeout: float) -> None:
        if process is not None:
            process.join(timeout)

    def call(
        self,
        shard_id: int,
        op: str,
        args: tuple = (),
        kwargs=None,
        *,
        deadline: float | None = ...,
    ):
        handle = self._handles[shard_id]
        if deadline is ...:
            deadline = self._deadline_for(op)
        with handle.lock:
            self._send(handle, (op, args, kwargs))
            status, payload = self._recv(handle, deadline)
        if status == "err":
            raise payload
        return payload

    def call_many(
        self,
        requests: list[tuple[int, str, tuple, dict | None]],
        *,
        deadline: float | None = ...,
    ):
        """Fan out: send every request before collecting any response, so
        the workers run concurrently.  At most one in-flight request per
        shard (the facade groups batches by shard before calling).
        ``deadline`` overrides the per-op defaults for every request in
        the batch (``None`` waits unbounded) — the close path uses this
        to keep a best-effort snapshot from waiting out a long op budget
        on a hung worker.

        If any worker dies or hangs mid-batch, the surviving shards'
        responses are still drained (their sub-batches commit normally)
        and a single :class:`ShardCrashedError`/:class:`ShardHungError`
        naming every dead shard is raised — with ``partial_results``
        (request-aligned, survivors' results included) and a per-shard
        ``shard_status`` map attached so callers can keep the committed
        work."""
        sent: list[tuple[int, _WorkerHandle, float | None] | None] = []
        status_by_shard: dict[int, str] = {}
        for shard_id, op, args, kwargs in requests:
            handle = self._handles[shard_id]
            handle.lock.acquire()
            try:
                self._send(handle, (op, args, kwargs))
            except ShardHungError:
                handle.lock.release()
                status_by_shard[shard_id] = "hung"
                sent.append(None)
            except ShardCrashedError:
                handle.lock.release()
                status_by_shard[shard_id] = "crashed"
                sent.append(None)
            else:
                sent.append((
                    shard_id,
                    handle,
                    self._deadline_for(op) if deadline is ... else deadline,
                ))
        results = []
        first_error: BaseException | None = None
        for entry in sent:
            if entry is None:
                results.append(None)
                continue
            shard_id, handle, deadline = entry
            try:
                status, payload = self._recv(handle, deadline)
            except ShardHungError:
                status_by_shard[shard_id] = "hung"
                results.append(None)
                continue
            except ShardCrashedError:
                status_by_shard[shard_id] = "crashed"
                results.append(None)
                continue
            finally:
                handle.lock.release()
            if status == "err":
                status_by_shard[shard_id] = "error"
                first_error = first_error or payload
                results.append(None)
            else:
                status_by_shard.setdefault(shard_id, "ok")
                results.append(payload)
        bad = sorted(
            s for s, st in status_by_shard.items() if st in ("crashed", "hung")
        )
        if bad:
            if all(status_by_shard[s] == "hung" for s in bad):
                exc = ShardHungError(bad, self.deadline_s)
            else:
                exc = ShardCrashedError(bad)
            exc.partial_results = results
            exc.shard_status = status_by_shard
            raise exc
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------- liveness

    def shard_alive(self, shard_id: int) -> bool:
        handle = self._handles[shard_id]
        return not handle.crashed and handle.process.is_alive()

    def worker_pid(self, shard_id: int) -> int | None:
        return self._handles[shard_id].process.pid

    def heartbeat_age(self, shard_id: int) -> float:
        """Seconds since the worker's last heartbeat stamp.  A SIGSTOP'd
        or wedged worker's age grows without bound; a healthy one stays
        around :data:`HEARTBEAT_INTERVAL_S`."""
        handle = self._handles[shard_id]
        last = max(handle.heartbeat.value, handle.spawned_at)
        return time.monotonic() - last

    def kill_shard(self, shard_id: int, *, hung: bool = False) -> None:
        """Forcibly end a worker: SIGTERM, bounded join, then SIGKILL.

        Deliberately lock-free: killing closes the worker's pipe end,
        which wakes any in-flight ``poll`` on this shard with EOF — a
        hung worker never blocks an RPC past the watchdog.  SIGKILL also
        reaps SIGSTOP'd workers (they ignore SIGTERM while stopped)."""
        handle = self._handles[shard_id]
        handle.hung = hung or handle.hung
        handle.crashed = True
        self.kills[shard_id] += 1
        process = handle.process
        if process is None or not process.is_alive():
            self._join_bounded(process, self.kill_grace_s)
            return
        process.terminate()
        process.join(self.kill_grace_s)
        if process.is_alive():
            process.kill()
            process.join(self.kill_grace_s)

    def reopen_shard(self, shard_id: int) -> None:
        """Recover a crashed or hung shard: spawn a fresh worker
        re-attached to the surviving shared-memory media and run normal
        recovery (undo rollback + catalog scan + DAP rebuild) there.

        Bounded: a still-running (hung) worker is killed first, every
        join carries a timeout, and the fresh worker's readiness wait is
        capped by ``boot_deadline_s``."""
        handle = self._handles[shard_id]
        with handle.lock:
            if not handle.crashed and handle.process.is_alive():
                raise RuntimeError(
                    f"shard {shard_id} is alive; reopen is for crashed "
                    "shards"
                )
            if handle.process is not None and handle.process.is_alive():
                # Marked crashed/hung but the OS process survives (e.g. a
                # SIGSTOP'd worker nobody killed yet): end it for real.
                self.kill_shard(shard_id, hung=handle.hung)
            handle.conn.close()
            self._join_bounded(handle.process, self.kill_grace_s)
            self._spawn(handle, "attach")
            self._await_ready(handle)
            self.reopens[shard_id] += 1

    def close(self) -> None:
        """Shut every worker down with bounded grace: a polite
        ``__shutdown__`` round first, then SIGTERM→SIGKILL for stragglers.
        Teardown can never hang the parent."""
        for handle in self._handles:
            if handle.conn is None:
                continue
            with handle.lock:
                if not handle.crashed and handle.process.is_alive():
                    try:
                        handle.conn.send(("__shutdown__", (), None))
                        if handle.conn.poll(self.close_grace_s):
                            handle.conn.recv()
                    except (EOFError, OSError, BrokenPipeError):
                        pass
                handle.conn.close()
            if handle.process is not None:
                handle.process.join(self.close_grace_s)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(self.kill_grace_s)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(self.kill_grace_s)
        for handle in self._handles:
            try:
                handle.shm.close()
                handle.shm.unlink()
            except (BufferError, FileNotFoundError):
                pass
        self._handles = []


# Re-exported for callers that want to SIGSTOP a worker in drills.
SIGSTOP = getattr(signal, "SIGSTOP", None)
