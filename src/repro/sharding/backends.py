"""Execution backends: where a shard's vertical slice actually runs.

Two interchangeable backends serve the facade:

- :class:`InProcessBackend` — N :class:`~repro.sharding.shard.Shard`
  objects in this process, one lock per shard.  The correctness baseline
  (and the fallback where ``fork`` + shared memory are unavailable): every
  behaviour of the sharded store is defined by this backend, and the
  process backend must match it.
- :class:`ProcessBackend` — one worker *process* per shard, talking over a
  request/response pipe, with the shard's device content array backed by a
  ``multiprocessing.shared_memory.SharedMemory`` block the parent owns.
  Shards place, encode and write concurrently on real cores — the forward
  pass, DAP claim and media write of shard 2 never serialise behind shard
  0's GIL — so aggregate ops/s multiplies with the core count.

The shared-memory media is the crash story: a worker process dying
mid-operation (simulated power loss on one channel) takes its DRAM state
with it but not the media bytes.  :meth:`ProcessBackend.reopen_shard`
spawns a fresh worker that re-attaches to the same block and runs ordinary
undo-log recovery — only that shard's in-flight transaction rolls back;
every other shard never notices.

Both backends speak the same protocol: ``call(shard_id, op, args)`` for one
shard, ``call_many(requests)`` to fan a batch out (the process backend
sends every request before collecting any response, which is where the
parallelism comes from).
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory
from threading import RLock

from repro.sharding.shard import Shard, ShardSpec
from repro.testing.faults import CrashError

#: Exit status a worker uses for a simulated crash (power loss on the
#: channel): no pipe response, no cleanup, media left as-is in shared
#: memory.
_CRASH_EXIT_STATUS = 17


class ShardCrashedError(RuntimeError):
    """A shard's worker process died mid-operation.

    The facade's data on every *other* shard is unaffected; call
    ``ShardedKVStore.reopen_shard(shard_id)`` to recover the crashed one
    from its surviving shared-memory media (undo-log rollback included).
    """

    def __init__(self, shard_ids: list[int]) -> None:
        self.shard_ids = sorted(shard_ids)
        super().__init__(
            f"shard worker(s) {self.shard_ids} died mid-operation; "
            "reopen_shard() recovers them from the surviving media"
        )


class InProcessBackend:
    """All shards in this process; one lock per shard (per-shard lock
    domains — never a global one)."""

    def __init__(self, specs: list[ShardSpec], mode: str) -> None:
        self.specs = list(specs)
        self._shards = [Shard.build(spec, mode) for spec in specs]
        self._locks = [RLock() for _ in specs]

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard(self, shard_id: int) -> Shard:
        """Direct access for tests (twin-object comparisons)."""
        return self._shards[shard_id]

    def call(self, shard_id: int, op: str, args: tuple = (), kwargs=None):
        with self._locks[shard_id]:
            return self._shards[shard_id].execute(op, args, kwargs)

    def call_many(self, requests: list[tuple[int, str, tuple, dict | None]]):
        """Execute ``(shard_id, op, args, kwargs)`` requests; results in
        request order.  Sequential here — the in-process backend is the
        semantics baseline, not the fast path."""
        return [
            self.call(shard_id, op, args, kwargs)
            for shard_id, op, args, kwargs in requests
        ]

    def shard_alive(self, shard_id: int) -> bool:
        return 0 <= shard_id < len(self._shards)

    def reopen_shard(self, shard_id: int) -> None:
        raise RuntimeError(
            "in-process shards cannot crash independently; reopen_shard is "
            "a process-backend operation"
        )

    def close(self) -> None:
        self._shards = []


def _send_error(conn, exc: BaseException) -> None:
    """Ship an exception to the parent, degrading to a picklable stand-in
    when the original will not survive the pipe."""
    try:
        conn.send(("err", exc))
    except Exception:
        conn.send(("err", RuntimeError(f"{type(exc).__name__}: {exc}")))


def _shard_worker(conn, shm_name: str, spec: ShardSpec, mode: str) -> None:
    """Worker main: build the shard over the shared media, then serve the
    request/response loop until shutdown (or simulated crash)."""
    shm = shared_memory.SharedMemory(name=shm_name)
    shard = None
    try:
        try:
            shard = Shard.build(spec, mode, content_buffer=shm.buf)
        except BaseException as exc:
            _send_error(conn, exc)
            return
        conn.send(("ready", spec.shard_id))
        while True:
            try:
                op, args, kwargs = conn.recv()
            except EOFError:
                return  # parent went away; nothing to serve
            if op == "__shutdown__":
                conn.send(("ok", None))
                return
            try:
                result = shard.execute(op, args, kwargs)
            except CrashError:
                # Simulated power loss on this channel: die without a
                # response or any cleanup.  The media bytes live in the
                # parent's shared-memory block and survive verbatim.
                os._exit(_CRASH_EXIT_STATUS)
            except BaseException as exc:
                _send_error(conn, exc)
            else:
                conn.send(("ok", result))
    finally:
        # Release our view of the media.  NumPy may still hold exported
        # buffer pointers through the device array; process exit reclaims
        # them either way.
        shard = None
        try:
            shm.close()
        except BufferError:
            pass


class _WorkerHandle:
    """Parent-side state of one shard worker."""

    def __init__(self, spec: ShardSpec, shm) -> None:
        self.spec = spec
        self.shm = shm
        self.process = None
        self.conn = None
        self.crashed = False


class ProcessBackend:
    """One worker process per shard over shared-memory media.

    Args:
        specs: one :class:`ShardSpec` per shard.
        mode: forwarded to :meth:`Shard.build` in each worker
            (``"create"`` or ``"open"``).  Workers build — including model
            training and recovery — **in parallel**: a sharded store
            recovers shard-by-shard on real cores.
        start_method: multiprocessing start method; default prefers
            ``fork`` (cheap, inherits the imported stack) and falls back
            to the platform default elsewhere.
    """

    def __init__(
        self,
        specs: list[ShardSpec],
        mode: str,
        start_method: str | None = None,
    ) -> None:
        self.specs = list(specs)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        self._handles: list[_WorkerHandle] = []
        try:
            for spec in specs:
                shm = shared_memory.SharedMemory(
                    create=True, size=spec.capacity_bytes
                )
                self._handles.append(_WorkerHandle(spec, shm))
            for handle in self._handles:
                self._spawn(handle, mode)
            # All workers boot concurrently; collect readiness afterwards.
            for handle in self._handles:
                self._await_ready(handle)
        except BaseException:
            self.close()
            raise

    @property
    def n_shards(self) -> int:
        return len(self._handles)

    def _spawn(self, handle: _WorkerHandle, mode: str) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_worker,
            args=(child_conn, handle.shm.name, handle.spec, mode),
            daemon=True,
            name=f"shard-{handle.spec.shard_id}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.crashed = False

    def _await_ready(self, handle: _WorkerHandle) -> None:
        status, payload = self._recv(handle)
        if status != "ready":
            raise payload

    def _recv(self, handle: _WorkerHandle):
        try:
            return handle.conn.recv()
        except (EOFError, OSError):
            handle.crashed = True
            handle.conn.close()
            handle.process.join()
            raise ShardCrashedError([handle.spec.shard_id]) from None

    def _send(self, handle: _WorkerHandle, message) -> None:
        if handle.crashed:
            raise ShardCrashedError([handle.spec.shard_id])
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError):
            handle.crashed = True
            handle.process.join()
            raise ShardCrashedError([handle.spec.shard_id]) from None

    def call(self, shard_id: int, op: str, args: tuple = (), kwargs=None):
        handle = self._handles[shard_id]
        self._send(handle, (op, args, kwargs))
        status, payload = self._recv(handle)
        if status == "err":
            raise payload
        return payload

    def call_many(self, requests: list[tuple[int, str, tuple, dict | None]]):
        """Fan out: send every request before collecting any response, so
        the workers run concurrently.  At most one in-flight request per
        shard (the facade groups batches by shard before calling).

        If any worker dies mid-batch, the surviving shards' responses are
        still drained (their sub-batches commit normally) and a single
        :class:`ShardCrashedError` naming every dead shard is raised."""
        sent: list[tuple[int, _WorkerHandle] | None] = []
        crashed: set[int] = set()
        for shard_id, op, args, kwargs in requests:
            handle = self._handles[shard_id]
            try:
                self._send(handle, (op, args, kwargs))
            except ShardCrashedError:
                crashed.add(shard_id)
                sent.append(None)
            else:
                sent.append((shard_id, handle))
        results = []
        first_error: BaseException | None = None
        for entry in sent:
            if entry is None:
                results.append(None)
                continue
            shard_id, handle = entry
            try:
                status, payload = self._recv(handle)
            except ShardCrashedError:
                crashed.add(shard_id)
                results.append(None)
                continue
            if status == "err":
                first_error = first_error or payload
                results.append(None)
            else:
                results.append(payload)
        if crashed:
            raise ShardCrashedError(sorted(crashed))
        if first_error is not None:
            raise first_error
        return results

    def shard_alive(self, shard_id: int) -> bool:
        handle = self._handles[shard_id]
        return not handle.crashed and handle.process.is_alive()

    def worker_pid(self, shard_id: int) -> int | None:
        return self._handles[shard_id].process.pid

    def reopen_shard(self, shard_id: int) -> None:
        """Recover a crashed shard: spawn a fresh worker re-attached to
        the surviving shared-memory media and run normal recovery (undo
        rollback + catalog scan + DAP rebuild) there."""
        handle = self._handles[shard_id]
        if not handle.crashed and handle.process.is_alive():
            raise RuntimeError(
                f"shard {shard_id} is alive; reopen is for crashed shards"
            )
        handle.conn.close()
        handle.process.join()
        self._spawn(handle, "attach")
        self._await_ready(handle)

    def close(self) -> None:
        for handle in self._handles:
            if handle.conn is None:
                continue
            if not handle.crashed and handle.process.is_alive():
                try:
                    handle.conn.send(("__shutdown__", (), None))
                    handle.conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    pass
            handle.conn.close()
            handle.process.join()
        for handle in self._handles:
            try:
                handle.shm.close()
                handle.shm.unlink()
            except (BufferError, FileNotFoundError):
                pass
        self._handles = []
