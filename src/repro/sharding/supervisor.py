"""Shard supervision: watchdog, self-healing restarts, circuit breakers.

PR 8 made shard crashes *isolated*; this module makes them *supervised*.
Real multi-channel controllers treat a channel fault as an event the
controller heals on its own — detect, reset, replay — not as something an
operator fixes by hand.  :class:`ShardSupervisor` is that loop for the
sharded store, running on the same single-flight
:class:`~repro.nvm.worker.MaintenanceWorker` machinery as the scrubber and
compactor:

- **Watchdog** — every shard worker ships a heartbeat (a monotonic stamp
  written ~10×/s from a daemon thread).  A worker whose heartbeat goes
  stale past ``heartbeat_timeout_s`` is *hung* — SIGSTOP'd, wedged in
  native code, or livelocked — and is killed from outside
  (``backend.kill_shard``: SIGTERM→SIGKILL; SIGKILL also reaps SIGSTOP'd
  processes).  Killing closes the worker's pipe, which wakes any
  in-flight RPC on that shard immediately.
- **Self-healing restarts** — a dead shard (crashed or freshly killed) is
  reopened automatically: a fresh worker re-attaches to the surviving
  shared-memory media and runs ordinary undo-log recovery.  Failed
  reopen attempts back off exponentially (``backoff_base_s`` doubling up
  to ``backoff_cap_s``).
- **Restart budget + circuit breaker** — each instability episode gets at
  most ``restart_budget`` reopen attempts.  A shard that exhausts the
  budget trips its per-shard breaker to ``open``: the supervisor stops
  burning restarts on it, and the facade's degraded-mode routing
  (``ShardedKVStore``, policies ``fail_fast`` / ``partial`` / ``block``)
  skips it — reads on it answer as misses under ``partial``.  A shard
  that stays healthy for ``stable_after_s`` after a reopen has its
  episode counter reset.  ``reset(shard_id)`` closes the breaker by
  hand (operator intervention) and heals immediately.

The supervisor is backend-agnostic: it only needs ``shard_alive``,
``heartbeat_age``, ``kill_shard`` and ``reopen_shard``, which both the
process backend (real processes, real signals) and the in-process backend
(simulation hooks — tier-1 testable) provide.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.nvm.worker import MaintenanceWorker
from repro.sharding.backends import ShardUnavailableError


class ShardCircuitOpenError(ShardUnavailableError):
    """The shard's circuit breaker is open: its restart budget is
    exhausted and the supervisor has stopped healing it.  Reads can be
    served as misses under the ``partial`` degraded policy;
    ``ShardSupervisor.reset(shard_id)`` re-arms healing."""

    def __init__(self, shard_ids: list[int]) -> None:
        super().__init__(
            shard_ids,
            f"shard(s) {sorted(shard_ids)} have an open circuit breaker "
            "(restart budget exhausted); ShardSupervisor.reset() re-arms "
            "healing",
        )


@dataclass
class ShardHealth:
    """Supervision state of one shard.

    ``breaker`` is ``"closed"`` (healthy / being healed) or ``"open"``
    (restart budget exhausted; shard parked until :meth:`reset`).
    """

    shard_id: int
    breaker: str = "closed"
    #: Reopen attempts in the *current* instability episode.
    attempts: int = 0
    #: Successful automatic reopens, lifetime.
    restarts: int = 0
    #: Watchdog kills (stale heartbeat), lifetime.
    watchdog_kills: int = 0
    #: Times the breaker tripped open, lifetime.
    breaker_trips: int = 0
    #: Monotonic instant the shard was first seen down this episode.
    down_since: float | None = None
    #: Monotonic instant of the last successful reopen.
    last_reopen_at: float = 0.0
    #: Earliest monotonic instant of the next reopen attempt (backoff).
    next_retry_at: float = 0.0
    last_error: str | None = None
    #: Seconds from fault detection to healthy, one entry per recovery.
    recovery_times_s: list[float] = field(default_factory=list)

    def snapshot(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "breaker": self.breaker,
            "attempts": self.attempts,
            "restarts": self.restarts,
            "watchdog_kills": self.watchdog_kills,
            "breaker_trips": self.breaker_trips,
            "down": self.down_since is not None,
            "last_error": self.last_error,
            "recovery_times_s": list(self.recovery_times_s),
        }


class ShardSupervisor(MaintenanceWorker):
    """Self-healing supervision loop over a ``ShardedKVStore``.

    Args:
        store: the facade to supervise; the supervisor registers itself
            via ``store.attach_supervisor`` so degraded-mode routing can
            consult breaker state.
        interval_s: sleep between supervision rounds.
        heartbeat_timeout_s: heartbeat staleness past which a live worker
            is declared hung and killed.  Must comfortably exceed the
            worker's stamp period (~0.05 s) and the longest stretch a
            healthy worker may go without scheduling its beat thread.
        restart_budget: reopen attempts per instability episode before
            the breaker trips.
        backoff_base_s: first retry delay after a failed reopen; doubles
            per failure up to ``backoff_cap_s``.
        stable_after_s: a shard alive this long after its last reopen has
            its episode counter reset (the next fault starts a fresh
            budget).
        auto_start: start the background loop immediately.
    """

    def __init__(
        self,
        store,
        *,
        interval_s: float = 0.05,
        heartbeat_timeout_s: float = 1.0,
        restart_budget: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        stable_after_s: float = 5.0,
        auto_start: bool = False,
    ) -> None:
        if restart_budget < 1:
            raise ValueError("restart_budget must be >= 1")
        if heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        super().__init__(interval_s=interval_s, name="shard-supervisor")
        self.store = store
        self.backend = store.backend
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.restart_budget = restart_budget
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.stable_after_s = stable_after_s
        self.health = [
            ShardHealth(shard_id) for shard_id in range(store.n_shards)
        ]
        # run_once may be driven both by the background loop and inline
        # (await_healthy, tests); one round at a time.
        self._round_lock = threading.Lock()
        store.attach_supervisor(self)
        if auto_start:
            self.start()

    # ------------------------------------------------------------- queries

    def breaker_open(self, shard_id: int) -> bool:
        return self.health[shard_id].breaker == "open"

    def open_breakers(self) -> list[int]:
        return [h.shard_id for h in self.health if h.breaker == "open"]

    def healthy(self) -> bool:
        """All shards alive with closed breakers."""
        return all(
            h.breaker == "closed" and self.backend.shard_alive(h.shard_id)
            for h in self.health
        )

    def await_healthy(self, timeout: float = 30.0) -> bool:
        """Block (polling) until :meth:`healthy` or ``timeout``; runs
        supervision rounds inline so callers need not wait for the
        background cadence."""
        deadline = time.monotonic() + timeout
        while True:
            self.run_once()
            if self.healthy():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(min(self.interval_s, 0.05))

    def await_shards(self, shard_ids, timeout: float = 30.0) -> bool:
        """Block (polling, supervision rounds inline) until every shard
        in ``shard_ids`` is alive with a closed breaker, or ``timeout``.
        The rebalancer's pause/resume hook: a drain blocked on a downed
        source or target waits on exactly those shards, not fleet-wide
        health."""
        wanted = sorted(set(shard_ids))
        deadline = time.monotonic() + timeout
        while True:
            self.run_once()
            if all(
                self.health[s].breaker == "closed"
                and self.backend.shard_alive(s)
                for s in wanted
            ):
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(min(self.interval_s, 0.05))

    def telemetry(self) -> dict:
        recoveries = [
            t for h in self.health for t in h.recovery_times_s
        ]
        return {
            "restarts": sum(h.restarts for h in self.health),
            "watchdog_kills": sum(h.watchdog_kills for h in self.health),
            "breaker_trips": sum(h.breaker_trips for h in self.health),
            "open_breakers": self.open_breakers(),
            "recovery_count": len(recoveries),
            "recovery_time_mean_s": (
                sum(recoveries) / len(recoveries) if recoveries else 0.0
            ),
            "recovery_time_max_s": max(recoveries, default=0.0),
            "shards": [h.snapshot() for h in self.health],
        }

    # ------------------------------------------------------------- healing

    def reset(self, shard_id: int) -> None:
        """Operator override: close the breaker, zero the episode budget
        and heal the shard now if it is down."""
        health = self.health[shard_id]
        health.breaker = "closed"
        health.attempts = 0
        health.next_retry_at = 0.0
        if not self.backend.shard_alive(shard_id):
            self._try_reopen(health, time.monotonic())

    def run_once(self) -> None:
        """One supervision round over every shard."""
        with self._round_lock:
            now = time.monotonic()
            for health in self.health:
                self._supervise(health, now)

    def _supervise(self, health: ShardHealth, now: float) -> None:
        shard_id = health.shard_id
        if health.breaker == "open":
            return
        if self.backend.shard_alive(shard_id):
            if (
                self.backend.heartbeat_age(shard_id)
                > self.heartbeat_timeout_s
            ):
                # Hung (SIGSTOP'd, wedged, livelocked): kill from outside.
                # The closed pipe wakes any in-flight RPC immediately; the
                # reopen below (or a later round) heals the shard.
                self.backend.kill_shard(shard_id, hung=True)
                health.watchdog_kills += 1
                health.last_error = "heartbeat stale; worker killed"
            else:
                if (
                    health.attempts
                    and now - health.last_reopen_at >= self.stable_after_s
                ):
                    health.attempts = 0  # episode over: budget refills
                return
        if health.down_since is None:
            health.down_since = now
        if now < health.next_retry_at:
            return
        if health.attempts >= self.restart_budget:
            health.breaker = "open"
            health.breaker_trips += 1
            health.last_error = (
                f"restart budget ({self.restart_budget}) exhausted; "
                "breaker open"
            )
            return
        self._try_reopen(health, now)

    def _try_reopen(self, health: ShardHealth, now: float) -> None:
        health.attempts += 1
        try:
            self.backend.reopen_shard(health.shard_id)
        except Exception as exc:  # noqa: BLE001 - supervision must survive
            health.last_error = repr(exc)
            backoff = min(
                self.backoff_cap_s,
                self.backoff_base_s * (2 ** (health.attempts - 1)),
            )
            health.next_retry_at = now + backoff
        else:
            if health.down_since is not None:
                health.recovery_times_s.append(
                    time.monotonic() - health.down_since
                )
            health.down_since = None
            health.last_reopen_at = time.monotonic()
            health.next_retry_at = 0.0
            health.restarts += 1
            health.last_error = None
