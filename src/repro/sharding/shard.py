"""One shard: a full vertical slice of the storage stack.

A shard owns its *entire* channel — ``NVMDevice`` + ``MemoryController`` +
``E2NVM`` engine (DAP, fast placement, retrain worker) + ``KVStore`` (and,
in durable mode, ``PersistentPool`` + ``PersistentCatalog``), plus optional
scrubber/compactor workers.  Nothing is shared between shards: each carries
its own clusters, model epoch, wear state and lock domain, so shards
compose with the E2-NVM placement scheme instead of fighting it
(Predict-and-Write's per-group clustering, PAPERS.md).

The same :class:`Shard` object serves both execution backends.  The
in-process backend holds N of them directly; the process backend builds one
*inside each worker* from a picklable :class:`ShardSpec`, with the device
content array living in a ``SharedMemory`` block owned by the parent — the
media survives a worker crash exactly like real NVM survives power loss,
and :meth:`Shard.build` re-attaches to it in ``"attach"`` mode to run
normal recovery.

With ``spec.maintenance`` set, the shard's scrubber/compactor — and a
:class:`RetrainTicker` driving the engine's retrain policy — run
*supervised inside the shard's own process* on the shared
:class:`~repro.nvm.worker.MaintenanceWorker` loop: each worker process
scrubs its own drift, compacts its own retirements and retrains its own
model on its own cadence, with no facade broadcast required.  Foreground
ops gate the loops (``pause_maintenance``/``resume_maintenance``), and
per-worker loop state rolls up through :meth:`Shard.execute` telemetry.

Every operation the facade fans out arrives through :meth:`Shard.execute`,
a single string-keyed dispatch — the request/response pipe protocol of the
process backend and the direct calls of the in-process backend stay
identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import E2NVMConfig
from repro.core.kvstore import KVStore
from repro.nvm.compactor import Compactor
from repro.nvm.controller import MemoryController
from repro.nvm.device import DriftConfig, NVMDevice, WearOutConfig
from repro.nvm.scrubber import Scrubber
from repro.nvm.worker import MaintenanceWorker
from repro.pmem.catalog import PersistentCatalog
from repro.pmem.pool import PersistentPool
from repro.testing.faults import CrashError, FaultInjector


class RetrainTicker(MaintenanceWorker):
    """Background retrain cadence: one ``engine.maybe_retrain()`` per
    round.  The policy decides FIRE/DEFER/SKIP; the ticker merely makes
    sure the policy is consulted without any facade involvement (the
    retrain itself runs on the engine's own single-flight worker and
    never blocks the write path)."""

    def __init__(self, engine, *, interval_s: float) -> None:
        super().__init__(interval_s=interval_s, name="retrain-ticker")
        self.engine = engine

    def run_once(self) -> bool:
        return self.engine.maybe_retrain()


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to (re)build one shard in any process.

    Specs are pickled into worker processes and serialised (minus the
    config/wearout/drift objects) into the store manifest, so every field
    is plain data.

    Attributes:
        shard_id: position of this shard in the facade's shard list.
        segment_size: bytes per segment of the shard's device.
        n_segments: segments on the shard's device.
        durable: build a transactional ``KVStore.create``/``open`` store
            over a :class:`PersistentPool` (with undo log and catalog);
            ``False`` builds the volatile store used by benchmarks.
        log_segments: undo-log segments of a durable shard's pool.
        key_capacity: catalog key capacity of a durable shard.
        seed: device initial-content seed (shards get distinct seeds so
            their initial free-content clusterings differ, as independent
            channels would).
        config: engine hyperparameters (each shard trains its own model).
        path: device snapshot file (``.npz``) of a durable shard;
            ``None`` for volatile shards, which cannot be reopened.
        scrubber: attach a scrubber to the store.
        compactor: attach a compactor to the store.
        maintenance: start the attached scrubber/compactor (and, when
            ``retrain_interval_s > 0``, a :class:`RetrainTicker`) on
            their own background cadence inside the shard's process,
            instead of leaving them manually driven.
        scrub_interval_s: sleep between in-shard scrub rounds.
        compact_interval_s: sleep between in-shard compaction rounds.
        retrain_interval_s: sleep between retrain-policy consultations
            (``0`` disables the ticker).
        wearout: optional endurance model for the shard's device.  Like
            ``config``, travels in code rather than the manifest —
            ``NVMDevice.load`` restores wear state from the snapshot on
            reopen.
        drift: optional retention-drift model, same manifest rules.
    """

    shard_id: int
    segment_size: int
    n_segments: int
    durable: bool = True
    log_segments: int = 2
    key_capacity: int = 32
    seed: int = 0
    config: E2NVMConfig = field(default_factory=E2NVMConfig)
    path: str | None = None
    scrubber: bool = False
    compactor: bool = False
    maintenance: bool = False
    scrub_interval_s: float = 0.05
    compact_interval_s: float = 0.1
    retrain_interval_s: float = 0.0
    wearout: WearOutConfig | None = None
    drift: DriftConfig | None = None

    @property
    def capacity_bytes(self) -> int:
        return self.n_segments * self.segment_size

    def manifest_entry(self) -> dict:
        """The JSON-serialisable slice of this spec (the config and the
        wearout/drift models travel in code, not in the manifest — they
        are constructor arguments on open, exactly like
        ``KVStore.open``'s config; device snapshots carry the wear/drift
        *state* themselves)."""
        return {
            "shard_id": self.shard_id,
            "segment_size": self.segment_size,
            "n_segments": self.n_segments,
            "durable": self.durable,
            "log_segments": self.log_segments,
            "key_capacity": self.key_capacity,
            "seed": self.seed,
            "path": self.path,
            "scrubber": self.scrubber,
            "compactor": self.compactor,
            "maintenance": self.maintenance,
            "scrub_interval_s": self.scrub_interval_s,
            "compact_interval_s": self.compact_interval_s,
            "retrain_interval_s": self.retrain_interval_s,
        }


class Shard:
    """One built vertical slice, dispatching facade operations."""

    def __init__(
        self,
        spec: ShardSpec,
        store: KVStore,
        device: NVMDevice,
        pool: PersistentPool | None = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.device = device
        self.pool = pool
        self.engine = store.engine
        self.faults: FaultInjector | None = None
        #: Background maintenance loops owned by this shard (scrubber,
        #: compactor, retrain ticker) in start order.
        self.maintenance_workers: list[MaintenanceWorker] = []

    # -------------------------------------------------------------- building

    @classmethod
    def build(
        cls, spec: ShardSpec, mode: str, content_buffer=None
    ) -> "Shard":
        """Build the slice described by ``spec``.

        Args:
            spec: the shard description.
            mode: ``"create"`` formats fresh media and trains the engine;
                ``"open"`` loads the device snapshot at ``spec.path`` and
                runs full recovery; ``"attach"`` re-adopts already-live
                media in ``content_buffer`` (the post-crash path of the
                process backend: the worker died, the shared-memory media
                did not) and runs the same recovery.
            content_buffer: optional external buffer backing the device
                content array (see :class:`NVMDevice`).
        """
        if mode not in ("create", "open", "attach"):
            raise ValueError(f"unknown shard build mode {mode!r}")
        if mode == "attach" and content_buffer is None:
            raise ValueError("attach mode needs the live content buffer")
        if mode != "create" and not spec.durable:
            raise ValueError(
                "volatile shards cannot be reopened (no catalog to "
                "recover from); only durable shards survive restarts"
            )
        if mode == "open":
            if spec.path is None:
                raise ValueError("open mode needs spec.path")
            device = NVMDevice.load(spec.path, content_buffer=content_buffer)
            if (
                device.capacity_bytes != spec.capacity_bytes
                or device.segment_size != spec.segment_size
            ):
                raise ValueError(
                    f"snapshot at {spec.path} has geometry "
                    f"{device.capacity_bytes}/{device.segment_size}, spec "
                    f"says {spec.capacity_bytes}/{spec.segment_size}"
                )
        else:
            wearout, drift = spec.wearout, spec.drift
            if spec.durable and (wearout is not None or drift is not None):
                # The undo log and catalog model over-provisioned metadata
                # media: a worn-out or drifted log record would (correctly)
                # be refused at recovery, so unless the caller chose a
                # prefix themselves the reserved region is made immortal —
                # the same default the crash-sweep harness applies.
                prefix = spec.log_segments + PersistentCatalog.meta_segments_for(
                    spec.n_segments,
                    spec.log_segments,
                    spec.segment_size,
                    spec.key_capacity,
                )
                if wearout is not None and wearout.immortal_prefix_segments == 0:
                    wearout = replace(
                        wearout, immortal_prefix_segments=prefix
                    )
                if drift is not None and drift.immortal_prefix_segments == 0:
                    drift = replace(drift, immortal_prefix_segments=prefix)
            device = NVMDevice(
                capacity_bytes=spec.capacity_bytes,
                segment_size=spec.segment_size,
                initial_fill="keep" if mode == "attach" else "random",
                seed=spec.seed,
                content_buffer=content_buffer,
                wearout=wearout,
                drift=drift,
            )
        if not spec.durable:
            from repro.core.e2nvm import E2NVM

            engine = E2NVM(MemoryController(device), spec.config)
            engine.train()
            store = KVStore(engine)
            shard = cls(spec, store, device, pool=None)
            if spec.maintenance and spec.retrain_interval_s > 0:
                shard.maintenance_workers.append(
                    RetrainTicker(engine, interval_s=spec.retrain_interval_s)
                )
            if spec.maintenance:
                shard.start_maintenance()
            return shard

        pool = PersistentPool(
            MemoryController(device),
            log_segments=spec.log_segments,
            meta_segments=PersistentCatalog.meta_segments_for(
                spec.n_segments,
                spec.log_segments,
                spec.segment_size,
                spec.key_capacity,
            ),
        )
        if mode == "create":
            store = KVStore.create(
                pool, config=spec.config, key_capacity=spec.key_capacity
            )
        else:
            store = KVStore.open(
                pool, config=spec.config, key_capacity=spec.key_capacity
            )
        shard = cls(spec, store, device, pool=pool)
        if spec.scrubber:
            shard.maintenance_workers.append(
                Scrubber(
                    store,
                    segments_per_round=spec.n_segments,
                    interval_s=spec.scrub_interval_s,
                )
            )
        if spec.compactor:
            shard.maintenance_workers.append(
                Compactor(store, interval_s=spec.compact_interval_s)
            )
        if spec.maintenance and spec.retrain_interval_s > 0:
            shard.maintenance_workers.append(
                RetrainTicker(
                    shard.engine, interval_s=spec.retrain_interval_s
                )
            )
        if spec.maintenance:
            shard.start_maintenance()
        return shard

    # -------------------------------------------------------- maintenance

    def start_maintenance(self) -> int:
        """Start every attached maintenance loop (idempotent per worker);
        returns how many are running."""
        for worker in self.maintenance_workers:
            worker.start()
        return sum(w.running for w in self.maintenance_workers)

    def stop_maintenance(self, timeout: float | None = 5.0) -> None:
        """Stop and join every maintenance loop (bounded joins)."""
        for worker in self.maintenance_workers:
            worker.stop(timeout)

    def pause_maintenance(self) -> None:
        """Gate the loops around a foreground op: no *new* round starts
        until :meth:`resume_maintenance` (an in-flight bounded round may
        complete — rounds are budgeted precisely so this is cheap)."""
        for worker in self.maintenance_workers:
            worker.pause()

    def resume_maintenance(self) -> None:
        for worker in self.maintenance_workers:
            worker.resume()

    def maintenance_info(self) -> list[dict]:
        return [w.info() for w in self.maintenance_workers]

    # ------------------------------------------------------------ dispatch

    def execute(self, op: str, args: tuple = (), kwargs: dict | None = None):
        """Run one facade operation; the single entry point both backends
        use, so in-process and worker-process shards behave identically."""
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ValueError(f"unknown shard op {op!r}")
        return handler(*args, **(kwargs or {}))

    # Operations.  Results must be picklable (they cross the process
    # backend's response pipe).

    def _op_put(self, key: bytes, value: bytes) -> int:
        return self.store.put(key, value)

    def _op_put_many(self, items: list[tuple[bytes, bytes]]) -> list[int]:
        return self.store.put_many(items)

    def _op_get(self, key: bytes) -> bytes | None:
        return self.store.get(key)

    def _op_get_many(self, keys: list[bytes]) -> list[bytes | None]:
        return [self.store.get(key) for key in keys]

    def _op_delete(self, key: bytes) -> bool:
        return self.store.delete(key)

    def _op_copy_absent(
        self, items: list[tuple[bytes, bytes]]
    ) -> list[bool]:
        """Rebalance copy target: insert each pair only if the key is
        absent here.  A foreground write that already landed on this
        shard (the key's *new* owner) must win over the stale source
        copy, so presence — whatever the value — suppresses the insert.
        Returns per-item whether the insert happened."""
        inserted = []
        for key, value in items:
            if self.store.get(key) is None:
                self.store.put(key, value)
                inserted.append(True)
            else:
                inserted.append(False)
        return inserted

    def _op_delete_many(self, keys: list[bytes]) -> list[bool]:
        """Rebalance delete-from-source: drop each key (idempotent —
        replaying after a crash deletes nothing twice)."""
        return [self.store.delete(key) for key in keys]

    def _op_len(self) -> int:
        return len(self.store)

    def _op_keys(self) -> list[bytes]:
        return list(self.store.keys())

    def _op_retrain(self) -> bool:
        """Epoch-bumping broadcast target: start this shard's background
        retrain (single-flight; never blocks the write path)."""
        try:
            self.engine.train_async()
        except RuntimeError:
            return False
        return True

    def _op_wait_retrain(self, timeout: float | None = None) -> bool:
        return self.engine.wait_for_retrain(timeout)

    def _op_drain_relocations(self, budget: int | None = None) -> int:
        return self.store.drain_relocations(budget)

    def _op_save(self, path: str | None = None) -> str:
        """Persist the device snapshot (close path of durable shards)."""
        target = path or self.spec.path
        if target is None:
            raise ValueError("volatile shard has no snapshot path")
        self.device.save(target)
        return target

    def _op_recovery_report(self):
        return self.store.recovery

    def _op_model_epoch(self) -> int:
        return self.engine._model_epoch

    def _op_age(self, cycles: int) -> int:
        """Accelerated media aging on this shard's device (chaos/lifetime
        drills); returns newly dead cells."""
        return self.device.age(cycles)

    def _op_advance_time(self, ticks: int) -> int:
        """Advance this shard's retention clock (drift model); returns
        newly drifted cells."""
        return self.device.advance_time(ticks)

    def _op_scrub_round(self) -> dict:
        """One synchronous scrub round (manual drive / tests)."""
        if self.store.scrubber is None:
            raise RuntimeError("shard has no scrubber attached")
        return self.store.scrubber.scrub_round()

    def _op_start_maintenance(self) -> int:
        return self.start_maintenance()

    def _op_stop_maintenance(self, timeout: float | None = 5.0) -> None:
        self.stop_maintenance(timeout)

    def _op_pause_maintenance(self) -> None:
        self.pause_maintenance()

    def _op_resume_maintenance(self) -> None:
        self.resume_maintenance()

    def _op_maintenance_info(self) -> list[dict]:
        return self.maintenance_info()

    def _op_arm_crash(
        self, site: str, after: int = 0, torn_fraction: float | None = None
    ) -> None:
        """Arm a :class:`CrashError` at ``site`` — the crash-sweep hook of
        the sharded harness.  In a worker process the resulting crash kills
        the *process* (``os._exit``), modelling one channel's controller
        dying mid-operation while the media (shared memory) survives."""
        if self.faults is None:
            self.faults = FaultInjector()
            self.engine.faults = self.faults
            self.store.engine.faults = self.faults
            self.device.faults = self.faults
            if self.pool is not None:
                self.pool.faults = self.faults
        self.faults.arm(
            site, error=CrashError, after=after, torn_fraction=torn_fraction
        )

    def _op_telemetry(self) -> dict:
        """Everything the facade aggregates, in one picklable dict.

        Counter semantics matter for the rollup: plain counts (cache hits,
        writes, energy) aggregate by *sum*; latencies ship as ``(total
        seconds, count)`` pairs so the facade can weight by count instead
        of averaging per-shard means (see
        ``ShardedKVStore.telemetry``)."""
        engine = self.engine
        pipeline = engine.pipeline
        stats = self.device.stats
        out = {
            "shard_id": self.spec.shard_id,
            "n_keys": len(self.store),
            "read_only": self.store.read_only,
            "placement": engine.placement_telemetry(),
            "prediction_count": pipeline.prediction_count,
            "prediction_seconds": pipeline.prediction_seconds,
            "retrain": {
                "started": engine.retrain_stats.started,
                "succeeded": engine.retrain_stats.succeeded,
                "failed": engine.retrain_stats.failed,
                "deferred": engine.retrain_stats.deferred,
            },
            "model_epoch": engine._model_epoch,
            "device": {
                "writes": stats.writes,
                "reads": stats.reads,
                "bits_programmed": stats.bits_programmed,
                "bits_flipped": stats.bits_flipped,
                "write_energy_pj": stats.write_energy_pj,
                "read_energy_pj": stats.read_energy_pj,
                "write_latency_ns": stats.write_latency_ns,
                "read_latency_ns": stats.read_latency_ns,
            },
            "wear": {
                "max_segment_writes": int(
                    self.device.segment_write_count.max()
                ),
                "total_segment_writes": int(
                    self.device.segment_write_count.sum()
                ),
            },
        }
        if self.store.scrubber is not None:
            out["scrub"] = self.store.scrubber.telemetry()
        if self.store.compactor is not None:
            out["compaction"] = self.store.compactor.telemetry()
        if self.maintenance_workers:
            out["maintenance"] = self.maintenance_info()
        return out
