"""Seeded consistent-hash ring mapping keys to shards.

The ring must behave identically in every process that consults it — the
facade routes in the parent while each shard validates in its worker — so
hashing is built on :func:`hashlib.blake2b` keyed by the ring seed, never on
Python's per-process salted ``hash()``.

Consistent hashing (rather than ``crc32(key) % N``) keeps the door open for
shard-count changes: adding a shard moves only the keys whose ring arc it
claims, roughly ``1/N`` of the space, instead of reshuffling almost
everything.  Each shard owns ``vnodes`` points on the ring so arc lengths —
and with them the per-shard key share — stay near-uniform.
"""

from __future__ import annotations

import bisect
import hashlib
import struct

_POINT = struct.Struct("<Q")


def _hash64(data: bytes, seed: int) -> int:
    """Stable 64-bit hash of ``data`` under ``seed`` (process-independent)."""
    digest = hashlib.blake2b(
        data, digest_size=8, key=seed.to_bytes(8, "little", signed=False)
    ).digest()
    return _POINT.unpack(digest)[0]


class HashRing:
    """Consistent-hash ring over byte keys.

    Args:
        n_shards: number of shards; keys map to ``0 .. n_shards - 1``.
        seed: ring seed.  Two rings built with the same ``(n_shards, seed,
            vnodes)`` make identical routing decisions in any process.
        vnodes: virtual nodes per shard; more points mean more uniform
            per-shard key shares at slightly larger ring state.
    """

    def __init__(self, n_shards: int, seed: int = 0, vnodes: int = 128) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        if not 0 <= seed < 2**64:
            raise ValueError("seed must fit in 64 unsigned bits")
        self.n_shards = n_shards
        self.seed = seed
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(vnodes):
                label = b"shard:%d:%d" % (shard, replica)
                points.append((_hash64(label, seed), shard))
        points.sort()
        # Ties (two vnodes hashing identically) would make the owner depend
        # on sort stability of the insertion order; the sort on the (hash,
        # shard) pair resolves them deterministically to the lowest shard.
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def shard_of(self, key: bytes) -> int:
        """Owning shard of ``key``: the first ring point at or after the
        key's hash, wrapping past the top of the ring."""
        if not isinstance(key, bytes):
            raise TypeError("keys must be bytes")
        h = _hash64(key, self.seed)
        i = bisect.bisect_left(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._owners[i]

    def partition(self, keys) -> dict[int, list[int]]:
        """Group key *indices* by owning shard, preserving input order
        within each group — the facade's batch-routing primitive."""
        groups: dict[int, list[int]] = {}
        for i, key in enumerate(keys):
            groups.setdefault(self.shard_of(key), []).append(i)
        return groups

    def describe(self) -> dict:
        """Ring parameters for the manifest (rebuild with ``HashRing(**d)``)."""
        return {
            "n_shards": self.n_shards,
            "seed": self.seed,
            "vnodes": self.vnodes,
        }
