"""Seeded consistent-hash ring mapping keys to shards.

The ring must behave identically in every process that consults it — the
facade routes in the parent while each shard validates in its worker — so
hashing is built on :func:`hashlib.blake2b` keyed by the ring seed, never on
Python's per-process salted ``hash()``.

Consistent hashing (rather than ``crc32(key) % N``) keeps the door open for
shard-count changes: adding a shard moves only the keys whose ring arc it
claims, roughly ``1/N`` of the space, instead of reshuffling almost
everything.  Each shard owns ``vnodes`` points on the ring so arc lengths —
and with them the per-shard key share — stay near-uniform.

**Weights.** A shard's point count scales with its weight
(``max(1, round(vnodes * weight))``), so a shard weighted ``2.0`` owns
roughly twice the key share of a shard weighted ``1.0`` — the knob the
rebalancer turns to steer traffic away from worn channels.  Replica labels
are unchanged (``shard:<id>:<replica>``), so growing a weight only *adds*
points: the shard keeps every arc it already owned and claims new ones,
which is what keeps weight changes incremental instead of a reshuffle.

**Diffs.** :meth:`HashRing.diff` compares two same-seed rings and
enumerates exactly the moved arcs — the half-open hash intervals
``(lo, hi]`` whose owner differs between the rings.  A key changes owner
iff its hash falls in a moved arc (:meth:`RingDiff.covers`), which is the
property the rebalancer (and its Hypothesis test) is built on.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import struct
from dataclasses import dataclass

_POINT = struct.Struct("<Q")

_SPACE = 2**64


def _hash64(data: bytes, seed: int) -> int:
    """Stable 64-bit hash of ``data`` under ``seed`` (process-independent)."""
    digest = hashlib.blake2b(
        data, digest_size=8, key=seed.to_bytes(8, "little", signed=False)
    ).digest()
    return _POINT.unpack(digest)[0]


@dataclass(frozen=True)
class MovedArc:
    """One hash interval ``(lo, hi]`` whose owner changed between rings.

    ``wraps`` marks the arc crossing the top of the ring: it covers
    ``(lo, 2^64) ∪ [0, hi]``.  ``source`` is the old owner (keys there
    must drain away), ``target`` the new one.
    """

    lo: int
    hi: int
    source: int
    target: int

    @property
    def wraps(self) -> bool:
        return self.lo >= self.hi

    @property
    def span(self) -> int:
        """Number of hash values the arc covers."""
        if self.wraps:
            return _SPACE - self.lo + self.hi
        return self.hi - self.lo

    def covers_hash(self, h: int) -> bool:
        if self.wraps:
            return h > self.lo or h <= self.hi
        return self.lo < h <= self.hi


class RingDiff:
    """The exact set of arcs that change owner between two rings.

    Built by :meth:`HashRing.diff`.  ``covers(key)`` is equivalent to
    ``old.shard_of(key) != new.shard_of(key)`` — the moved arcs *are* the
    ownership change, not an approximation of it.
    """

    def __init__(self, arcs: list[MovedArc]) -> None:
        self.arcs = list(arcs)
        self._wrap = next((a for a in self.arcs if a.wraps), None)
        self._plain = sorted(
            (a for a in self.arcs if not a.wraps), key=lambda a: a.hi
        )
        self._his = [a.hi for a in self._plain]
        self.seed: int | None = None

    def covers_hash(self, h: int) -> bool:
        if self._wrap is not None and self._wrap.covers_hash(h):
            return True
        i = bisect.bisect_left(self._his, h)
        return i < len(self._plain) and self._plain[i].covers_hash(h)

    def covers(self, key: bytes) -> bool:
        """Whether ``key`` changes owner (its hash lies in a moved arc)."""
        if self.seed is None:
            raise ValueError("diff carries no seed; use covers_hash")
        return self.covers_hash(_hash64(key, self.seed))

    @property
    def pairs(self) -> set[tuple[int, int]]:
        """Distinct ``(source, target)`` shard pairs with keys in motion."""
        return {(a.source, a.target) for a in self.arcs}

    @property
    def sources(self) -> set[int]:
        return {a.source for a in self.arcs}

    @property
    def moved_fraction(self) -> float:
        """Fraction of the hash space that changed owner."""
        return sum(a.span for a in self.arcs) / _SPACE

    def __len__(self) -> int:
        return len(self.arcs)

    def __bool__(self) -> bool:
        return bool(self.arcs)


class HashRing:
    """Consistent-hash ring over byte keys.

    Args:
        n_shards: number of shards; keys map to ``0 .. n_shards - 1``.
        seed: ring seed.  Two rings built with the same ``(n_shards, seed,
            vnodes, weights)`` make identical routing decisions in any
            process.
        vnodes: virtual nodes per unit of weight; more points mean more
            uniform per-shard key shares at slightly larger ring state.
        weights: optional per-shard weights (positive, finite; length
            ``n_shards``).  A shard owns ``max(1, round(vnodes * weight))``
            ring points, so its expected key share scales with its weight.
            ``None`` means uniform ``1.0`` — identical to the unweighted
            ring, point for point.
    """

    def __init__(
        self,
        n_shards: int,
        seed: int = 0,
        vnodes: int = 128,
        weights=None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        if not 0 <= seed < 2**64:
            raise ValueError("seed must fit in 64 unsigned bits")
        if weights is None:
            weights = (1.0,) * n_shards
        else:
            weights = tuple(float(w) for w in weights)
            if len(weights) != n_shards:
                raise ValueError(
                    f"weights has {len(weights)} entries for {n_shards} shards"
                )
            if any(not math.isfinite(w) or w <= 0.0 for w in weights):
                raise ValueError("weights must be positive and finite")
        self.n_shards = n_shards
        self.seed = seed
        self.vnodes = vnodes
        self.weights = weights
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(self.vnodes_of(shard)):
                label = b"shard:%d:%d" % (shard, replica)
                points.append((_hash64(label, seed), shard))
        points.sort()
        # Ties (two vnodes hashing identically) would make the owner depend
        # on sort stability of the insertion order; the sort on the (hash,
        # shard) pair resolves them deterministically to the lowest shard.
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def vnodes_of(self, shard: int) -> int:
        """Ring points owned by ``shard`` under its weight."""
        return max(1, round(self.vnodes * self.weights[shard]))

    def hash_key(self, key: bytes) -> int:
        """The key's 64-bit ring position (exposed for diff/arc tooling)."""
        if not isinstance(key, bytes):
            raise TypeError("keys must be bytes")
        return _hash64(key, self.seed)

    def _owner_at(self, h: int) -> int:
        """Owner of hash position ``h``: the first ring point at or after
        it, wrapping past the top of the ring."""
        i = bisect.bisect_left(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._owners[i]

    def shard_of(self, key: bytes) -> int:
        """Owning shard of ``key``."""
        return self._owner_at(self.hash_key(key))

    def partition(self, keys) -> dict[int, list[int]]:
        """Group key *indices* by owning shard, preserving input order
        within each group — the facade's batch-routing primitive."""
        groups: dict[int, list[int]] = {}
        for i, key in enumerate(keys):
            groups.setdefault(self.shard_of(key), []).append(i)
        return groups

    def with_weights(self, weights) -> "HashRing":
        """A new ring with the same shard count/seed/vnodes and the given
        weights — the rebalancer's plan primitive."""
        return HashRing(
            self.n_shards, seed=self.seed, vnodes=self.vnodes, weights=weights
        )

    def describe(self) -> dict:
        """Ring parameters for the manifest (rebuild with ``HashRing(**d)``).

        ``weights`` is emitted only when non-uniform, so manifests of
        unweighted stores — including every pre-weights manifest on disk —
        keep their exact shape and round-trip unchanged."""
        out = {
            "n_shards": self.n_shards,
            "seed": self.seed,
            "vnodes": self.vnodes,
        }
        if any(w != 1.0 for w in self.weights):
            out["weights"] = list(self.weights)
        return out

    @staticmethod
    def diff(old: "HashRing", new: "HashRing") -> RingDiff:
        """Enumerate exactly the arcs whose owner differs between two
        same-seed rings.

        The union of both rings' points splits the hash space into
        elementary arcs on which both ownership functions are constant;
        each arc where they disagree becomes a :class:`MovedArc` (adjacent
        arcs moving between the same pair coalesce).  A key changes owner
        iff its hash lies in a moved arc — exactly, not approximately.
        """
        if old.seed != new.seed:
            raise ValueError(
                "rings hash with different seeds; their positions are not "
                "comparable"
            )
        bounds = sorted(set(old._hashes) | set(new._hashes))
        arcs: list[MovedArc] = []
        for i, hi in enumerate(bounds):
            # i == 0 pairs with bounds[-1]: the wrap arc over the ring top.
            lo = bounds[i - 1]
            source = old._owner_at(hi)
            target = new._owner_at(hi)
            if source == target:
                continue
            if (
                arcs
                and arcs[-1].hi == lo
                and arcs[-1].source == source
                and arcs[-1].target == target
            ):
                arcs[-1] = MovedArc(
                    lo=arcs[-1].lo, hi=hi, source=source, target=target
                )
            else:
                arcs.append(MovedArc(lo=lo, hi=hi, source=source, target=target))
        diff = RingDiff(arcs)
        diff.seed = old.seed
        return diff
