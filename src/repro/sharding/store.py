"""`ShardedKVStore`: one KV facade over N independent shard slices.

The facade owns a :class:`~repro.sharding.ring.HashRing` and an execution
backend (in-process or per-shard worker processes) and presents the same
surface as a single :class:`~repro.core.kvstore.KVStore`:

- Point ops route by the ring to exactly one shard.
- Batch ops (``put_many``/``get_many``) partition their keys by shard and
  issue **one engine call per shard** — batched inference inside each
  shard is preserved, and with the process backend the per-shard
  sub-batches run concurrently on real cores.
- Epoch-bumping events (``retrain()``) broadcast per shard; each shard
  bumps its own model epoch under its own lock — there is no global lock
  to convoy on.
- Telemetry aggregates across shards with counter-correct semantics: plain
  counters sum, latencies are re-derived from summed ``(seconds, count)``
  pairs (weighted by count — never an average of per-shard means).

Durable stores live in a directory: one device snapshot per shard plus a
JSON manifest recording the shard count, ring parameters and per-shard
geometry/paths, so ``open()`` rebuilds the identical ring (same routing)
and recovers shard by shard — in parallel under the process backend.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import E2NVMConfig
from repro.sharding.backends import InProcessBackend, ProcessBackend
from repro.sharding.ring import HashRing
from repro.sharding.shard import ShardSpec

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Aggregate-by-sum keys of each shard's placement telemetry.
_PLACEMENT_SUM_KEYS = (
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_invalidations",
    "cache_entries",
    "cache_capacity",
    "student_served",
    "student_deferred",
    "teacher_served",
)
_DEVICE_SUM_KEYS = (
    "writes",
    "reads",
    "bits_programmed",
    "bits_flipped",
    "write_energy_pj",
    "read_energy_pj",
    "write_latency_ns",
    "read_latency_ns",
)
_RETRAIN_SUM_KEYS = ("started", "succeeded", "failed", "deferred")


def _sum_numeric(dicts: list[dict]) -> dict:
    """Key-wise sum of numeric (non-bool) values across dicts — the rollup
    for worker telemetry whose keys we do not enumerate here (scrub,
    compaction)."""
    out: dict = {}
    for d in dicts:
        for key, value in d.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out[key] = out.get(key, 0) + value
    return out


def aggregate_telemetry(shard_telemetries: list[dict]) -> dict:
    """Roll per-shard telemetry dicts (from ``Shard._op_telemetry``) into
    one store-level view.

    Counters (cache hits/misses, student served, device writes, energy,
    retrain counts) **sum**.  ``mean_prediction_latency_us`` is re-derived
    from the summed ``prediction_seconds`` / ``prediction_count`` pairs the
    shards ship — weighting each shard by its prediction count.  Averaging
    the per-shard means instead would let an idle shard (3 predictions)
    drag the number as hard as a busy one (30k); that bug class is why the
    shards ship raw pairs rather than their own means.
    """
    shards = list(shard_telemetries)
    placement: dict = {k: 0 for k in _PLACEMENT_SUM_KEYS}
    agreements = []
    for t in shards:
        p = t["placement"]
        for key in _PLACEMENT_SUM_KEYS:
            placement[key] += p[key]
        if p.get("student_trained"):
            agreements.append(p["student_train_agreement"])
    placement["student_trained"] = bool(shards) and all(
        t["placement"].get("student_trained") for t in shards
    )
    placement["student_low_agreement"] = any(
        t["placement"].get("student_low_agreement") for t in shards
    )
    # The weakest shard's distillation fidelity bounds the fleet's serving
    # behaviour; per-shard values stay visible under "shards".
    placement["student_train_agreement"] = min(agreements, default=0.0)

    total_count = sum(t["prediction_count"] for t in shards)
    total_seconds = sum(t["prediction_seconds"] for t in shards)
    mean_latency_us = (
        total_seconds / total_count * 1e6 if total_count else 0.0
    )

    out = {
        "n_shards": len(shards),
        "n_keys": sum(t["n_keys"] for t in shards),
        "read_only_shards": [
            t["shard_id"] for t in shards if t["read_only"]
        ],
        "placement": placement,
        "prediction_count": total_count,
        "prediction_seconds": total_seconds,
        "mean_prediction_latency_us": mean_latency_us,
        "retrain": {
            k: sum(t["retrain"][k] for t in shards)
            for k in _RETRAIN_SUM_KEYS
        },
        "model_epochs": [t["model_epoch"] for t in shards],
        "device": {
            k: sum(t["device"][k] for t in shards)
            for k in _DEVICE_SUM_KEYS
        },
        "wear": {
            "max_segment_writes": max(
                (t["wear"]["max_segment_writes"] for t in shards), default=0
            ),
            "total_segment_writes": sum(
                t["wear"]["total_segment_writes"] for t in shards
            ),
        },
        "shards": shards,
    }
    scrub = [t["scrub"] for t in shards if "scrub" in t]
    if scrub:
        out["scrub"] = _sum_numeric(scrub)
    compaction = [t["compaction"] for t in shards if "compaction" in t]
    if compaction:
        out["compaction"] = _sum_numeric(compaction)
    return out


def _make_backend(specs: list[ShardSpec], mode: str, backend: str, start_method):
    if backend == "inprocess":
        return InProcessBackend(specs, mode)
    if backend == "process":
        return ProcessBackend(specs, mode, start_method=start_method)
    raise ValueError(f"unknown backend {backend!r}")


class ShardedKVStore:
    """N independent shard slices behind one KV facade.

    Build with :meth:`create` (durable, directory-backed),
    :meth:`create_volatile` (benchmark/CI stores with no snapshot files)
    or :meth:`open` (recover an existing directory).  Addresses returned
    by PUT are *shard-local* device addresses; with one shard they match a
    plain :class:`KVStore` byte for byte.
    """

    def __init__(
        self,
        backend,
        ring: HashRing,
        specs: list[ShardSpec],
        root: Path | None = None,
        backend_name: str = "inprocess",
    ) -> None:
        self.backend = backend
        self.ring = ring
        self.specs = list(specs)
        self.root = root
        self.backend_name = backend_name
        self._closed = False

    # ----------------------------------------------------------- construction

    @staticmethod
    def _build_specs(
        n_shards: int,
        *,
        segment_size: int,
        n_segments_per_shard: int,
        durable: bool,
        log_segments: int,
        key_capacity: int,
        config: E2NVMConfig | None,
        base_seed: int,
        root: Path | None,
        scrubber: bool,
        compactor: bool,
    ) -> list[ShardSpec]:
        specs = []
        for shard_id in range(n_shards):
            specs.append(
                ShardSpec(
                    shard_id=shard_id,
                    segment_size=segment_size,
                    n_segments=n_segments_per_shard,
                    durable=durable,
                    log_segments=log_segments,
                    key_capacity=key_capacity,
                    # Distinct per-shard seeds: each channel's free media
                    # starts with its own content mix, so per-shard models
                    # cluster independently.
                    seed=base_seed + shard_id,
                    config=config if config is not None else E2NVMConfig(),
                    path=(
                        str(root / f"shard-{shard_id}.npz")
                        if root is not None
                        else None
                    ),
                    scrubber=scrubber,
                    compactor=compactor,
                )
            )
        return specs

    @classmethod
    def create(
        cls,
        root: str | Path,
        n_shards: int,
        *,
        segment_size: int = 64,
        n_segments_per_shard: int = 128,
        config: E2NVMConfig | None = None,
        backend: str = "inprocess",
        ring_seed: int = 0,
        vnodes: int = 128,
        log_segments: int = 2,
        key_capacity: int = 32,
        scrubber: bool = False,
        compactor: bool = False,
        base_seed: int = 7,
        start_method: str | None = None,
    ) -> "ShardedKVStore":
        """Create a durable sharded store under directory ``root``.

        Formats ``n_shards`` fresh shard slices (each trains its own
        engine — in parallel under the process backend) and writes the
        manifest.  Device snapshot files appear on :meth:`close`.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        ring = HashRing(n_shards, seed=ring_seed, vnodes=vnodes)
        specs = cls._build_specs(
            n_shards,
            segment_size=segment_size,
            n_segments_per_shard=n_segments_per_shard,
            durable=True,
            log_segments=log_segments,
            key_capacity=key_capacity,
            config=config,
            base_seed=base_seed,
            root=root,
            scrubber=scrubber,
            compactor=compactor,
        )
        store = cls(
            _make_backend(specs, "create", backend, start_method),
            ring,
            specs,
            root=root,
            backend_name=backend,
        )
        store._write_manifest()
        return store

    @classmethod
    def create_volatile(
        cls,
        n_shards: int,
        *,
        segment_size: int = 64,
        n_segments_per_shard: int = 128,
        config: E2NVMConfig | None = None,
        backend: str = "inprocess",
        ring_seed: int = 0,
        vnodes: int = 128,
        base_seed: int = 7,
        start_method: str | None = None,
    ) -> "ShardedKVStore":
        """Create a volatile sharded store (no pool/catalog, no manifest) —
        the benchmark configuration."""
        ring = HashRing(n_shards, seed=ring_seed, vnodes=vnodes)
        specs = cls._build_specs(
            n_shards,
            segment_size=segment_size,
            n_segments_per_shard=n_segments_per_shard,
            durable=False,
            log_segments=0,
            key_capacity=0,
            config=config,
            base_seed=base_seed,
            root=None,
            scrubber=False,
            compactor=False,
        )
        return cls(
            _make_backend(specs, "create", backend, start_method),
            ring,
            specs,
            root=None,
            backend_name=backend,
        )

    @classmethod
    def open(
        cls,
        root: str | Path,
        *,
        config: E2NVMConfig | None = None,
        backend: str | None = None,
        start_method: str | None = None,
    ) -> "ShardedKVStore":
        """Reopen the store at ``root`` from its manifest: identical ring
        (same routing for every key) and full per-shard recovery — undo
        rollback, catalog scan, DAP re-adoption — shard by shard, in
        parallel under the process backend.

        ``backend`` overrides the manifest's backend (a store created
        in-process can reopen under workers and vice versa); ``config``
        applies to every shard, like ``KVStore.open``'s config argument.
        """
        root = Path(root)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {manifest.get('version')} not supported"
            )
        ring = HashRing(**manifest["ring"])
        specs = [
            ShardSpec(
                config=config if config is not None else E2NVMConfig(),
                **entry,
            )
            for entry in manifest["shards"]
        ]
        if len(specs) != ring.n_shards:
            raise ValueError(
                f"manifest lists {len(specs)} shards but the ring expects "
                f"{ring.n_shards}"
            )
        backend_name = backend or manifest.get("backend", "inprocess")
        return cls(
            _make_backend(specs, "open", backend_name, start_method),
            ring,
            specs,
            root=root,
            backend_name=backend_name,
        )

    def _write_manifest(self) -> None:
        manifest = {
            "version": MANIFEST_VERSION,
            "ring": self.ring.describe(),
            "backend": self.backend_name,
            "shards": [spec.manifest_entry() for spec in self.specs],
        }
        path = self.root / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        tmp.replace(path)

    # ------------------------------------------------------------------- ops

    @property
    def n_shards(self) -> int:
        return self.ring.n_shards

    def shard_of(self, key: bytes) -> int:
        """The shard that owns ``key`` (exposed for tests and tooling)."""
        return self.ring.shard_of(key)

    def put(self, key: bytes, value: bytes) -> int:
        return self.backend.call(self.ring.shard_of(key), "put", (key, value))

    def get(self, key: bytes) -> bytes | None:
        return self.backend.call(self.ring.shard_of(key), "get", (key,))

    def delete(self, key: bytes) -> bool:
        return self.backend.call(self.ring.shard_of(key), "delete", (key,))

    def put_many(self, items: list[tuple[bytes, bytes]]) -> list[int]:
        """Batched PUT: partition by shard, one ``put_many`` engine call
        per shard (batched inference preserved inside each), results
        scattered back to input order."""
        groups = self.ring.partition([key for key, _ in items])
        order = sorted(groups)
        requests = [
            (shard_id, "put_many", ([items[i] for i in groups[shard_id]],), None)
            for shard_id in order
        ]
        per_shard = self.backend.call_many(requests)
        out: list[int | None] = [None] * len(items)
        for shard_id, addrs in zip(order, per_shard):
            for i, addr in zip(groups[shard_id], addrs):
                out[i] = addr
        return out

    def get_many(self, keys: list[bytes]) -> list[bytes | None]:
        groups = self.ring.partition(keys)
        order = sorted(groups)
        requests = [
            (shard_id, "get_many", ([keys[i] for i in groups[shard_id]],), None)
            for shard_id in order
        ]
        per_shard = self.backend.call_many(requests)
        out: list[bytes | None] = [None] * len(keys)
        for shard_id, values in zip(order, per_shard):
            for i, value in zip(groups[shard_id], values):
                out[i] = value
        return out

    def __len__(self) -> int:
        return sum(
            self.backend.call_many(
                [(s, "len", (), None) for s in range(self.n_shards)]
            )
        )

    def keys(self) -> list[bytes]:
        """All keys across shards, sorted (each shard yields its own in
        order; the facade merges)."""
        per_shard = self.backend.call_many(
            [(s, "keys", (), None) for s in range(self.n_shards)]
        )
        out: list[bytes] = []
        for ks in per_shard:
            out.extend(ks)
        out.sort()
        return out

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------ epoch events

    def retrain(self) -> list[bool]:
        """Broadcast an epoch-bumping retrain to every shard.  Each shard
        starts its own single-flight background retrain under its own
        locks — no cross-shard barrier, no global lock.  Returns which
        shards actually started one (``False`` = already retraining)."""
        return self.backend.call_many(
            [(s, "retrain", (), None) for s in range(self.n_shards)]
        )

    def wait_for_retrain(self, timeout: float | None = None) -> list[bool]:
        return self.backend.call_many(
            [(s, "wait_retrain", (timeout,), None) for s in range(self.n_shards)]
        )

    def model_epochs(self) -> list[int]:
        return self.backend.call_many(
            [(s, "model_epoch", (), None) for s in range(self.n_shards)]
        )

    def drain_relocations(self, budget: int | None = None) -> int:
        return sum(
            self.backend.call_many(
                [
                    (s, "drain_relocations", (budget,), None)
                    for s in range(self.n_shards)
                ]
            )
        )

    # --------------------------------------------------------------- telemetry

    def telemetry(self) -> dict:
        """Aggregated telemetry across all shards (see
        :func:`aggregate_telemetry` for the rollup semantics)."""
        return aggregate_telemetry(
            self.backend.call_many(
                [(s, "telemetry", (), None) for s in range(self.n_shards)]
            )
        )

    def placement_telemetry(self) -> dict:
        """Aggregated fast-placement telemetry, shaped like a single
        engine's ``placement_telemetry()`` plus the weighted
        ``mean_prediction_latency_us``."""
        rollup = self.telemetry()
        out = dict(rollup["placement"])
        out["mean_prediction_latency_us"] = rollup[
            "mean_prediction_latency_us"
        ]
        return out

    def recovery_reports(self) -> list:
        """Per-shard :class:`RecoveryReport` (``None`` for shards built
        fresh rather than recovered)."""
        return self.backend.call_many(
            [(s, "recovery_report", (), None) for s in range(self.n_shards)]
        )

    # ---------------------------------------------------------------- lifecycle

    def reopen_shard(self, shard_id: int) -> None:
        """Recover one crashed shard (process backend): a fresh worker
        re-attaches to the surviving shared-memory media and runs normal
        recovery there.  Other shards are untouched throughout."""
        self.backend.reopen_shard(shard_id)

    def shard_alive(self, shard_id: int) -> bool:
        return self.backend.shard_alive(shard_id)

    def save(self) -> None:
        """Snapshot every durable shard's device to its manifest path."""
        if self.root is None:
            raise ValueError("volatile sharded store has no snapshot paths")
        self.backend.call_many(
            [(s, "save", (), None) for s in range(self.n_shards)]
        )

    def close(self) -> None:
        """Snapshot durable shards, then shut the backend down (worker
        processes joined, shared memory released)."""
        if self._closed:
            return
        try:
            if self.root is not None:
                self.save()
        finally:
            self.backend.close()
            self._closed = True

    def __enter__(self) -> "ShardedKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
