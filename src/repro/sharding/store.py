"""`ShardedKVStore`: one KV facade over N independent shard slices.

The facade owns a :class:`~repro.sharding.ring.HashRing` and an execution
backend (in-process or per-shard worker processes) and presents the same
surface as a single :class:`~repro.core.kvstore.KVStore`:

- Point ops route by the ring to exactly one shard.
- Batch ops (``put_many``/``get_many``) partition their keys by shard and
  issue **one engine call per shard** — batched inference inside each
  shard is preserved, and with the process backend the per-shard
  sub-batches run concurrently on real cores.
- Epoch-bumping events (``retrain()``) broadcast per shard; each shard
  bumps its own model epoch under its own lock — there is no global lock
  to convoy on.
- Telemetry aggregates across shards with counter-correct semantics: plain
  counters sum, latencies are re-derived from summed ``(seconds, count)``
  pairs (weighted by count — never an average of per-shard means).

Shard faults degrade per policy instead of poisoning the whole facade.
``degraded`` picks what happens when a shard is unavailable (crashed,
hung, or breaker-open — see :mod:`repro.sharding.supervisor`):

- ``"fail_fast"`` (default, PR-8 behaviour): raise immediately; batch
  survivors' results still ride on the exception (``partial_results``).
- ``"partial"``: ``put_many``/``get_many`` return a :class:`BatchReport`
  — a list of results with an explicit per-key ``outcomes`` report
  (``"ok"`` / ``"crashed"`` / ``"hung"`` / ``"breaker_open"``) — so
  survivors' committed work is *used*, not discarded.  Reads routed at a
  breaker-open shard are answered as misses without touching it.
- ``"block"``: unavailable sub-batches are retried as the supervisor
  heals shards, bounded by ``block_timeout_s`` (PUT is an idempotent
  upsert, so retrying a failed sub-batch is safe); on timeout the
  residual failure raises.

Durable stores live in a directory: one device snapshot per shard plus a
JSON manifest recording the shard count, ring parameters and per-shard
geometry/paths, so ``open()`` rebuilds the identical ring (same routing)
and recovers shard by shard — in parallel under the process backend.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.core.config import E2NVMConfig
from repro.sharding.backends import (
    InProcessBackend,
    ProcessBackend,
    ShardUnavailableError,
)
from repro.sharding.rebalance import (
    RebalanceError,
    RebalanceInProgressError,
    RebalanceJournal,
    Rebalancer,
)
from repro.sharding.ring import HashRing
from repro.sharding.shard import ShardSpec

DEGRADED_MODES = ("fail_fast", "partial", "block")

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Aggregate-by-sum keys of each shard's placement telemetry.
_PLACEMENT_SUM_KEYS = (
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_invalidations",
    "cache_entries",
    "cache_capacity",
    "student_served",
    "student_deferred",
    "teacher_served",
)
_DEVICE_SUM_KEYS = (
    "writes",
    "reads",
    "bits_programmed",
    "bits_flipped",
    "write_energy_pj",
    "read_energy_pj",
    "write_latency_ns",
    "read_latency_ns",
)
_RETRAIN_SUM_KEYS = ("started", "succeeded", "failed", "deferred")


def _sum_numeric(dicts: list[dict]) -> dict:
    """Key-wise sum of numeric (non-bool) values across dicts — the rollup
    for worker telemetry whose keys we do not enumerate here (scrub,
    compaction)."""
    out: dict = {}
    for d in dicts:
        for key, value in d.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out[key] = out.get(key, 0) + value
    return out


def aggregate_telemetry(shard_telemetries: list[dict]) -> dict:
    """Roll per-shard telemetry dicts (from ``Shard._op_telemetry``) into
    one store-level view.

    Counters (cache hits/misses, student served, device writes, energy,
    retrain counts) **sum**.  ``mean_prediction_latency_us`` is re-derived
    from the summed ``prediction_seconds`` / ``prediction_count`` pairs the
    shards ship — weighting each shard by its prediction count.  Averaging
    the per-shard means instead would let an idle shard (3 predictions)
    drag the number as hard as a busy one (30k); that bug class is why the
    shards ship raw pairs rather than their own means.
    """
    shards = list(shard_telemetries)
    placement: dict = {k: 0 for k in _PLACEMENT_SUM_KEYS}
    agreements = []
    for t in shards:
        p = t["placement"]
        for key in _PLACEMENT_SUM_KEYS:
            placement[key] += p[key]
        if p.get("student_trained"):
            agreements.append(p["student_train_agreement"])
    placement["student_trained"] = bool(shards) and all(
        t["placement"].get("student_trained") for t in shards
    )
    placement["student_low_agreement"] = any(
        t["placement"].get("student_low_agreement") for t in shards
    )
    # The weakest shard's distillation fidelity bounds the fleet's serving
    # behaviour; per-shard values stay visible under "shards".
    placement["student_train_agreement"] = min(agreements, default=0.0)

    total_count = sum(t["prediction_count"] for t in shards)
    total_seconds = sum(t["prediction_seconds"] for t in shards)
    mean_latency_us = (
        total_seconds / total_count * 1e6 if total_count else 0.0
    )

    out = {
        "n_shards": len(shards),
        "n_keys": sum(t["n_keys"] for t in shards),
        "read_only_shards": [
            t["shard_id"] for t in shards if t["read_only"]
        ],
        "placement": placement,
        "prediction_count": total_count,
        "prediction_seconds": total_seconds,
        "mean_prediction_latency_us": mean_latency_us,
        "retrain": {
            k: sum(t["retrain"][k] for t in shards)
            for k in _RETRAIN_SUM_KEYS
        },
        "model_epochs": [t["model_epoch"] for t in shards],
        "device": {
            k: sum(t["device"][k] for t in shards)
            for k in _DEVICE_SUM_KEYS
        },
        "wear": {
            "max_segment_writes": max(
                (t["wear"]["max_segment_writes"] for t in shards), default=0
            ),
            "total_segment_writes": sum(
                t["wear"]["total_segment_writes"] for t in shards
            ),
        },
        "shards": shards,
    }
    scrub = [t["scrub"] for t in shards if "scrub" in t]
    if scrub:
        out["scrub"] = _sum_numeric(scrub)
    compaction = [t["compaction"] for t in shards if "compaction" in t]
    if compaction:
        out["compaction"] = _sum_numeric(compaction)
    return out


def _make_backend(
    specs: list[ShardSpec],
    mode: str,
    backend: str,
    start_method,
    deadline_s: float | None,
    op_deadlines: dict | None,
):
    if backend == "inprocess":
        # Deadlines are an RPC concept; in-process calls run on the
        # caller's thread and cannot be usefully timed out.
        return InProcessBackend(specs, mode)
    if backend == "process":
        kwargs: dict = {"start_method": start_method}
        if deadline_s is not None:
            kwargs["deadline_s"] = deadline_s
        if op_deadlines is not None:
            kwargs["op_deadlines"] = op_deadlines
        return ProcessBackend(specs, mode, **kwargs)
    raise ValueError(f"unknown backend {backend!r}")


class BatchReport(list):
    """Result of a degraded-mode batch op: a plain list of per-item
    results (``== [...]`` with a list still holds) plus an explicit
    per-item outcome report.

    ``outcomes[i]`` is ``"ok"`` when ``self[i]`` is a real result, else
    the reason that item's shard did not answer: ``"crashed"``,
    ``"hung"``, ``"breaker_open"`` or ``"error"``.  Failed items hold
    ``None`` — for GET indistinguishable from a miss by value, which is
    exactly why the outcome report exists."""

    def __init__(self, results, outcomes: list[str]) -> None:
        super().__init__(results)
        self.outcomes = outcomes

    @property
    def ok(self) -> bool:
        """Every item answered by a live shard."""
        return all(o == "ok" for o in self.outcomes)

    @property
    def failed_indices(self) -> list[int]:
        return [i for i, o in enumerate(self.outcomes) if o != "ok"]


class ShardedKVStore:
    """N independent shard slices behind one KV facade.

    Build with :meth:`create` (durable, directory-backed),
    :meth:`create_volatile` (benchmark/CI stores with no snapshot files)
    or :meth:`open` (recover an existing directory).  Addresses returned
    by PUT are *shard-local* device addresses; with one shard they match a
    plain :class:`KVStore` byte for byte.
    """

    def __init__(
        self,
        backend,
        ring: HashRing,
        specs: list[ShardSpec],
        root: Path | None = None,
        backend_name: str = "inprocess",
        degraded: str = "fail_fast",
        block_timeout_s: float = 30.0,
    ) -> None:
        if degraded not in DEGRADED_MODES:
            raise ValueError(
                f"unknown degraded mode {degraded!r}; pick from "
                f"{DEGRADED_MODES}"
            )
        self.backend = backend
        self.ring = ring
        self.specs = list(specs)
        self.root = root
        self.backend_name = backend_name
        self.degraded = degraded
        self.block_timeout_s = block_timeout_s
        #: Attached :class:`~repro.sharding.supervisor.ShardSupervisor`
        #: (degraded routing consults its breakers; ``None`` = none).
        self.supervisor = None
        #: Active :class:`~repro.sharding.rebalance.Rebalancer` (``None``
        #: outside a live rebalance).  While set, ``self.ring`` is already
        #: the *new* ring (writes route there) and ``self._old_ring``
        #: holds the previous routing for read fallback.
        self.rebalancer = None
        self._old_ring: HashRing | None = None
        # Serialises foreground deletes against rebalancer move batches —
        # a delete interleaving inside a key's copy window could have its
        # tombstone overwritten by the stale source copy.
        self._rebalance_lock = threading.Lock()
        self._closed = False

    def attach_supervisor(self, supervisor) -> None:
        """Register a :class:`ShardSupervisor` (called by its
        constructor) so degraded-mode routing can skip breaker-open
        shards and ``block`` mode can wait on healing."""
        self.supervisor = supervisor

    # ----------------------------------------------------------- construction

    @staticmethod
    def _build_specs(
        n_shards: int,
        *,
        segment_size: int,
        n_segments_per_shard: int,
        durable: bool,
        log_segments: int,
        key_capacity: int,
        config: E2NVMConfig | None,
        base_seed: int,
        root: Path | None,
        scrubber: bool,
        compactor: bool,
        maintenance: bool = False,
        scrub_interval_s: float = 0.05,
        compact_interval_s: float = 0.1,
        retrain_interval_s: float = 0.0,
        wearout=None,
        drift=None,
    ) -> list[ShardSpec]:
        specs = []
        for shard_id in range(n_shards):
            specs.append(
                ShardSpec(
                    shard_id=shard_id,
                    segment_size=segment_size,
                    n_segments=n_segments_per_shard,
                    durable=durable,
                    log_segments=log_segments,
                    key_capacity=key_capacity,
                    # Distinct per-shard seeds: each channel's free media
                    # starts with its own content mix, so per-shard models
                    # cluster independently.
                    seed=base_seed + shard_id,
                    config=config if config is not None else E2NVMConfig(),
                    path=(
                        str(root / f"shard-{shard_id}.npz")
                        if root is not None
                        else None
                    ),
                    scrubber=scrubber,
                    compactor=compactor,
                    maintenance=maintenance,
                    scrub_interval_s=scrub_interval_s,
                    compact_interval_s=compact_interval_s,
                    retrain_interval_s=retrain_interval_s,
                    wearout=wearout,
                    drift=drift,
                )
            )
        return specs

    @classmethod
    def create(
        cls,
        root: str | Path,
        n_shards: int,
        *,
        segment_size: int = 64,
        n_segments_per_shard: int = 128,
        config: E2NVMConfig | None = None,
        backend: str = "inprocess",
        ring_seed: int = 0,
        vnodes: int = 128,
        weights=None,
        log_segments: int = 2,
        key_capacity: int = 32,
        scrubber: bool = False,
        compactor: bool = False,
        base_seed: int = 7,
        start_method: str | None = None,
        maintenance: bool = False,
        scrub_interval_s: float = 0.05,
        compact_interval_s: float = 0.1,
        retrain_interval_s: float = 0.0,
        wearout=None,
        drift=None,
        degraded: str = "fail_fast",
        block_timeout_s: float = 30.0,
        deadline_s: float | None = None,
        op_deadlines: dict | None = None,
    ) -> "ShardedKVStore":
        """Create a durable sharded store under directory ``root``.

        Formats ``n_shards`` fresh shard slices (each trains its own
        engine — in parallel under the process backend) and writes the
        manifest.  Device snapshot files appear on :meth:`close`.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        # A fresh store must not inherit a previous store's migration
        # intent; creating over a reused directory discards any journal.
        RebalanceJournal(root=root, old_ring={}, new_ring={}).remove()
        ring = HashRing(n_shards, seed=ring_seed, vnodes=vnodes, weights=weights)
        specs = cls._build_specs(
            n_shards,
            segment_size=segment_size,
            n_segments_per_shard=n_segments_per_shard,
            durable=True,
            log_segments=log_segments,
            key_capacity=key_capacity,
            config=config,
            base_seed=base_seed,
            root=root,
            scrubber=scrubber,
            compactor=compactor,
            maintenance=maintenance,
            scrub_interval_s=scrub_interval_s,
            compact_interval_s=compact_interval_s,
            retrain_interval_s=retrain_interval_s,
            wearout=wearout,
            drift=drift,
        )
        store = cls(
            _make_backend(
                specs, "create", backend, start_method, deadline_s, op_deadlines
            ),
            ring,
            specs,
            root=root,
            backend_name=backend,
            degraded=degraded,
            block_timeout_s=block_timeout_s,
        )
        store._write_manifest()
        return store

    @classmethod
    def create_volatile(
        cls,
        n_shards: int,
        *,
        segment_size: int = 64,
        n_segments_per_shard: int = 128,
        config: E2NVMConfig | None = None,
        backend: str = "inprocess",
        ring_seed: int = 0,
        vnodes: int = 128,
        weights=None,
        base_seed: int = 7,
        start_method: str | None = None,
        maintenance: bool = False,
        retrain_interval_s: float = 0.0,
        degraded: str = "fail_fast",
        block_timeout_s: float = 30.0,
        deadline_s: float | None = None,
        op_deadlines: dict | None = None,
    ) -> "ShardedKVStore":
        """Create a volatile sharded store (no pool/catalog, no manifest) —
        the benchmark configuration."""
        ring = HashRing(n_shards, seed=ring_seed, vnodes=vnodes, weights=weights)
        specs = cls._build_specs(
            n_shards,
            segment_size=segment_size,
            n_segments_per_shard=n_segments_per_shard,
            durable=False,
            log_segments=0,
            key_capacity=0,
            config=config,
            base_seed=base_seed,
            root=None,
            scrubber=False,
            compactor=False,
            maintenance=maintenance,
            retrain_interval_s=retrain_interval_s,
        )
        return cls(
            _make_backend(
                specs, "create", backend, start_method, deadline_s, op_deadlines
            ),
            ring,
            specs,
            root=None,
            backend_name=backend,
            degraded=degraded,
            block_timeout_s=block_timeout_s,
        )

    @classmethod
    def open(
        cls,
        root: str | Path,
        *,
        config: E2NVMConfig | None = None,
        backend: str | None = None,
        start_method: str | None = None,
        maintenance: bool | None = None,
        wearout=None,
        drift=None,
        degraded: str = "fail_fast",
        block_timeout_s: float = 30.0,
        deadline_s: float | None = None,
        op_deadlines: dict | None = None,
    ) -> "ShardedKVStore":
        """Reopen the store at ``root`` from its manifest: identical ring
        (same routing for every key) and full per-shard recovery — undo
        rollback, catalog scan, DAP re-adoption — shard by shard, in
        parallel under the process backend.

        ``backend`` overrides the manifest's backend (a store created
        in-process can reopen under workers and vice versa); ``config``
        applies to every shard, like ``KVStore.open``'s config argument —
        as do ``wearout``/``drift``, whose *state* rides in the device
        snapshots.  ``maintenance`` overrides the manifest's flag
        (``None`` keeps it)."""
        root = Path(root)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {manifest.get('version')} not supported"
            )
        ring = HashRing(**manifest["ring"])
        specs = [
            ShardSpec(
                config=config if config is not None else E2NVMConfig(),
                wearout=wearout,
                drift=drift,
                **(
                    entry
                    if maintenance is None
                    else {**entry, "maintenance": maintenance}
                ),
            )
            for entry in manifest["shards"]
        ]
        if len(specs) != ring.n_shards:
            raise ValueError(
                f"manifest lists {len(specs)} shards but the ring expects "
                f"{ring.n_shards}"
            )
        backend_name = backend or manifest.get("backend", "inprocess")
        store = cls(
            _make_backend(
                specs, "open", backend_name, start_method, deadline_s,
                op_deadlines,
            ),
            ring,
            specs,
            root=root,
            backend_name=backend_name,
            degraded=degraded,
            block_timeout_s=block_timeout_s,
        )
        store._resume_rebalance()
        return store

    def _resume_rebalance(self) -> None:
        """Roll an unfinished ``rebalance.json`` forward on open.

        ``flipped``/``done`` journals crashed after the point of no
        return: finish the flip here (rewrite the manifest with the new
        ring, drop the journal) — every moved key already sits on its new
        owner, so no draining is needed.  ``planned``/``draining``
        journals resume as a live rebalance: dual routing is reinstalled
        and ``self.rebalancer`` is ready to ``drain_until_done`` +
        ``finalize`` (re-copy is safe, delete is last, so resuming
        mid-batch is idempotent)."""
        journal = RebalanceJournal.load(self.root)
        if journal is None:
            return
        new_ring = HashRing(**journal.new_ring)
        if new_ring.n_shards != self.ring.n_shards:
            raise ValueError(
                f"rebalance journal expects {new_ring.n_shards} shards; "
                f"the manifest has {self.ring.n_shards}"
            )
        if journal.state == "done":
            journal.remove()
            return
        if journal.state == "flipped":
            self.ring = new_ring
            self._write_manifest()
            journal.remove()
            return
        # planned/draining: a crash between the plan and the first drain
        # batch is indistinguishable from one mid-drain; both roll forward
        # into draining (writes may or may not have reached new owners —
        # dual-routed reads cover either placement).
        if journal.state == "planned":
            journal.advance("draining")
        self._install_rebalance(Rebalancer(self, journal))

    def _write_manifest(self) -> None:
        manifest = {
            "version": MANIFEST_VERSION,
            "ring": self.ring.describe(),
            "backend": self.backend_name,
            "shards": [spec.manifest_entry() for spec in self.specs],
        }
        path = self.root / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        tmp.replace(path)

    # ------------------------------------------------------------------- ops

    @property
    def n_shards(self) -> int:
        return self.ring.n_shards

    def shard_of(self, key: bytes) -> int:
        """The shard that owns ``key`` (exposed for tests and tooling)."""
        return self.ring.shard_of(key)

    # ------------------------------------------------------------ rebalancing

    @property
    def rebalance_active(self) -> bool:
        """A rebalance journal is live: writes route by the new ring,
        reads fall back to the old owner, deletes hit both."""
        return self.rebalancer is not None and self._old_ring is not None

    def begin_rebalance(
        self,
        *,
        weights=None,
        vnodes: int | None = None,
        batch_size: int = 32,
    ) -> Rebalancer:
        """Plan a rebalance to a re-weighted ring and enter dual routing.

        Writes the ``rebalance.json`` intent journal (atomically) next to
        the manifest and flips the facade into dual routing; the returned
        :class:`Rebalancer` is ready to ``drain`` /``drain_until_done``
        and ``finalize``.  Operator workflow::

            reb = store.begin_rebalance(weights=[2.0, 1.0, 1.0])  # plan
            reb.drain_until_done()                                # drain
            reb.finalize()                                        # flip

        Only the ring's weights and vnodes may change — the shard count
        is fixed (growing the fleet is a different operation: it needs new
        media, not just new routing).  Durable stores only: the journal
        is what makes a mid-migration crash recoverable."""
        if self.root is None:
            raise RebalanceError(
                "volatile stores cannot rebalance (no directory to journal "
                "the migration in)"
            )
        if self.rebalancer is not None:
            raise RebalanceInProgressError(
                "a rebalance is already in flight; finalize it first"
            )
        new_ring = HashRing(
            self.ring.n_shards,
            seed=self.ring.seed,
            vnodes=self.ring.vnodes if vnodes is None else vnodes,
            weights=weights,
        )
        if new_ring.describe() == self.ring.describe():
            raise RebalanceError(
                "new ring routes identically to the current one; nothing "
                "to rebalance"
            )
        journal = RebalanceJournal(
            root=self.root,
            old_ring=self.ring.describe(),
            new_ring=new_ring.describe(),
        )
        journal.write()  # state "planned": the intent is durable
        rebalancer = Rebalancer(self, journal, batch_size=batch_size)
        self._install_rebalance(rebalancer)
        journal.advance("draining")
        return rebalancer

    def _install_rebalance(self, rebalancer: Rebalancer) -> None:
        """Enter dual routing for ``rebalancer`` (fresh plan or resumed
        journal): the new ring takes over ``self.ring`` — ``partition()``
        and every write route by it — while the old ring stays as the
        read-fallback."""
        self._old_ring = rebalancer.old_ring
        self.ring = rebalancer.new_ring
        self.rebalancer = rebalancer

    def _complete_rebalance(self) -> None:
        """Drop dual routing (called by ``Rebalancer.finalize``)."""
        self._old_ring = None
        self.rebalancer = None

    def _breaker_open(self, shard_id: int) -> bool:
        return self.supervisor is not None and self.supervisor.breaker_open(
            shard_id
        )

    def _point_call(self, shard_id: int, op: str, args: tuple):
        """Point-op routing under the degraded policy.

        ``partial`` answers a GET routed at a breaker-open shard as a
        miss (the documented lie of that policy — the outcome report of
        the batch path is how callers see the difference); any *write*
        at an open breaker raises, never silently drops.  ``block``
        retries through supervisor healing until ``block_timeout_s``.
        """
        from repro.sharding.supervisor import ShardCircuitOpenError

        if self.degraded != "block":
            if self._breaker_open(shard_id):
                if self.degraded == "partial" and op == "get":
                    return None
                raise ShardCircuitOpenError([shard_id])
            return self.backend.call(shard_id, op, args)
        deadline = time.monotonic() + self.block_timeout_s
        while True:
            if self._breaker_open(shard_id):
                last_exc: ShardUnavailableError = ShardCircuitOpenError(
                    [shard_id]
                )
            else:
                try:
                    return self.backend.call(shard_id, op, args)
                except ShardUnavailableError as exc:
                    last_exc = exc
            if time.monotonic() >= deadline:
                raise last_exc
            if self.supervisor is not None:
                self.supervisor.run_once()
            time.sleep(0.02)

    def put(self, key: bytes, value: bytes) -> int:
        # During a rebalance writes go to the NEW owner only (self.ring is
        # already the new ring) — the drain never copies a key backwards,
        # so a new-owner write can never be shadowed by a stale source copy.
        return self._point_call(self.ring.shard_of(key), "put", (key, value))

    def get(self, key: bytes) -> bytes | None:
        """Point GET; during a live rebalance, new-owner-then-old-owner.

        A miss at the new owner falls back to the previous owner (the key
        may not have drained yet).  Under the ``partial`` policy a
        breaker-open new owner is answered as a miss by ``_point_call``,
        which the same fallback turns into a read from the old owner —
        how moving keys stay readable while one endpoint is down."""
        shard = self.ring.shard_of(key)
        value = self._point_call(shard, "get", (key,))
        if value is None and self.rebalance_active:
            old_shard = self._old_ring.shard_of(key)
            if old_shard != shard:
                value = self._point_call(old_shard, "get", (key,))
        return value

    def delete(self, key: bytes) -> bool:
        """Point DELETE; during a live rebalance it must hit *both*
        owners, atomically with respect to drain batches — otherwise a
        key deleted at the new owner while its source copy is still in a
        batch's copy window would be resurrected by the copy."""
        if not self.rebalance_active:
            return self._point_call(self.ring.shard_of(key), "delete", (key,))
        shard = self.ring.shard_of(key)
        old_shard = self._old_ring.shard_of(key)
        with self._rebalance_lock:
            deleted = self._point_call(shard, "delete", (key,))
            if old_shard != shard:
                deleted = (
                    self._point_call(old_shard, "delete", (key,)) or deleted
                )
        return deleted

    def _fan_out(
        self, op: str, groups: dict[int, list[int]], payload_of, n_items: int
    ) -> BatchReport:
        """Scatter one ``op`` sub-batch per shard and gather per the
        degraded policy.

        ``fail_fast`` raises on the first unavailable shard (survivors'
        results ride on the exception).  ``partial`` makes one pass:
        breaker-open shards are skipped outright, unavailable shards'
        items get ``None`` + an outcome tag.  ``block`` keeps retrying
        failed sub-batches — driving supervisor rounds inline so healing
        does not wait on the background cadence — until everything
        answers or ``block_timeout_s`` expires.  PUT sub-batches are
        idempotent upserts, so a retry after an ambiguous failure (shard
        died mid-batch) is safe: re-putting a committed key overwrites
        it with the same value.
        """
        from repro.sharding.supervisor import ShardCircuitOpenError

        out: list = [None] * n_items
        outcomes = ["ok"] * n_items
        mode = self.degraded
        pending = sorted(groups)
        deadline = time.monotonic() + self.block_timeout_s
        while pending:
            open_now = {s for s in pending if self._breaker_open(s)}
            if open_now:
                if mode == "fail_fast":
                    raise ShardCircuitOpenError(sorted(open_now))
                for s in open_now:
                    for i in groups[s]:
                        outcomes[i] = "breaker_open"
                if mode == "partial":
                    pending = [s for s in pending if s not in open_now]
                    open_now = set()
            run_now = [s for s in pending if s not in open_now]
            statuses: dict[int, str] = {}
            results: dict[int, list] = {}
            if run_now:
                requests = [(s, op, (payload_of(s),), None) for s in run_now]
                try:
                    per_shard = self.backend.call_many(requests)
                except ShardUnavailableError as exc:
                    if mode == "fail_fast":
                        raise
                    statuses = dict(exc.shard_status or {})
                    partial = exc.partial_results or [None] * len(run_now)
                    results = dict(zip(run_now, partial))
                else:
                    statuses = {s: "ok" for s in run_now}
                    results = dict(zip(run_now, per_shard))
            still_failed = []
            for s in run_now:
                if statuses.get(s) == "ok" and results.get(s) is not None:
                    for i, r in zip(groups[s], results[s]):
                        out[i] = r
                        outcomes[i] = "ok"
                else:
                    still_failed.append(s)
                    for i in groups[s]:
                        outcomes[i] = statuses.get(s, "error")
            if mode != "block":
                break
            pending = still_failed + sorted(open_now)
            if not pending:
                break
            if time.monotonic() >= deadline:
                exc = ShardUnavailableError(
                    sorted(pending),
                    f"shard(s) {sorted(pending)} still unavailable after "
                    f"block_timeout_s={self.block_timeout_s}s",
                )
                exc.partial_results = list(out)
                exc.shard_status = {
                    s: outcomes[groups[s][0]] for s in pending
                }
                raise exc
            if self.supervisor is not None:
                self.supervisor.run_once()
            time.sleep(0.02)
        return BatchReport(out, outcomes)

    def put_many(self, items: list[tuple[bytes, bytes]]) -> list[int]:
        """Batched PUT: partition by shard, one ``put_many`` engine call
        per shard (batched inference preserved inside each), results
        scattered back to input order.  Returns a :class:`BatchReport`
        (a list of addresses; under ``partial``/``block`` degraded modes
        its ``outcomes`` tell which items a downed shard dropped)."""
        groups = self.ring.partition([key for key, _ in items])
        return self._fan_out(
            "put_many",
            groups,
            lambda s: [items[i] for i in groups[s]],
            len(items),
        )

    def get_many(self, keys: list[bytes]) -> list[bytes | None]:
        groups = self.ring.partition(keys)
        report = self._fan_out(
            "get_many",
            groups,
            lambda s: [keys[i] for i in groups[s]],
            len(keys),
        )
        if not self.rebalance_active:
            return report
        # Old-owner fallback for misses whose routing changed: one more
        # fan-out over just those keys, partitioned by the OLD ring.  A
        # fallback hit overrides the primary miss; a fallback failure
        # (shard down under ``partial``) must not mask a primary "ok" —
        # the worse outcome tag wins only where the primary also failed.
        pending = [
            i
            for i, v in enumerate(report)
            if v is None
            and self._old_ring.shard_of(keys[i]) != self.ring.shard_of(keys[i])
        ]
        if not pending:
            return report
        sub_keys = [keys[i] for i in pending]
        sub_groups = self._old_ring.partition(sub_keys)
        fallback = self._fan_out(
            "get_many",
            sub_groups,
            lambda s: [sub_keys[j] for j in sub_groups[s]],
            len(sub_keys),
        )
        for j, i in enumerate(pending):
            if fallback[j] is not None:
                report[i] = fallback[j]
                report.outcomes[i] = "ok"
            elif report.outcomes[i] == "ok" and fallback.outcomes[j] != "ok":
                report.outcomes[i] = fallback.outcomes[j]
        return report

    def __len__(self) -> int:
        if self.rebalance_active:
            # Mid-drain a key can sit on both owners; count distinct keys.
            return len(self.keys())
        return sum(
            self.backend.call_many(
                [(s, "len", (), None) for s in range(self.n_shards)]
            )
        )

    def keys(self) -> list[bytes]:
        """All keys across shards, sorted (each shard yields its own in
        order; the facade merges).  During a rebalance a key may appear
        on both its old and new owner mid-batch; the merge dedupes."""
        per_shard = self.backend.call_many(
            [(s, "keys", (), None) for s in range(self.n_shards)]
        )
        out: list[bytes] = []
        for ks in per_shard:
            out.extend(ks)
        if self.rebalance_active:
            return sorted(set(out))
        out.sort()
        return out

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------ epoch events

    def retrain(self) -> list[bool]:
        """Broadcast an epoch-bumping retrain to every shard.  Each shard
        starts its own single-flight background retrain under its own
        locks — no cross-shard barrier, no global lock.  Returns which
        shards actually started one (``False`` = already retraining)."""
        return self.backend.call_many(
            [(s, "retrain", (), None) for s in range(self.n_shards)]
        )

    def wait_for_retrain(self, timeout: float | None = None) -> list[bool]:
        return self.backend.call_many(
            [(s, "wait_retrain", (timeout,), None) for s in range(self.n_shards)]
        )

    def model_epochs(self) -> list[int]:
        return self.backend.call_many(
            [(s, "model_epoch", (), None) for s in range(self.n_shards)]
        )

    def advance_time(self, ticks: int = 1) -> list[int]:
        """Advance every shard's retention clock (drift model) by
        ``ticks``; returns newly drifted cells per shard."""
        return self.backend.call_many(
            [(s, "advance_time", (ticks,), None) for s in range(self.n_shards)]
        )

    def age(self, cycles: int = 1) -> list[int]:
        """Accelerated media aging (wearout model) on every shard;
        returns newly dead cells per shard."""
        return self.backend.call_many(
            [(s, "age", (cycles,), None) for s in range(self.n_shards)]
        )

    # ------------------------------------------------------------- maintenance

    def start_maintenance(self) -> list[int]:
        """Start each shard's in-worker maintenance loops (scrubber,
        compactor, retrain ticker — whatever the spec attached); returns
        per-shard running counts."""
        return self.backend.call_many(
            [(s, "start_maintenance", (), None) for s in range(self.n_shards)]
        )

    def stop_maintenance(self, timeout: float | None = 5.0) -> list:
        return self.backend.call_many(
            [
                (s, "stop_maintenance", (timeout,), None)
                for s in range(self.n_shards)
            ]
        )

    def pause_maintenance(self) -> list:
        return self.backend.call_many(
            [(s, "pause_maintenance", (), None) for s in range(self.n_shards)]
        )

    def resume_maintenance(self) -> list:
        return self.backend.call_many(
            [(s, "resume_maintenance", (), None) for s in range(self.n_shards)]
        )

    def maintenance_info(self) -> list[list[dict]]:
        """Per-shard maintenance-loop snapshots (name, running, paused,
        rounds completed, last error) — the facade-level rollup of each
        worker process's background cadence."""
        return self.backend.call_many(
            [(s, "maintenance_info", (), None) for s in range(self.n_shards)]
        )

    def drain_relocations(self, budget: int | None = None) -> int:
        return sum(
            self.backend.call_many(
                [
                    (s, "drain_relocations", (budget,), None)
                    for s in range(self.n_shards)
                ]
            )
        )

    # --------------------------------------------------------------- telemetry

    def telemetry(self) -> dict:
        """Aggregated telemetry across all shards (see
        :func:`aggregate_telemetry` for the rollup semantics); with a
        supervisor attached, its restart/breaker/recovery counters ride
        along under ``"supervisor"``."""
        out = aggregate_telemetry(
            self.backend.call_many(
                [(s, "telemetry", (), None) for s in range(self.n_shards)]
            )
        )
        if self.supervisor is not None:
            out["supervisor"] = self.supervisor.telemetry()
        return out

    def placement_telemetry(self) -> dict:
        """Aggregated fast-placement telemetry, shaped like a single
        engine's ``placement_telemetry()`` plus the weighted
        ``mean_prediction_latency_us``."""
        rollup = self.telemetry()
        out = dict(rollup["placement"])
        out["mean_prediction_latency_us"] = rollup[
            "mean_prediction_latency_us"
        ]
        return out

    def recovery_reports(self) -> list:
        """Per-shard :class:`RecoveryReport` (``None`` for shards built
        fresh rather than recovered)."""
        return self.backend.call_many(
            [(s, "recovery_report", (), None) for s in range(self.n_shards)]
        )

    # ---------------------------------------------------------------- lifecycle

    def reopen_shard(self, shard_id: int) -> None:
        """Recover one crashed shard (process backend): a fresh worker
        re-attaches to the surviving shared-memory media and runs normal
        recovery there.  Other shards are untouched throughout."""
        self.backend.reopen_shard(shard_id)

    def shard_alive(self, shard_id: int) -> bool:
        return self.backend.shard_alive(shard_id)

    def save(self, *, deadline: float | None = ...) -> None:
        """Snapshot every durable shard's device to its manifest path.
        ``deadline`` overrides the per-op RPC budget (process backend)."""
        if self.root is None:
            raise ValueError("volatile sharded store has no snapshot paths")
        self.backend.call_many(
            [(s, "save", (), None) for s in range(self.n_shards)],
            deadline=deadline,
        )

    def close(self) -> None:
        """Snapshot durable shards, then shut the backend down (worker
        processes joined, shared memory released).

        The snapshot is best-effort: a shard that is dead or hung at
        close time cannot be saved — survivors still snapshot (the
        backend drains them before raising), and the missing shard's
        story is the recovery path on the next ``open``.  The wait per
        shard is bounded by the backend's close grace, not the full op
        budget, so a SIGSTOP'd worker cannot stall teardown."""
        if self._closed:
            return
        # The supervisor must stop before teardown begins, or it would
        # fight close() by reopening the very workers being shut down.
        if self.supervisor is not None:
            self.supervisor.stop()
        try:
            if self.root is not None:
                grace = getattr(self.backend, "close_grace_s", None)
                try:
                    if grace is None:
                        self.save()
                    else:
                        self.save(deadline=grace)
                except ShardUnavailableError:
                    pass  # dead/hung shards can't snapshot; recovery covers them
        finally:
            self.backend.close()
            self._closed = True

    def __enter__(self) -> "ShardedKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
