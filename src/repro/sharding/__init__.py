"""Sharded multi-channel engine: N independent vertical slices behind one
facade.

Real NVM/SSD controllers get their bandwidth from channel x way x plane
parallelism — many independent media units served by per-unit handlers (the
Samsung Arno ``AddressMappingLayer`` builds one ``ParallelUnit`` submodule
per handler; see SNIPPETS.md snippet 2 and the DESIGN.md note).  This
package models the same structure at the storage layer:

- :class:`~repro.sharding.ring.HashRing` — a seeded consistent-hash ring
  mapping keys to shards;
- :class:`~repro.sharding.shard.Shard` — one full vertical slice:
  ``NVMDevice`` + controller + engine (DAP, fastpath, retraining) +
  ``KVStore`` (catalog, recovery) + optional scrubber/compactor workers;
- :mod:`~repro.sharding.backends` — two execution backends: an in-process
  one (correctness baseline, works everywhere) and a ``multiprocessing``
  one where every shard runs in its own worker process with the device
  array in ``SharedMemory``, so batched puts fan out across real cores and
  aggregate ops/s multiplies instead of serialising on the GIL;
- :class:`~repro.sharding.store.ShardedKVStore` — the facade: batch ops
  routed by shard (one engine call per shard), cross-shard telemetry
  rollup, per-shard epoch events, manifest-based create/open/close with
  shard-by-shard crash recovery, and degraded-mode routing
  (``fail_fast`` / ``partial`` / ``block``) when shards are down;
- :class:`~repro.sharding.supervisor.ShardSupervisor` — the self-healing
  loop: heartbeat watchdog (hung workers killed), automatic reopen with
  exponential backoff under a restart budget, and per-shard circuit
  breakers when the budget runs dry;
- :mod:`~repro.sharding.rebalance` — crash-safe online rebalancing:
  journaled key migration (``rebalance.json`` intent log) draining moved
  keys to their new owners in budgeted copy/verify/delete batches while
  the facade dual-routes foreground traffic.
"""

from repro.sharding.backends import (
    InProcessBackend,
    ProcessBackend,
    ShardCrashedError,
    ShardHungError,
    ShardUnavailableError,
)
from repro.sharding.rebalance import (
    RebalanceError,
    RebalanceInProgressError,
    RebalanceJournal,
    Rebalancer,
)
from repro.sharding.ring import HashRing, MovedArc, RingDiff
from repro.sharding.shard import Shard, ShardSpec
from repro.sharding.store import BatchReport, ShardedKVStore
from repro.sharding.supervisor import ShardCircuitOpenError, ShardSupervisor

__all__ = [
    "BatchReport",
    "HashRing",
    "InProcessBackend",
    "MovedArc",
    "ProcessBackend",
    "RebalanceError",
    "RebalanceInProgressError",
    "RebalanceJournal",
    "Rebalancer",
    "RingDiff",
    "Shard",
    "ShardCircuitOpenError",
    "ShardCrashedError",
    "ShardHungError",
    "ShardSupervisor",
    "ShardSpec",
    "ShardUnavailableError",
    "ShardedKVStore",
]
