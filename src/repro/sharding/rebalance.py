"""Crash-safe online shard rebalancing: journaled key migration.

Shards wear unevenly — Zipfian traffic concentrates writes on whichever
channel owns the hot arc — so the facade must be able to *change the ring*
(per-shard weights, see :class:`~repro.sharding.ring.HashRing`) and drain
the moved keys to their new owners while foreground traffic keeps flowing.
This is the sharded analogue of SoftWear's software-only remapping: wear
management by moving data, not by replacing media.

The hard part is crash safety.  A migration is a distributed write — copy
on one shard, delete on another — with no cross-shard transaction to hide
behind, so the protocol is built from idempotent steps ordered such that
**an acknowledged value is always readable from at least one shard**:

1. **Plan** — :meth:`ShardedKVStore.begin_rebalance` writes an intent
   journal (``rebalance.json``, atomically: tmp + replace) next to the
   manifest recording the old and new ring, then flips the facade into
   dual routing (writes → new owner; reads → new owner, then old owner).
2. **Drain** — :meth:`Rebalancer.drain` moves keys in budgeted batches:
   *copy* to the target (``copy_absent``: a foreground write that already
   landed on the new owner is never clobbered by a stale source copy),
   *verify* by reading the value back through the target's CRC-checked
   read path, and only then *delete* from the source.  Every step is
   idempotent, so replaying a batch after a crash is safe; delete is
   last, so the value never vanishes from both shards.
3. **Finalize** — when no moved keys remain, the journal advances to
   ``flipped`` (the point of no return), the manifest is rewritten with
   the new ring, the journal advances to ``done`` and is removed, and the
   facade drops dual routing.

Crash recovery is rescan-based, not log-replay-based: ``open()`` finds an
unfinished journal and either resumes dual routing + draining (``planned``
/ ``draining`` — the drain rescans shard catalogs, so partially-copied or
partially-deleted batches simply converge) or rolls the flip forward
(``flipped`` / ``done`` — rewrite manifest, drop journal).  Both paths are
deterministic and idempotent.

A source or target worker dying mid-drain (SIGKILL, crash, hang) pauses
the drain — :meth:`Rebalancer.drain` reports the shards it is waiting on
instead of raising — and the :class:`~repro.sharding.supervisor.\
ShardSupervisor` heals them in the background; ``drain_until_done`` waits
on exactly those shards and resumes.  A breaker-open shard pauses the
drain the same way until an operator ``reset``.

Fault sites (fired in the *coordinator*, i.e. the facade's process):
``rebalance.copy`` before each copy batch, ``rebalance.delete`` before
each delete-from-source batch, ``rebalance.flip`` between the journal's
``flipped`` record and the manifest rewrite.  The rebalance crash sweep
(:mod:`repro.testing.chaos`) crashes at every firing of each and proves
recovery from all of them.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.sharding.backends import ShardUnavailableError
from repro.sharding.ring import HashRing, RingDiff

JOURNAL_NAME = "rebalance.json"
JOURNAL_VERSION = 1

#: Journal state machine; transitions only ever move right.
JOURNAL_STATES = ("planned", "draining", "flipped", "done")


class RebalanceError(RuntimeError):
    """A rebalance protocol violation (wrong state, routing no-op, …)."""


class RebalanceInProgressError(RebalanceError):
    """A second rebalance was requested while one is active."""


@dataclass
class RebalanceJournal:
    """The on-disk migration intent log (``rebalance.json``).

    Lives next to the manifest; written atomically (tmp + replace) so a
    crash never leaves a torn journal.  It records only the *plan* (old
    ring, new ring) and the coarse state — per-key progress is recovered
    by rescanning shard catalogs, which the idempotent drain protocol
    makes safe.
    """

    root: Path
    old_ring: dict
    new_ring: dict
    state: str = "planned"

    @property
    def path(self) -> Path:
        return Path(self.root) / JOURNAL_NAME

    @classmethod
    def load(cls, root) -> "RebalanceJournal | None":
        """The journal at ``root``, or ``None`` when no rebalance is in
        flight."""
        path = Path(root) / JOURNAL_NAME
        if not path.exists():
            return None
        data = json.loads(path.read_text())
        if data.get("version") != JOURNAL_VERSION:
            raise ValueError(
                f"rebalance journal version {data.get('version')} not "
                "supported"
            )
        state = data.get("state")
        if state not in JOURNAL_STATES:
            raise ValueError(f"rebalance journal holds unknown state {state!r}")
        return cls(
            root=Path(root),
            old_ring=data["old_ring"],
            new_ring=data["new_ring"],
            state=state,
        )

    def write(self) -> None:
        payload = {
            "version": JOURNAL_VERSION,
            "state": self.state,
            "old_ring": self.old_ring,
            "new_ring": self.new_ring,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        tmp.replace(self.path)

    def advance(self, state: str) -> None:
        """Atomically advance to ``state`` (idempotent; never backwards)."""
        if JOURNAL_STATES.index(state) < JOURNAL_STATES.index(self.state):
            raise RebalanceError(
                f"journal cannot move backwards ({self.state} -> {state})"
            )
        self.state = state
        self.write()

    def remove(self) -> None:
        self.path.unlink(missing_ok=True)


@dataclass
class DrainReport:
    """What one :meth:`Rebalancer.drain` call accomplished."""

    #: Keys examined this call (taken off the work queue).
    examined: int = 0
    #: Keys copied onto their new owner this call.
    copied: int = 0
    #: Keys whose copy was skipped (already present on the target — a
    #: prior copy or a newer foreground write; the target wins).
    skipped: int = 0
    #: Keys deleted from their old owner this call.
    deleted: int = 0
    bytes_copied: int = 0
    #: Shards the drain is waiting on (down or breaker-open); the batch
    #: they blocked stays queued and is retried after healing.
    paused_on: list[int] = field(default_factory=list)
    #: No moved keys remain anywhere (verified by a full rescan).
    done: bool = False


class Rebalancer:
    """Budgeted, crash-safe key migration between shards.

    Created by :meth:`ShardedKVStore.begin_rebalance` (fresh plan) or by
    :meth:`ShardedKVStore.open` (resuming an unfinished journal).  Drive
    it with :meth:`drain` / :meth:`drain_until_done`, then
    :meth:`finalize`.

    The rebalancer talks to the backend directly (the facade's routing
    would send it in circles: moved keys route to their *new* owner while
    the bytes still sit on the old one) and serialises against foreground
    deletes via the store's rebalance lock, so a delete can never
    interleave inside a key's copy window and resurrect a dead value.
    """

    def __init__(self, store, journal: RebalanceJournal, *, batch_size: int = 32) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.store = store
        self.journal = journal
        self.old_ring = HashRing(**journal.old_ring)
        self.new_ring = HashRing(**journal.new_ring)
        if self.old_ring.n_shards != self.new_ring.n_shards:
            raise RebalanceError(
                "rebalancing cannot change the shard count (only weights "
                "and vnodes)"
            )
        self.diff: RingDiff = HashRing.diff(self.old_ring, self.new_ring)
        self.batch_size = batch_size
        #: Optional FaultInjector for the coordinator-side crash sweep
        #: (sites ``rebalance.copy`` / ``rebalance.delete`` /
        #: ``rebalance.flip``).
        self.faults = None
        #: (source, key) work queue from the last catalog rescan.
        self._queue: list[tuple[int, bytes]] = []
        self._scanned_empty = False
        # Lifetime stats (telemetry; not persisted — recovery rescans).
        self.keys_copied = 0
        self.copies_skipped = 0
        self.keys_deleted = 0
        self.bytes_copied = 0
        self.batches = 0
        self.pauses = 0

    # ------------------------------------------------------------- queries

    @property
    def state(self) -> str:
        return self.journal.state

    def status(self) -> dict:
        """Operator-facing progress snapshot."""
        return {
            "state": self.journal.state,
            "keys_copied": self.keys_copied,
            "copies_skipped": self.copies_skipped,
            "keys_deleted": self.keys_deleted,
            "bytes_copied": self.bytes_copied,
            "batches": self.batches,
            "pauses": self.pauses,
            "queued": len(self._queue),
            "moved_fraction": self.diff.moved_fraction,
        }

    def next_pair(self) -> tuple[int, int] | None:
        """``(source, target)`` of the next key the drain will move, or
        ``None`` when the queue is empty (drill tooling: pick victims)."""
        if not self._queue:
            return None
        source, key = self._queue[0]
        return source, self.new_ring.shard_of(key)

    # -------------------------------------------------------------- drain

    def _fire(self, site: str) -> None:
        if self.faults is not None:
            self.faults.fire(site)

    def _paused(self, shard_id: int) -> bool:
        return not self.store.backend.shard_alive(
            shard_id
        ) or self.store._breaker_open(shard_id)

    def _rescan(self, report: DrainReport) -> bool:
        """Rebuild the work queue from shard catalogs: every key sitting
        on a shard the new ring does not route it to must move.  Returns
        False (and records the pause) when a shard cannot be scanned."""
        queue: list[tuple[int, bytes]] = []
        for source in range(self.store.n_shards):
            if self._paused(source):
                report.paused_on.append(source)
                return False
            try:
                keys = self.store.backend.call(source, "keys")
            except ShardUnavailableError:
                report.paused_on.append(source)
                return False
            queue.extend(
                (source, key)
                for key in keys
                if self.new_ring.shard_of(key) != source
            )
        self._queue = queue
        self._scanned_empty = not queue
        return True

    def drain(self, budget: int | None = None) -> DrainReport:
        """Move up to ``budget`` keys (default ``batch_size``) toward
        their new owners: copy-to-target, verify-CRC, delete-from-source.

        Never raises on shard unavailability — the blocked batch stays
        queued and ``paused_on`` names the shards being waited on.
        ``done`` is True only after a full rescan found nothing left."""
        if self.journal.state != "draining":
            raise RebalanceError(
                f"drain is only legal in the 'draining' state, not "
                f"{self.journal.state!r}"
            )
        report = DrainReport()
        budget = self.batch_size if budget is None else budget
        if not self._queue:
            if not self._rescan(report):
                self.pauses += 1
                return report
            if self._scanned_empty:
                report.done = True
                return report
        take, self._queue = self._queue[:budget], self._queue[budget:]
        # Group the batch by (source, target): one copy call and one
        # delete call per pair keeps the RPC count proportional to the
        # number of shard pairs, not keys.
        groups: dict[tuple[int, int], list[bytes]] = {}
        for source, key in take:
            groups.setdefault(
                (source, self.new_ring.shard_of(key)), []
            ).append(key)
        for (source, target), keys in sorted(groups.items()):
            if self._paused(source) or self._paused(target):
                self._requeue(source, keys, report)
                continue
            try:
                moved = self._move_batch(source, target, keys, report)
            except ShardUnavailableError:
                moved = False
            if not moved:
                self._requeue(source, keys, report, paused=(source, target))
            else:
                report.examined += len(keys)
        self.batches += 1
        return report

    def _requeue(
        self,
        source: int,
        keys: list[bytes],
        report: DrainReport,
        paused: tuple[int, int] | None = None,
    ) -> None:
        self._queue.extend((source, key) for key in keys)
        pause_on = paused if paused is not None else (source,)
        for shard_id in pause_on:
            if self._paused(shard_id) and shard_id not in report.paused_on:
                report.paused_on.append(shard_id)
        self.pauses += 1

    def _move_batch(
        self, source: int, target: int, keys: list[bytes], report: DrainReport
    ) -> bool:
        """One copy/verify/delete cycle for ``keys`` (all source→target).

        Runs under the store's rebalance lock so a foreground delete
        (which must hit both owners) cannot interleave between our copy
        and our delete and have its tombstone overwritten by the stale
        source value."""
        backend = self.store.backend
        with self.store._rebalance_lock:
            values = backend.call(source, "get_many", (keys,))
            # A key already gone from the source was deleted or drained
            # concurrently; nothing to move.
            pairs = [
                (key, value)
                for key, value in zip(keys, values)
                if value is not None
            ]
            if pairs:
                self._fire("rebalance.copy")
                inserted = backend.call(target, "copy_absent", (pairs,))
                for (key, value), did in zip(pairs, inserted):
                    if did:
                        self.keys_copied += 1
                        self.bytes_copied += len(value)
                        report.copied += 1
                        report.bytes_copied += len(value)
                    else:
                        self.copies_skipped += 1
                        report.skipped += 1
                # Verify through the target's normal read path: the store
                # CRC-checks every read, so a non-None answer is a
                # CRC-clean, durable copy.  Only verified keys may be
                # deleted from the source.
                verified = backend.call(
                    target, "get_many", ([key for key, _ in pairs],)
                )
                deletable = [
                    key
                    for (key, _), value in zip(pairs, verified)
                    if value is not None
                ]
            else:
                deletable = []
            if deletable:
                self._fire("rebalance.delete")
                removed = backend.call(source, "delete_many", (deletable,))
                n = sum(1 for r in removed if r)
                self.keys_deleted += n
                report.deleted += n
        return True

    def drain_until_done(
        self,
        *,
        budget: int | None = None,
        timeout_s: float = 120.0,
        heal_timeout_s: float = 10.0,
    ) -> None:
        """Drain to empty, waiting out pauses via the attached supervisor
        (or plain sleep when none is attached)."""
        deadline = time.monotonic() + timeout_s
        while True:
            report = self.drain(budget)
            if report.done:
                return
            if time.monotonic() >= deadline:
                raise RebalanceError(
                    f"drain did not complete within {timeout_s}s "
                    f"(waiting on shards {report.paused_on})"
                )
            if report.paused_on:
                supervisor = self.store.supervisor
                if supervisor is not None:
                    supervisor.await_shards(
                        report.paused_on,
                        timeout=min(
                            heal_timeout_s, deadline - time.monotonic()
                        ),
                    )
                else:
                    time.sleep(0.02)

    # ----------------------------------------------------------- finalize

    def finalize(self) -> None:
        """Flip routing to the new ring permanently and retire the journal.

        Refuses while moved keys remain (drain first).  Crash-ordered:
        journal ``flipped`` (point of no return, atomically) → manifest
        rewritten with the new ring → journal ``done`` → journal removed.
        ``open()`` rolls any suffix of that sequence forward."""
        if self.journal.state == "draining":
            report = DrainReport()
            if not self._rescan(report):
                raise RebalanceError(
                    f"cannot verify drain completion; shards "
                    f"{report.paused_on} unavailable"
                )
            if self._queue:
                raise RebalanceError(
                    f"{len(self._queue)} key(s) still await migration; "
                    "drain before finalizing"
                )
            self.journal.advance("flipped")
        if self.journal.state == "flipped":
            self._fire("rebalance.flip")
            self.store.ring = self.new_ring
            self.store._write_manifest()
            self.journal.advance("done")
        self.journal.remove()
        self.store._complete_rebalance()
