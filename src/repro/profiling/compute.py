"""Analytic compute cost model for training and prediction.

The paper measures training energy with RAPL on a Xeon + Tesla box; we
replace the hardware counters with a FLOP-count model: a dense layer of
shape (i, o) costs ``2·i·o`` FLOPs per sample forward and roughly twice
that backward, and energy/latency follow from a fixed pJ/FLOP and FLOP/s.

Defaults approximate vectorised CPU math: ~20 GFLOP/s effective throughput
at ~3 W incremental draw → 150 pJ/FLOP marginal cost (what a software-level
scheme actually burns on top of the memory traffic, cf. §4.1.4's DRAM/CPU
energy terms).
"""

from __future__ import annotations

from dataclasses import dataclass


def mlp_flops_per_sample(dims) -> int:
    """Forward FLOPs of an MLP with the given layer widths."""
    dims = list(dims)
    return sum(2 * a * b for a, b in zip(dims[:-1], dims[1:]))


@dataclass(frozen=True)
class ComputeCostModel:
    """Converts FLOP counts into energy (pJ) and latency (s)."""

    pj_per_flop: float = 150.0
    flops_per_second: float = 2e10
    backward_factor: float = 2.0

    def vae_training_flops(
        self,
        input_dim: int,
        hidden,
        latent_dim: int,
        n_samples: int,
        epochs: int,
    ) -> float:
        """Total FLOPs to train a VAE of the given shape."""
        hidden = list(hidden)
        encoder = mlp_flops_per_sample([input_dim, *hidden, 2 * latent_dim])
        decoder = mlp_flops_per_sample([latent_dim, *reversed(hidden), input_dim])
        per_sample = (encoder + decoder) * (1.0 + self.backward_factor)
        return per_sample * n_samples * epochs

    def prediction_flops(self, input_dim: int, hidden, latent_dim: int) -> float:
        """FLOPs of one encoder + nearest-centroid prediction."""
        hidden = list(hidden)
        return mlp_flops_per_sample([input_dim, *hidden, latent_dim])

    def energy_pj(self, flops: float) -> float:
        """Energy in picojoules for a FLOP count."""
        return flops * self.pj_per_flop

    def latency_seconds(self, flops: float) -> float:
        """Wall time in seconds for a FLOP count."""
        return flops / self.flops_per_second
