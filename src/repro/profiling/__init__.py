"""Energy/latency profiling substitutes for `perf` / Intel RAPL.

- :mod:`repro.profiling.compute` — analytic cost of model training and
  prediction (FLOP-based), replacing the GPU wall-clock/RAPL measurements of
  Figures 16 and 18;
- :mod:`repro.profiling.profiler` — a sampled package-energy timeline with
  phase markers, reproducing the perf-style traces of Figures 16 and 17.
"""

from repro.profiling.compute import ComputeCostModel
from repro.profiling.profiler import PhaseTimeline

__all__ = ["ComputeCostModel", "PhaseTimeline"]
