"""Phase-marked energy timeline (the perf/RAPL trace substitute).

Figures 16 and 17 plot sampled package energy over time through training,
writing and retraining phases.  ``PhaseTimeline`` accumulates (simulated
time, energy) events tagged with a phase name and can resample the record
into fixed-interval power samples, like perf's 1000 Hz sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TimelineEvent:
    """One accounted burst of activity."""

    t_start: float
    duration_s: float
    energy_pj: float
    phase: str


class PhaseTimeline:
    """Simulated-clock energy recorder with named phases."""

    def __init__(self) -> None:
        self._events: list[TimelineEvent] = []
        self._clock = 0.0
        self._phase = "idle"
        self._phase_marks: list[tuple[float, str]] = [(0.0, "idle")]

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock

    def begin_phase(self, name: str) -> None:
        """Mark the start of a named phase (train / write / retrain / ...)."""
        self._phase = name
        self._phase_marks.append((self._clock, name))

    def record(self, energy_pj: float, duration_s: float) -> None:
        """Account one burst of activity in the current phase."""
        if duration_s < 0 or energy_pj < 0:
            raise ValueError("energy and duration must be non-negative")
        self._events.append(
            TimelineEvent(self._clock, duration_s, energy_pj, self._phase)
        )
        self._clock += duration_s

    def total_energy_pj(self, phase: str | None = None) -> float:
        """Total energy, optionally filtered to one phase."""
        return sum(
            e.energy_pj
            for e in self._events
            if phase is None or e.phase == phase
        )

    def phase_marks(self) -> list[tuple[float, str]]:
        """The (time, phase-name) transition markers."""
        return list(self._phase_marks)

    def power_samples(self, interval_s: float = 1e-3):
        """Resample into (t, average power in W) points, perf-style.

        Each event's energy is spread uniformly over its duration;
        zero-duration events are folded into their containing sample.
        """
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        if not self._events:
            return np.zeros(0), np.zeros(0)
        end = self._clock
        n = max(1, int(np.ceil(end / interval_s)))
        energy = np.zeros(n)
        for e in self._events:
            if e.duration_s <= 0:
                idx = min(int(e.t_start / interval_s), n - 1)
                energy[idx] += e.energy_pj
                continue
            first = int(e.t_start / interval_s)
            last = min(int((e.t_start + e.duration_s) / interval_s), n - 1)
            per_sample = e.energy_pj / (last - first + 1)
            energy[first : last + 1] += per_sample
        t = (np.arange(n) + 0.5) * interval_s
        watts = energy * 1e-12 / interval_s
        return t, watts
