"""Memory controller: write scheme + wear leveling over the raw device.

The controller is the boundary the paper draws in Figure 3 between software
(E2-NVM, the data index) and hardware (the NVM device with its proprietary
wear leveling).  Every access flows through:

1. logical→physical segment remapping (wear leveling);
2. the configured write scheme (DCW by default — real Optane controllers
   perform data-comparison writes at cache-line granularity);
3. the raw media (:class:`repro.nvm.NVMDevice`).

Accesses must stay within one segment, which matches how the storage layer
above allocates: one value per fixed-size segment.

When the device models wear-out (see
:class:`~repro.nvm.device.WearOutConfig`), the controller additionally runs
**verify-after-write**: every programmed range is read back (the verify
read is accounted in energy/latency stats like any other read), corrected
through the device's ECP table, and compared against the intended content.
Mismatching bits — stuck cells the program pulse silently failed on — are
recorded as ECP correction entries; a write needing more entries than the
segment has left retires the segment through the health manager and raises
:class:`~repro.nvm.health.SegmentRetiredError` for the placement layer to
quarantine and retry.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WriteScheme
from repro.baselines.dcw import DCW
from repro.nvm.device import NVMDevice, WriteResult
from repro.nvm.health import HealthManager, SegmentRetiredError
from repro.nvm.wear_leveling import NoWearLeveling
from repro.util.bits import popcount_array


class MemoryController:
    """Front-end for all NVM accesses.

    Args:
        device: the raw simulated media.
        scheme: controller write scheme; defaults to :class:`DCW`.
        wear_leveling: segment remapping policy; defaults to none.
        verify_writes: read back and ECP-verify every write.  ``None``
            (default) enables it exactly when the device has a wear-out
            model; pass ``False`` to run a wear-out device *unprotected*
            (the corrupt-read baseline).  Verification composes only with
            the identity wear-leveling policy: an active remapper would
            move segments out from under their ECP entries.
    """

    def __init__(
        self,
        device: NVMDevice,
        scheme: WriteScheme | None = None,
        wear_leveling=None,
        verify_writes: bool | None = None,
    ) -> None:
        self.device = device
        self.scheme = scheme if scheme is not None else DCW()
        self.wear_leveling = wear_leveling or NoWearLeveling()
        self.wear_leveling.attach(device)
        if verify_writes is None:
            verify_writes = device.wearout is not None
        if verify_writes and device.ecc is None:
            raise ValueError(
                "verify_writes needs a device with a wearout model"
            )
        if verify_writes and not isinstance(
            self.wear_leveling, NoWearLeveling
        ):
            raise ValueError(
                "verify_writes cannot be combined with active wear "
                "leveling: remapping would detach segments from their "
                "ECP entries"
            )
        self.verify_writes = verify_writes
        self.ecc = device.ecc if verify_writes else None
        self.health_manager: HealthManager | None = (
            HealthManager(self) if verify_writes else None
        )
        self.verify_reads = 0
        self.corrections_recorded = 0

    @property
    def segment_size(self) -> int:
        """Placement granularity, forwarded from the device."""
        return self.device.segment_size

    @property
    def n_segments(self) -> int:
        """Logical segment count (wear leveling may reserve spares)."""
        if hasattr(self.wear_leveling, "logical_segments"):
            return self.wear_leveling.logical_segments
        return self.device.n_segments

    @property
    def stats(self):
        """The device's cumulative activity counters."""
        return self.device.stats

    def write(self, logical_addr: int, data: bytes | np.ndarray) -> WriteResult:
        """Write ``data`` at ``logical_addr`` through the scheme.

        With verify-after-write enabled, the scheme plans against the
        *ECP-corrected* old content (so DCW never pulses a dead-but-
        corrected cell whose logical value already matches) and the
        programmed range is read back and verified; see :meth:`_verify`.

        Raises:
            SegmentRetiredError: verification needed more correction
                entries than the segment has left; the media write is
                void (stuck cells never change) and the caller must place
                the data elsewhere.
        """
        data = self._as_u8(data)
        phys_addr, segment = self._map(logical_addr, data.size)
        old_stored = self.device.read_array(phys_addr, data.size)
        size = self.device.segment_size
        phys_seg, offset = phys_addr // size, phys_addr % size
        if self.ecc is not None:
            old_stored = self.ecc.correct(phys_seg, old_stored, offset)
        plan = self.scheme.prepare(logical_addr, old_stored, data)
        result = self.device.program(
            phys_addr, plan.stored, plan.program_mask, plan.aux_bits
        )
        if self.verify_writes:
            self._verify(phys_seg, phys_addr, offset, old_stored, plan)
        self.wear_leveling.after_write(self.device, segment)
        return result

    def _verify(
        self, phys_seg: int, phys_addr: int, offset: int, old_corrected, plan
    ) -> None:
        """Read back a just-programmed range, patch it through the ECP
        table and compare against the intended content; record fresh
        correction entries for any cell the program pulse failed on.

        Already-retired segments are exempt: undo-log rollback restores
        old data onto them best-effort (their surviving cells still hold
        it) and must not cascade into further retirement errors.
        """
        health = self.device.health
        if health is not None and phys_seg in health.retired:
            return
        mask = plan.program_mask
        if mask is None:
            mask = np.full(plan.stored.size, 0xFF, dtype=np.uint8)
        expected = np.bitwise_or(
            np.bitwise_and(old_corrected, np.bitwise_not(mask)),
            np.bitwise_and(plan.stored, mask),
        )
        readback = self.device.read_array(phys_addr, expected.size)
        self.verify_reads += 1
        readback = self.ecc.correct(phys_seg, readback, offset)
        diff = np.bitwise_xor(readback, expected)
        if diff.any():
            positions = np.flatnonzero(np.unpackbits(diff))
            bit_offsets = offset * 8 + positions
            values = np.unpackbits(expected)[positions]
            if not self.ecc.record(phys_seg, bit_offsets, values):
                if self.health_manager is not None:
                    self.health_manager.retire(phys_seg)
                else:
                    health.retired.add(phys_seg)
                raise SegmentRetiredError(phys_seg)
            self.corrections_recorded += int(positions.size)
        if self.ecc.at_capacity(phys_seg) and self.health_manager is not None:
            self.health_manager.mark_retiring(phys_seg)

    def torn_program(self, logical_addr: int, data: bytes | np.ndarray) -> None:
        """Program ``data`` as a crash-interrupted write.

        The media pulses land (stuck cells silently keep their value), but
        nothing that needs the controller to stay alive afterwards runs: no
        verify read-back, no ECP recording, no retirement, no wear-leveling
        bookkeeping.  Torn-write fault injection uses this as its payload
        writer — routing a tear through :meth:`write` would let
        verify-after-write retire a segment *during* the simulated crash,
        swallowing the crash error and making the replay diverge.
        """
        data = self._as_u8(data)
        phys_addr, _ = self._map(logical_addr, data.size)
        old_stored = self.device.read_array(phys_addr, data.size)
        old_stored = self._corrected(phys_addr, old_stored)
        plan = self.scheme.prepare(logical_addr, old_stored, data)
        self.device.program(
            phys_addr, plan.stored, plan.program_mask, plan.aux_bits
        )

    def write_many(
        self, logical_addrs, values
    ) -> list[WriteResult]:
        """Write one value per logical address, batched when possible.

        Equal-length values landing in distinct segments (with no active
        wear-leveling remapper, whose mid-batch remaps would be
        order-dependent) take the vectorised read/prepare/program path;
        anything else falls back to per-row :meth:`write` calls with
        identical semantics.
        """
        rows = [self._as_u8(v) for v in values]
        logical_addrs = [int(a) for a in logical_addrs]
        if len(rows) != len(logical_addrs):
            raise ValueError("logical_addrs length must match value count")
        if not rows:
            return []
        length = rows[0].size
        batched = (
            len(rows) > 1
            and not self.verify_writes
            and isinstance(self.wear_leveling, NoWearLeveling)
            and all(r.size == length for r in rows)
        )
        if batched:
            phys = np.empty(len(rows), dtype=np.int64)
            segments = np.empty(len(rows), dtype=np.int64)
            for i, logical_addr in enumerate(logical_addrs):
                phys[i], segments[i] = self._map(logical_addr, length)
            batched = np.unique(segments).size == segments.size
        if not batched:
            return [
                self.write(addr, row)
                for addr, row in zip(logical_addrs, rows)
            ]
        old_rows = self.device.read_arrays(phys, length)
        data = np.stack(rows)
        stored, masks, aux = self.scheme.prepare_many(
            logical_addrs, old_rows, data
        )
        return self.device.program_many(phys, stored, masks, aux)

    def read(self, logical_addr: int, length: int) -> bytes:
        """Read ``length`` logical bytes from ``logical_addr`` (patched
        through the ECP table when verification is enabled).

        ECP patching is *transient*: the stuck cells it papers over are
        physically unwritable, so there is nothing to persist back.  Drift
        damage, by contrast, IS repairable — :meth:`refresh` (used by the
        scrubber and the KV store's read-repair path) rewrites a range so
        corrections stick on the media instead of being re-paid per read.
        """
        phys_addr, _ = self._map(logical_addr, length)
        stored = self.device.read_array(phys_addr, length)
        stored = self._corrected(phys_addr, stored)
        return self.scheme.decode(logical_addr, stored).tobytes()

    def refresh(self, logical_addr: int, length: int) -> int:
        """Persistently heal a range: margin-read the true stored content
        past any resistance drift and rewrite it through the normal write
        path (scheme + verify + accounting — refresh is a real write and
        costs real energy/wear).

        Drifted cells sense flipped, so ``true = sensed XOR drift_mask``;
        ECP-patched stuck cells never drift, so the two corrections
        compose.  The rewrite force-pulses every drifted cell in range
        (see :meth:`NVMDevice.program`), clearing its drift and restarting
        its retention timer.  Returns the number of drifted cells healed.

        Raises:
            SegmentRetiredError: the verify path retired the segment
                mid-refresh; the caller must relocate the data instead.
        """
        phys_addr, _ = self._map(logical_addr, length)
        dmask = self.device.drift_mask(phys_addr, length)
        sensed = self.device.read_array(phys_addr, length)
        stored = np.bitwise_xor(sensed, dmask)
        stored = self._corrected(phys_addr, stored)
        logical = np.asarray(
            self.scheme.decode(logical_addr, stored), dtype=np.uint8
        )
        self.write(logical_addr, logical)
        return popcount_array(dmask)

    def drift_mask(self, logical_addr: int, length: int) -> np.ndarray:
        """Packed drifted-bit flags for a logical range (the device's
        margin read, remapped through wear leveling)."""
        phys_addr, _ = self._map(logical_addr, length)
        return self.device.drift_mask(phys_addr, length)

    def peek(self, logical_addr: int, length: int) -> np.ndarray:
        """Unaccounted decoded read (tooling/tests/model training snapshots)."""
        phys_addr, _ = self._map(logical_addr, length)
        stored = self.device.peek(phys_addr, length)
        stored = self._corrected(phys_addr, stored)
        return np.asarray(self.scheme.decode(logical_addr, stored), dtype=np.uint8)

    def _corrected(self, phys_addr: int, stored: np.ndarray) -> np.ndarray:
        if self.ecc is None:
            return stored
        size = self.device.segment_size
        return self.ecc.correct(
            phys_addr // size, stored, phys_addr % size
        )

    def segment_address(self, index: int) -> int:
        """Logical byte address of logical segment ``index``."""
        if not 0 <= index < self.n_segments:
            raise IndexError(f"logical segment {index} out of range")
        return index * self.device.segment_size

    def _map(self, logical_addr: int, length: int) -> tuple[int, int]:
        size = self.device.segment_size
        segment = logical_addr // size
        offset = logical_addr % size
        if offset + length > size:
            raise ValueError(
                f"access of {length} bytes at offset {offset} crosses the "
                f"{size}-byte segment boundary"
            )
        if not 0 <= segment < self.n_segments:
            raise IndexError(f"logical segment {segment} out of range")
        phys_segment = self.wear_leveling.to_physical(segment)
        return phys_segment * size + offset, segment

    @staticmethod
    def _as_u8(data: bytes | np.ndarray) -> np.ndarray:
        if isinstance(data, (bytes, bytearray, memoryview)):
            return np.frombuffer(bytes(data), dtype=np.uint8)
        arr = np.asarray(data)
        if arr.dtype != np.uint8:
            raise TypeError("controller data must be uint8 or bytes")
        return arr
