"""Memory controller: write scheme + wear leveling over the raw device.

The controller is the boundary the paper draws in Figure 3 between software
(E2-NVM, the data index) and hardware (the NVM device with its proprietary
wear leveling).  Every access flows through:

1. logical→physical segment remapping (wear leveling);
2. the configured write scheme (DCW by default — real Optane controllers
   perform data-comparison writes at cache-line granularity);
3. the raw media (:class:`repro.nvm.NVMDevice`).

Accesses must stay within one segment, which matches how the storage layer
above allocates: one value per fixed-size segment.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WriteScheme
from repro.baselines.dcw import DCW
from repro.nvm.device import NVMDevice, WriteResult
from repro.nvm.wear_leveling import NoWearLeveling


class MemoryController:
    """Front-end for all NVM accesses.

    Args:
        device: the raw simulated media.
        scheme: controller write scheme; defaults to :class:`DCW`.
        wear_leveling: segment remapping policy; defaults to none.
    """

    def __init__(
        self,
        device: NVMDevice,
        scheme: WriteScheme | None = None,
        wear_leveling=None,
    ) -> None:
        self.device = device
        self.scheme = scheme if scheme is not None else DCW()
        self.wear_leveling = wear_leveling or NoWearLeveling()
        self.wear_leveling.attach(device)

    @property
    def segment_size(self) -> int:
        """Placement granularity, forwarded from the device."""
        return self.device.segment_size

    @property
    def n_segments(self) -> int:
        """Logical segment count (wear leveling may reserve spares)."""
        if hasattr(self.wear_leveling, "logical_segments"):
            return self.wear_leveling.logical_segments
        return self.device.n_segments

    @property
    def stats(self):
        """The device's cumulative activity counters."""
        return self.device.stats

    def write(self, logical_addr: int, data: bytes | np.ndarray) -> WriteResult:
        """Write ``data`` at ``logical_addr`` through the scheme."""
        data = self._as_u8(data)
        phys_addr, segment = self._map(logical_addr, data.size)
        old_stored = self.device.read_array(phys_addr, data.size)
        plan = self.scheme.prepare(logical_addr, old_stored, data)
        result = self.device.program(
            phys_addr, plan.stored, plan.program_mask, plan.aux_bits
        )
        self.wear_leveling.after_write(self.device, segment)
        return result

    def write_many(
        self, logical_addrs, values
    ) -> list[WriteResult]:
        """Write one value per logical address, batched when possible.

        Equal-length values landing in distinct segments (with no active
        wear-leveling remapper, whose mid-batch remaps would be
        order-dependent) take the vectorised read/prepare/program path;
        anything else falls back to per-row :meth:`write` calls with
        identical semantics.
        """
        rows = [self._as_u8(v) for v in values]
        logical_addrs = [int(a) for a in logical_addrs]
        if len(rows) != len(logical_addrs):
            raise ValueError("logical_addrs length must match value count")
        if not rows:
            return []
        length = rows[0].size
        batched = (
            len(rows) > 1
            and isinstance(self.wear_leveling, NoWearLeveling)
            and all(r.size == length for r in rows)
        )
        if batched:
            phys = np.empty(len(rows), dtype=np.int64)
            segments = np.empty(len(rows), dtype=np.int64)
            for i, logical_addr in enumerate(logical_addrs):
                phys[i], segments[i] = self._map(logical_addr, length)
            batched = np.unique(segments).size == segments.size
        if not batched:
            return [
                self.write(addr, row)
                for addr, row in zip(logical_addrs, rows)
            ]
        old_rows = self.device.read_arrays(phys, length)
        data = np.stack(rows)
        stored, masks, aux = self.scheme.prepare_many(
            logical_addrs, old_rows, data
        )
        return self.device.program_many(phys, stored, masks, aux)

    def read(self, logical_addr: int, length: int) -> bytes:
        """Read ``length`` logical bytes from ``logical_addr``."""
        phys_addr, _ = self._map(logical_addr, length)
        stored = self.device.read_array(phys_addr, length)
        return self.scheme.decode(logical_addr, stored).tobytes()

    def peek(self, logical_addr: int, length: int) -> np.ndarray:
        """Unaccounted decoded read (tooling/tests/model training snapshots)."""
        phys_addr, _ = self._map(logical_addr, length)
        stored = self.device.peek(phys_addr, length)
        return np.asarray(self.scheme.decode(logical_addr, stored), dtype=np.uint8)

    def segment_address(self, index: int) -> int:
        """Logical byte address of logical segment ``index``."""
        if not 0 <= index < self.n_segments:
            raise IndexError(f"logical segment {index} out of range")
        return index * self.device.segment_size

    def _map(self, logical_addr: int, length: int) -> tuple[int, int]:
        size = self.device.segment_size
        segment = logical_addr // size
        offset = logical_addr % size
        if offset + length > size:
            raise ValueError(
                f"access of {length} bytes at offset {offset} crosses the "
                f"{size}-byte segment boundary"
            )
        if not 0 <= segment < self.n_segments:
            raise IndexError(f"logical segment {segment} out of range")
        phys_segment = self.wear_leveling.to_physical(segment)
        return phys_segment * size + offset, segment

    @staticmethod
    def _as_u8(data: bytes | np.ndarray) -> np.ndarray:
        if isinstance(data, (bytes, bytearray, memoryview)):
            return np.frombuffer(bytes(data), dtype=np.uint8)
        arr = np.asarray(data)
        if arr.dtype != np.uint8:
            raise TypeError("controller data must be uint8 or bytes")
        return arr
