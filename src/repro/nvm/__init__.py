"""Simulated NVM substrate.

This package models a phase-change-memory (PCM / Optane-like) device at bit
granularity, replacing the real Optane PMem + PMDK + perf/RAPL stack used in
the paper:

- :mod:`repro.nvm.device` — the media itself: content bytes, per-segment write
  counters, optional per-bit programming (wear) counters.
- :mod:`repro.nvm.energy` / :mod:`repro.nvm.latency` — analytic per-operation
  energy and latency models, calibrated to the paper's Figure 1 (identical
  overwrites save ~56% energy versus fully-random overwrites).
- :mod:`repro.nvm.wear_leveling` — segment-swap wear leveling with period ψ
  (Figure 2) and start-gap rotation.
- :mod:`repro.nvm.controller` — the memory controller that applies a write
  scheme (DCW, FNW, ...) plus wear leveling to every access, and — when the
  device models wear-out — verify-after-write with ECP correction.
- :mod:`repro.nvm.ecc` / :mod:`repro.nvm.health` — Error-Correcting
  Pointers (stuck-cell substitution) and segment retirement/spare-capacity
  management for the endurance-exhaustion fault model.
- :mod:`repro.nvm.scrubber` — the background retention scrubber that
  detects and refresh-writes resistance-drifted cells (the read-side
  fault model enabled by :class:`~repro.nvm.device.DriftConfig`).
- :mod:`repro.nvm.compactor` — background capacity reclamation:
  compaction of retiring segments and static (cold-data) wear leveling,
  sharing the scrubber's :class:`~repro.nvm.worker.MaintenanceWorker`
  loop.
"""

from repro.nvm.device import (
    DriftConfig,
    NVMDevice,
    WearOutConfig,
    WriteResult,
)
from repro.nvm.ecc import ErrorCorrectingPointers
from repro.nvm.energy import EnergyModel
from repro.nvm.health import HealthManager, HealthState, SegmentRetiredError
from repro.nvm.latency import LatencyModel
from repro.nvm.stats import DeviceStats
from repro.nvm.wear_leveling import (
    NoWearLeveling,
    SegmentSwapWearLeveling,
    StartGapWearLeveling,
)
from repro.nvm.controller import MemoryController
from repro.nvm.scrubber import ScrubStats, Scrubber
from repro.nvm.compactor import CompactorStats, Compactor
from repro.nvm.worker import MaintenanceWorker

__all__ = [
    "Compactor",
    "CompactorStats",
    "MaintenanceWorker",
    "DriftConfig",
    "NVMDevice",
    "WearOutConfig",
    "WriteResult",
    "EnergyModel",
    "ErrorCorrectingPointers",
    "HealthManager",
    "HealthState",
    "LatencyModel",
    "DeviceStats",
    "MemoryController",
    "NoWearLeveling",
    "SegmentRetiredError",
    "ScrubStats",
    "Scrubber",
    "SegmentSwapWearLeveling",
    "StartGapWearLeveling",
]
