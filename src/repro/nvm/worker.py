"""Shared base for background media-maintenance workers.

The scrubber (read-side drift repair) and the compactor (write-side
capacity reclamation) run the same kind of loop: a single-flight,
pause/resume-able, exception-safe daemon thread that performs one bounded
"round" of maintenance per wakeup.  :class:`MaintenanceWorker` factors
that loop out so both share one tested implementation:

- **single-flight**: :meth:`start` is idempotent — a running worker's
  thread is returned instead of starting a second one;
- **pause/resume**: :meth:`pause` gates the loop (at most the in-flight
  round completes) without killing the thread; :meth:`resume` lifts it.
  A pause issued before start is honoured — the worker comes up gated;
- **exception-safe**: a failing round is recorded through
  :meth:`_note_worker_error` and the loop keeps going.  Maintenance must
  never take the store down.

Subclasses implement :meth:`run_once` (one rate-limited round) and may
override :meth:`_note_worker_error` to land the error on their own stats.
"""

from __future__ import annotations

import threading


class MaintenanceWorker:
    """Single-flight, pausable, exception-safe background round-runner.

    Args:
        interval_s: sleep between rounds.
        name: the worker thread's name (diagnostics).
    """

    def __init__(self, *, interval_s: float, name: str) -> None:
        self.interval_s = interval_s
        self.name = name
        self.last_error: BaseException | None = None
        #: Rounds the background loop has completed (successful or not) —
        #: the cadence signal supervision telemetry rolls up.
        self.rounds_completed = 0
        self._admin_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._resume = threading.Event()
        self._resume.set()

    # ------------------------------------------------------------- the round

    def run_once(self):
        """One bounded round of maintenance; subclasses implement it."""
        raise NotImplementedError

    def _note_worker_error(self, exc: BaseException) -> None:
        """Record a failed round; subclasses extend to count it on their
        stats object."""
        self.last_error = exc

    # ------------------------------------------------------- background loop

    def start(self) -> threading.Thread:
        """Start the single-flight background worker (idempotent: a
        running worker's thread is returned instead of starting another).
        """
        with self._admin_lock:
            if self._thread is not None and self._thread.is_alive():
                return self._thread
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._worker, daemon=True, name=self.name
            )
            self._thread.start()
            return self._thread

    def stop(self, timeout: float | None = 5.0) -> None:
        """Stop the background worker and join it."""
        with self._admin_lock:
            thread = self._thread
            self._stop.set()
            self._resume.set()  # unblock a paused worker so it can exit
        if thread is not None:
            thread.join(timeout)

    def pause(self) -> None:
        """Gate the worker: at most the in-flight round completes, then the
        loop blocks until :meth:`resume` (the thread stays alive)."""
        self._resume.clear()

    def resume(self) -> None:
        """Lift a :meth:`pause`."""
        self._resume.set()

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def paused(self) -> bool:
        return not self._resume.is_set()

    def info(self) -> dict:
        """Picklable supervision snapshot of this worker's loop state."""
        return {
            "name": self.name,
            "running": self.running,
            "paused": self.paused,
            "rounds_completed": self.rounds_completed,
            "last_error": (
                repr(self.last_error) if self.last_error is not None else None
            ),
        }

    def _worker(self) -> None:
        """Exception-safe maintenance loop: a failing round is recorded
        (``_note_worker_error``) and the loop keeps going."""
        while not self._stop.is_set():
            self._resume.wait()
            if self._stop.is_set():
                return
            try:
                self.run_once()
            except Exception as exc:  # noqa: BLE001 - isolation by design
                self._note_worker_error(exc)
            self.rounds_completed += 1
            self._stop.wait(self.interval_s)
