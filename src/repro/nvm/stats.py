"""Aggregate counters for the simulated device.

``DeviceStats`` is a plain accumulator; ``snapshot()`` / subtraction make it
easy to measure the activity of a single experiment phase::

    before = device.stats.snapshot()
    ...run workload...
    delta = device.stats.snapshot() - before
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class DeviceStats:
    """Cumulative device activity counters."""

    writes: int = 0
    reads: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    bits_programmed: int = 0
    bits_flipped: int = 0
    aux_bits_programmed: int = 0
    dirty_lines_written: int = 0
    write_energy_pj: float = 0.0
    read_energy_pj: float = 0.0
    write_latency_ns: float = 0.0
    read_latency_ns: float = 0.0

    def snapshot(self) -> "DeviceStats":
        """Return an independent copy of the current counters."""
        return DeviceStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def __sub__(self, other: "DeviceStats") -> "DeviceStats":
        return DeviceStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "DeviceStats") -> "DeviceStats":
        return DeviceStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def total_energy_pj(self) -> float:
        """Combined read+write media energy in picojoules."""
        return self.write_energy_pj + self.read_energy_pj

    @property
    def bits_programmed_per_write(self) -> float:
        """Average programmed (updated) bits per write operation."""
        return self.bits_programmed / self.writes if self.writes else 0.0

    @property
    def energy_per_write_pj(self) -> float:
        """Average write energy per write operation, in picojoules."""
        return self.write_energy_pj / self.writes if self.writes else 0.0
