"""Error-Correcting Pointers (ECP) for stuck-at cell substitution.

PCM cells fail *stuck-at*: after endurance exhaustion a cell permanently
holds its last value.  Because a stuck cell still reads deterministically,
the standard hardware answer is not parity but *substitution*: ECP
(Schechter et al., ISCA'10) pairs each memory line with a small table of
(cell pointer, replacement bit) entries; a read patches the pointed-at
positions with the stored replacement bits.

This module implements ECP at the simulator's segment granularity: every
physical segment owns up to ``entries_per_segment`` correction entries.  An
entry is *permanent* — it points at a dead cell, so it is never released,
only its replacement bit is updated when later writes change the data the
dead cell should hold.  When a write would need more entries than the
segment has left, the segment has failed; the caller (the memory
controller's verify-after-write path) retires it through the health
manager.

Entries live in DRAM dictionaries here, but logically they model a
per-segment media-resident table; :meth:`NVMDevice.save`/``load``
round-trip them with the rest of the wear-out state.
"""

from __future__ import annotations

import numpy as np


class ErrorCorrectingPointers:
    """Per-segment stuck-cell substitution entries.

    Args:
        segment_size: segment size in bytes (entries index bits within one
            segment: ``0 .. segment_size * 8 - 1``, MSB-first to match
            ``np.unpackbits``).
        entries_per_segment: correction capacity per segment; exceeding it
            means the segment has failed and must be retired.
    """

    def __init__(self, segment_size: int, entries_per_segment: int = 6) -> None:
        if segment_size <= 0:
            raise ValueError("segment_size must be positive")
        if entries_per_segment < 1:
            raise ValueError("entries_per_segment must be at least 1")
        self.segment_size = segment_size
        self.entries_per_segment = entries_per_segment
        # segment index -> {bit offset within segment: replacement bit}
        self._entries: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------- correction

    def correct(
        self, segment: int, data: np.ndarray, offset: int = 0
    ) -> np.ndarray:
        """Patch raw media ``data`` with the segment's correction entries.

        Args:
            segment: physical segment index the data was read from.
            data: raw ``uint8`` bytes straight off the media.
            offset: byte offset of ``data`` within the segment (sub-segment
                reads patch only the entries that fall inside the window).

        Returns ``data`` itself when no entry applies, otherwise a patched
        copy (the input array is never mutated).
        """
        entries = self._entries.get(segment)
        if not entries:
            return data
        out = None
        for bit_off, value in entries.items():
            byte = bit_off // 8 - offset
            if not 0 <= byte < data.shape[-1]:
                continue
            if out is None:
                out = data.copy()
            bit = np.uint8(0x80 >> (bit_off % 8))
            if value:
                out[byte] |= bit
            else:
                out[byte] &= np.uint8(~bit & 0xFF)
        return data if out is None else out

    # --------------------------------------------------------------- updates

    def record(self, segment: int, bit_offsets, bit_values) -> bool:
        """Upsert correction entries for ``segment``, all-or-nothing.

        ``bit_offsets`` are bit positions within the segment whose media
        cells disagree with the intended data; ``bit_values`` are the bits
        they should read as.  Existing entries (already-known dead cells)
        are updated in place; new offsets consume fresh entries.

        Returns ``False`` — recording *nothing* — when the new offsets
        would push the segment past ``entries_per_segment``; the caller
        must then retire the segment.
        """
        entries = self._entries.setdefault(segment, {})
        fresh = [int(b) for b in bit_offsets if int(b) not in entries]
        if len(entries) + len(fresh) > self.entries_per_segment:
            if not entries:
                del self._entries[segment]
            return False
        for bit_off, value in zip(bit_offsets, bit_values):
            entries[int(bit_off)] = int(value)
        return True

    # ------------------------------------------------------------ inspection

    def entries_used(self, segment: int) -> int:
        """Correction entries consumed by ``segment``."""
        return len(self._entries.get(segment, ()))

    def at_capacity(self, segment: int) -> bool:
        """Whether ``segment`` has no spare correction entries left."""
        return self.entries_used(segment) >= self.entries_per_segment

    @property
    def corrections_active(self) -> int:
        """Total correction entries across every segment."""
        return sum(len(e) for e in self._entries.values())

    def segments_with_entries(self) -> list[int]:
        """Segments holding at least one entry, ascending."""
        return sorted(s for s, e in self._entries.items() if e)

    # ----------------------------------------------------------- persistence

    def state_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten every entry to (segments, bit offsets, values) arrays."""
        segs, offs, vals = [], [], []
        for seg in sorted(self._entries):
            for bit_off in sorted(self._entries[seg]):
                segs.append(seg)
                offs.append(bit_off)
                vals.append(self._entries[seg][bit_off])
        return (
            np.asarray(segs, dtype=np.int64),
            np.asarray(offs, dtype=np.int64),
            np.asarray(vals, dtype=np.int64),
        )

    def restore_state(self, segments, offsets, values) -> None:
        """Reinstate :meth:`state_arrays` output, replacing current state."""
        self._entries = {}
        for seg, off, val in zip(segments, offsets, values):
            self._entries.setdefault(int(seg), {})[int(off)] = int(val)
