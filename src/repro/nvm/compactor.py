"""Background capacity reclamation: compaction + static wear leveling.

PR 4/5 made the media mortal; this module is the reclamation side of a
real FTL.  Without it the store only ever *loses* capacity: retiring
segments are evacuated and then stranded in quarantine with plenty of
endurance left, and cold values squat on barely-worn segments whose
endurance is never harvested.  The :class:`Compactor` runs two budgeted
maintenance activities per round, on the same single-flight pause/resume
worker loop as the scrubber (:class:`~repro.nvm.worker.MaintenanceWorker`):

1. **Compaction** — ``store.drain_relocations(budget)``: migrate live
   values off ``mark_retiring`` (and scrubber-escalated) segments through
   the normal transactional PUT path, which reclaims each drained segment
   into the spares pool (``HealthManager.reclaim``).  Doing this in the
   background keeps the foreground PUT path from absorbing the whole
   relocation backlog at once.

2. **Static wear leveling** — the cold-data dormancy heuristic (SoftWear's
   software-only layering): find the *coldest dormant* live value sitting
   on a *barely worn* segment and the *most worn* free segment, and when
   the wear gap justifies the write, ``store.migrate`` the cold value onto
   the worn segment.  Cold data parks on tired media that it will rarely
   pulse again, and the fresh segment it vacates re-enters the Dynamic
   Address Pool to absorb hot traffic — harvesting endurance that would
   otherwise idle under dormant values.  The ``wl.swap`` site fires before
   each swap's migration so the crash sweep can probe every migration
   write point.

Both activities are rate-limited per round (``relocations_per_round``,
``swaps_per_round``) so maintenance bandwidth cannot starve foreground
traffic, and both go through the store's transactional machinery — the
compactor never touches the media behind the catalog's back, which is
what keeps fsck and the crash sweep authoritative over its work.

Like the scrubber, the compactor is duck-typed over the store (the
``_by_addr`` liveness mirror and the heat stamps) to keep the ``nvm``
layer import-free of ``core``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nvm.worker import MaintenanceWorker


@dataclass
class CompactorStats:
    """Cumulative compactor telemetry (see :meth:`Compactor.telemetry`)."""

    rounds: int = 0
    #: Values migrated off retiring segments by the compaction half.
    relocations: int = 0
    #: Cold→worn migrations performed by the wear-leveling half.
    wl_swaps: int = 0
    #: Swap candidates picked but refused by ``store.migrate`` (target
    #: claimed/retired mid-flight, value vanished, store read-only).
    wl_swaps_refused: int = 0
    worker_errors: int = 0
    #: Relocation-queue entries left after the last round's budget — a
    #: growing backlog means compaction bandwidth is undersized for the
    #: retirement rate.
    relocation_backlog: int = 0


class Compactor(MaintenanceWorker):
    """Budgeted background compaction + static wear leveling over a
    :class:`~repro.core.kvstore.KVStore`.

    Args:
        store: the KV store to maintain; the compactor registers itself
            via ``store.attach_compactor``.
        relocations_per_round: rate limit on relocation-queue entries
            processed per round (the compaction budget).
        swaps_per_round: rate limit on cold→worn wear-leveling
            migrations per round.
        min_wear_gap: minimum difference between the target (free)
            segment's write count and the victim (live) segment's before
            a swap is worth its own write cost.
        dormancy_writes: a live value is *dormant* — eligible for
            parking on worn media — once at least this many user writes
            have happened since it was last written.
        interval_s: sleep between background rounds.
        faults: optional fault injector; when set, the ``wl.swap`` site
            fires before each wear-leveling migration.  Defaults to the
            device's injector.
    """

    def __init__(
        self,
        store,
        *,
        relocations_per_round: int = 4,
        swaps_per_round: int = 1,
        min_wear_gap: int = 4,
        dormancy_writes: int = 64,
        interval_s: float = 0.005,
        faults=None,
    ) -> None:
        if relocations_per_round <= 0:
            raise ValueError("relocations_per_round must be positive")
        if swaps_per_round < 0:
            raise ValueError("swaps_per_round must be >= 0")
        if min_wear_gap < 1:
            raise ValueError("min_wear_gap must be >= 1")
        if dormancy_writes < 1:
            raise ValueError("dormancy_writes must be >= 1")
        super().__init__(interval_s=interval_s, name="compactor")
        self.store = store
        self.engine = store.engine
        self.controller = store.engine.controller
        self.device = self.controller.device
        self.relocations_per_round = relocations_per_round
        self.swaps_per_round = swaps_per_round
        self.min_wear_gap = min_wear_gap
        self.dormancy_writes = dormancy_writes
        self.faults = faults if faults is not None else self.device.faults
        self.stats = CompactorStats()
        store.attach_compactor(self)

    # ------------------------------------------------------------ compaction

    def compact_round(self) -> dict:
        """One budgeted round: drain relocations, then wear-level.

        Returns a summary dict (relocations/swaps performed, backlog).
        """
        moved = self.store.drain_relocations(self.relocations_per_round)
        self.stats.relocations += moved
        swaps = self.wear_level_round()
        health = self.engine.health
        self.stats.relocation_backlog = (
            health.relocations_pending if health is not None else 0
        )
        self.stats.rounds += 1
        return {
            "relocations": moved,
            "wl_swaps": swaps,
            "relocation_backlog": self.stats.relocation_backlog,
        }

    # --------------------------------------------------- static wear leveling

    def wear_level_round(self) -> int:
        """Up to ``swaps_per_round`` cold→worn migrations; returns how
        many were performed."""
        swaps = 0
        for _ in range(self.swaps_per_round):
            pick = self._pick_swap()
            if pick is None:
                break
            key, _src_addr, dst_addr = pick
            if self.faults is not None:
                self.faults.fire("wl.swap")
            if self.store.migrate(key, dst_addr):
                swaps += 1
                self.stats.wl_swaps += 1
            else:
                self.stats.wl_swaps_refused += 1
        return swaps

    def _pick_swap(self) -> tuple[bytes, int, int] | None:
        """Choose (key, victim address, target address) for one swap.

        Victim: the coldest dormant live value on the least-worn segment.
        Target: the most-worn *free* segment that still has spare ECP
        entries — a segment already at correction capacity (e.g. adopted
        reclaimed capacity) would likely retire under the parking write
        itself, spending endurance to destroy the target.  ``None`` when
        no pairing clears the dormancy and ``min_wear_gap`` thresholds —
        wear leveling only spends a write when parking the value
        meaningfully evens out wear.
        """
        wear = self.device.segment_write_count
        seg_size = self.controller.segment_size
        ecc = self.controller.ecc
        free = self.engine.dap.snapshot_addresses()
        if ecc is not None:
            free = [a for a in free if self._survives_parking(a)]
        if not free:
            return None
        # Most-worn surviving free segment (ties toward the lower address
        # for determinism).
        dst_addr = max(free, key=lambda a: (int(wear[a // seg_size]), -a))
        dst_wear = int(wear[dst_addr // seg_size])

        now = self.store.write_seq
        best = None
        best_key = None
        for addr, key in list(self.store._by_addr.items()):
            if key is None:
                continue
            heat = self.store.heat_of(addr)
            if heat is None or now - heat < self.dormancy_writes:
                continue  # recently written: not dormant
            src_wear = int(wear[addr // seg_size])
            if dst_wear - src_wear < self.min_wear_gap:
                continue  # parking it would not even out wear enough
            cand = (src_wear, heat, addr)
            if best is None or cand < best:
                best = cand
                best_key = key
        if best is None:
            return None
        return (best_key, best[2], dst_addr)

    def _survives_parking(self, addr: int) -> bool:
        """Whether the free segment at ``addr`` can plausibly absorb the
        parking write without retiring: every stuck cell it already
        carries must be patchable within its total ECP capacity (in the
        worst case the written value disagrees with each stuck cell), so
        segments at correction capacity — adopted reclaimed capacity in
        particular — are never chosen as parking targets."""
        ecc = self.controller.ecc
        seg_size = self.controller.segment_size
        seg = addr // seg_size
        if ecc.at_capacity(seg):
            return False
        mask = self.device.stuck_mask(seg * seg_size, seg_size)
        stuck = int(np.unpackbits(mask).sum())
        return stuck <= ecc.entries_per_segment

    # ------------------------------------------------------- background loop

    def run_once(self) -> dict:
        """One background round (the :class:`MaintenanceWorker` hook)."""
        return self.compact_round()

    def _note_worker_error(self, exc: BaseException) -> None:
        super()._note_worker_error(exc)
        self.stats.worker_errors += 1

    # ------------------------------------------------------------- telemetry

    def telemetry(self) -> dict:
        """Cumulative compaction counters plus worker state."""
        return {
            "rounds": self.stats.rounds,
            "relocations": self.stats.relocations,
            "wl_swaps": self.stats.wl_swaps,
            "wl_swaps_refused": self.stats.wl_swaps_refused,
            "worker_errors": self.stats.worker_errors,
            "relocation_backlog": self.stats.relocation_backlog,
            "running": self.running,
            "paused": self.paused,
        }
