"""Bit-accurate simulated PCM/Optane device.

The device stores raw content as a NumPy ``uint8`` array and exposes a single
media-level write primitive, :meth:`NVMDevice.program`, which programs an
explicit set of cells (bits).  Write schemes (DCW, FNW, ...) run above the
device, in :mod:`repro.baselines`, and decide *which* cells to pulse; the
device only accounts for the activity:

- ``bits_programmed``: cells that received a SET/RESET pulse (wear + energy);
- ``bits_flipped``: cells whose stored value actually changed;
- ``dirty_lines``: cache lines containing at least one programmed cell (the
  controller skips clean lines, which is where the Figure 1 latency/energy
  gains come from).

Per-segment write counters are always maintained; per-bit programming
counters (needed for the Figure 19 wear CDFs) are optional because they cost
8x the device capacity in counter memory.

With a :class:`WearOutConfig` the device additionally models *endurance
exhaustion*: every cell draws a per-cell endurance budget (lognormal
variation around the configured mean, seeded) and, once its programming
count exceeds that budget, becomes **stuck-at** its current value —
subsequent programming pulses to it silently fail and reads return the
stuck value.  The device then also carries an
:class:`~repro.nvm.ecc.ErrorCorrectingPointers` table and a
:class:`~repro.nvm.health.HealthState` (both persisted by
:meth:`NVMDevice.save`); the controller's verify-after-write path uses them
to detect, correct and eventually retire failing segments.

With a :class:`DriftConfig` the device models the *read-side* failure mode:
resistance drift.  Every cell draws a seeded time-to-drift budget (lognormal,
optionally shortened by that cell's accumulated wear); a logical retention
clock is advanced by :meth:`NVMDevice.advance_time`.  A cell whose last
program is older than its budget *drifts*: reads sense its bit flipped until
some write re-programs it (any program pulse to a drifted cell restores it
and resets its timer — the device force-pulses drifted cells inside every
written range, so refresh cost shows up honestly in wear/energy accounting).
The true stored charge is never lost to drift in this model, only mis-sensed;
``sensed = content XOR drift_mask`` and a scrubber can recover the original
by rewriting ``sensed XOR drift_mask``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.nvm.ecc import ErrorCorrectingPointers
from repro.nvm.energy import EnergyModel
from repro.nvm.health import HealthState
from repro.nvm.latency import LatencyModel
from repro.nvm.stats import DeviceStats
from repro.util.bits import popcount_array, popcount_rows
from repro.util.rng import rng_from_seed

#: Budget assigned to cells exempted from wear-out (``immortal_prefix``).
_IMMORTAL_BUDGET = np.int64(2**62)


@dataclass(frozen=True)
class WearOutConfig:
    """Endurance-exhaustion model parameters.

    Attributes:
        endurance_mean: median per-cell endurance in program cycles (PCM is
            1e8–1e9; tests use tiny values as accelerated aging).
        endurance_sigma: sigma of the lognormal cell-to-cell variation
            (process variation makes some cells die much earlier than the
            mean — the reason verify-after-write is needed at all).
        seed: RNG seed for drawing the per-cell budgets.
        ecp_entries: ECP correction entries per segment; exceeding this is
            segment failure.
        immortal_prefix_segments: leading segments exempt from wear-out
            (the persistent pool's log/catalog region, which real systems
            place on replicated or DRAM-buffered media).
    """

    endurance_mean: float = 1e8
    endurance_sigma: float = 0.15
    seed: int = 0
    ecp_entries: int = 6
    immortal_prefix_segments: int = 0


@dataclass(frozen=True)
class DriftConfig:
    """Resistance-drift (retention) model parameters.

    Attributes:
        retention_mean: median time-to-drift in clock ticks after a cell's
            last program (real PCM retention is hours-to-years; tests use
            tiny values as accelerated retention loss).
        retention_sigma: sigma of the lognormal cell-to-cell retention
            variation — the tail cells that drift far earlier than the
            median are the reason scrubbing must outpace the *minimum*
            budget, not the mean.
        seed: RNG seed for drawing the per-cell budgets.
        wear_scale: wear acceleration factor; a cell's effective budget is
            ``base / (1 + wear_scale * program_cycles)``, so heavily worn
            cells drift faster (matching PCM's degraded retention near
            end-of-life).  ``0`` disables the coupling.
        immortal_prefix_segments: leading segments exempt from drift (the
            persistent pool's log/catalog region, same convention as
            :class:`WearOutConfig`).
    """

    retention_mean: float = 1e6
    retention_sigma: float = 0.3
    seed: int = 0
    wear_scale: float = 0.0
    immortal_prefix_segments: int = 0


@dataclass(frozen=True)
class WriteResult:
    """Outcome of one media write."""

    bits_programmed: int
    bits_flipped: int
    dirty_lines: int
    aux_bits: int
    energy_pj: float
    latency_ns: float


class NVMDevice:
    """A simulated byte-addressable NVM with ``capacity_bytes`` of media,
    organised into fixed-size segments.

    Args:
        capacity_bytes: total media size; must be a positive multiple of
            ``segment_size``.
        segment_size: allocation/placement granularity used by the storage
            layer (the paper's "memory segment").
        energy_model: cost model for energy accounting.
        latency_model: cost model for latency accounting.
        track_bit_wear: maintain a per-bit programming counter (8 counters per
            byte of capacity) for wear CDF analysis.
        initial_fill: ``"zero"`` or ``"random"`` initial media content;
            ``"keep"`` (valid only with ``content_buffer``) adopts the
            buffer's existing bytes untouched — the crash-recovery path of
            a sharded worker re-attaching to its shared-memory media.
        seed: RNG seed for ``initial_fill="random"``.
        content_buffer: optional writable buffer (e.g. a
            ``multiprocessing.shared_memory.SharedMemory`` block) backing
            the media content array in place of a private allocation.  At
            least ``capacity_bytes`` long; the device uses exactly the
            leading ``capacity_bytes``.  Content then outlives this
            process: a sharded store's parent can re-open a shard from the
            buffer after its worker process died mid-write.
        faults: optional :class:`repro.testing.faults.FaultInjector`; when
            set, :meth:`program` fires the write-capable ``"device.program"``
            site before any accounting, so tests can crash a run at any
            media write — including *torn* writes where only a prefix of
            the programmed bytes lands before the (simulated) power loss.
            With a wear-out model, ``"device.stuck_at"`` additionally fires
            after any program call that exhausts new cells.
        wearout: optional :class:`WearOutConfig` enabling the endurance
            exhaustion model (per-cell budgets, stuck-at failure, an ECP
            table on ``self.ecc`` and health state on ``self.health``).
        drift: optional :class:`DriftConfig` enabling the resistance-drift
            retention model (per-cell time-to-drift budgets, a logical
            clock advanced by :meth:`advance_time`, flipped reads of
            drifted cells, and a ``"device.drift_flip"`` fault site).
    """

    def __init__(
        self,
        capacity_bytes: int,
        segment_size: int,
        energy_model: EnergyModel | None = None,
        latency_model: LatencyModel | None = None,
        track_bit_wear: bool = False,
        initial_fill: str = "zero",
        seed: int | np.random.Generator | None = None,
        faults=None,
        wearout: WearOutConfig | None = None,
        drift: DriftConfig | None = None,
        content_buffer=None,
    ) -> None:
        if segment_size <= 0:
            raise ValueError("segment_size must be positive")
        if capacity_bytes <= 0 or capacity_bytes % segment_size:
            raise ValueError(
                "capacity_bytes must be a positive multiple of segment_size"
            )
        self.capacity_bytes = capacity_bytes
        self.segment_size = segment_size
        self.energy_model = energy_model or EnergyModel()
        self.latency_model = latency_model or LatencyModel()
        self.faults = faults
        self.stats = DeviceStats()

        if content_buffer is not None:
            backing = np.frombuffer(content_buffer, dtype=np.uint8)
            if backing.size < capacity_bytes:
                raise ValueError(
                    f"content_buffer of {backing.size} B cannot back "
                    f"{capacity_bytes} B of media"
                )
            self._content = backing[:capacity_bytes]
            if initial_fill == "zero":
                self._content[:] = 0
            elif initial_fill == "random":
                rng = rng_from_seed(seed)
                self._content[:] = rng.integers(
                    0, 256, size=capacity_bytes, dtype=np.uint8
                )
            elif initial_fill != "keep":
                raise ValueError(f"unknown initial_fill {initial_fill!r}")
        elif initial_fill == "zero":
            self._content = np.zeros(capacity_bytes, dtype=np.uint8)
        elif initial_fill == "random":
            rng = rng_from_seed(seed)
            self._content = rng.integers(
                0, 256, size=capacity_bytes, dtype=np.uint8
            )
        elif initial_fill == "keep":
            raise ValueError(
                'initial_fill="keep" needs a content_buffer to keep'
            )
        else:
            raise ValueError(f"unknown initial_fill {initial_fill!r}")

        self.segment_write_count = np.zeros(self.n_segments, dtype=np.int64)
        self._bit_wear: np.ndarray | None = None
        if track_bit_wear:
            self._bit_wear = np.zeros(capacity_bytes * 8, dtype=np.int64)

        self.wearout = wearout
        self._wear_count: np.ndarray | None = None
        self._endurance_budget: np.ndarray | None = None
        self._stuck_packed: np.ndarray | None = None
        self.ecc: ErrorCorrectingPointers | None = None
        self.health: HealthState | None = None
        if wearout is not None:
            self._init_wearout(wearout)

        self.drift = drift
        self._drift_budget: np.ndarray | None = None
        self._last_program_tick: np.ndarray | None = None
        self._drift_packed: np.ndarray | None = None
        self._clock = 0
        if drift is not None:
            self._init_drift(drift)

    def _init_wearout(self, cfg: WearOutConfig) -> None:
        if cfg.endurance_mean < 1:
            raise ValueError("endurance_mean must be at least 1")
        if not 0 <= cfg.immortal_prefix_segments <= self.n_segments:
            raise ValueError("immortal_prefix_segments out of range")
        n_bits = self.capacity_bytes * 8
        rng = rng_from_seed(cfg.seed)
        budgets = rng.lognormal(
            mean=math.log(cfg.endurance_mean),
            sigma=cfg.endurance_sigma,
            size=n_bits,
        )
        self._endurance_budget = np.maximum(budgets, 1.0).astype(np.int64)
        immortal = cfg.immortal_prefix_segments * self.segment_size * 8
        if immortal:
            self._endurance_budget[:immortal] = _IMMORTAL_BUDGET
        self._wear_count = np.zeros(n_bits, dtype=np.int64)
        self._stuck_packed = np.zeros(self.capacity_bytes, dtype=np.uint8)
        self.ecc = ErrorCorrectingPointers(
            self.segment_size, cfg.ecp_entries
        )
        self.health = HealthState()

    def _init_drift(self, cfg: DriftConfig) -> None:
        if cfg.retention_mean < 1:
            raise ValueError("retention_mean must be at least 1")
        if cfg.wear_scale < 0:
            raise ValueError("wear_scale must be non-negative")
        if not 0 <= cfg.immortal_prefix_segments <= self.n_segments:
            raise ValueError("immortal_prefix_segments out of range")
        n_bits = self.capacity_bytes * 8
        rng = rng_from_seed(cfg.seed)
        budgets = rng.lognormal(
            mean=math.log(cfg.retention_mean),
            sigma=cfg.retention_sigma,
            size=n_bits,
        )
        self._drift_budget = np.maximum(budgets, 1.0).astype(np.int64)
        immortal = cfg.immortal_prefix_segments * self.segment_size * 8
        if immortal:
            self._drift_budget[:immortal] = _IMMORTAL_BUDGET
        self._last_program_tick = np.zeros(n_bits, dtype=np.int64)
        self._drift_packed = np.zeros(self.capacity_bytes, dtype=np.uint8)

    @property
    def n_segments(self) -> int:
        """Number of fixed-size segments on the device."""
        return self.capacity_bytes // self.segment_size

    def segment_address(self, index: int) -> int:
        """Byte address of segment ``index``."""
        if not 0 <= index < self.n_segments:
            raise IndexError(f"segment {index} out of range")
        return index * self.segment_size

    def segment_of(self, addr: int) -> int:
        """Segment index containing byte address ``addr``."""
        self._check_range(addr, 1)
        return addr // self.segment_size

    # ------------------------------------------------------------------ reads

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``addr`` (accounted)."""
        arr = self.read_array(addr, length)
        return arr.tobytes()

    def read_array(self, addr: int, length: int) -> np.ndarray:
        """Read ``length`` bytes as a fresh ``uint8`` array (accounted).

        With a drift model the returned bytes are the *sensed* content:
        drifted cells read back flipped until some write re-programs them.
        """
        self._check_range(addr, length)
        self.stats.reads += 1
        self.stats.bytes_read += length
        self.stats.read_energy_pj += self.energy_model.read_energy(length)
        self.stats.read_latency_ns += self.latency_model.read_latency(length)
        out = self._content[addr : addr + length].copy()
        if self._drift_packed is not None:
            np.bitwise_xor(
                out, self._drift_packed[addr : addr + length], out=out
            )
        return out

    def read_arrays(self, addrs, length: int) -> np.ndarray:
        """Read ``length`` bytes at each address as a ``(B, length)`` array.

        Accounting is identical to ``B`` individual :meth:`read_array`
        calls; the gather itself is one fancy-indexed copy.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        for addr in addrs:
            self._check_range(int(addr), length)
        n = addrs.size
        self.stats.reads += n
        self.stats.bytes_read += n * length
        self.stats.read_energy_pj += n * self.energy_model.read_energy(length)
        self.stats.read_latency_ns += n * self.latency_model.read_latency(
            length
        )
        idx = addrs[:, None] + np.arange(length)
        out = self._content[idx]
        if self._drift_packed is not None:
            np.bitwise_xor(out, self._drift_packed[idx], out=out)
        return out

    def peek(self, addr: int, length: int) -> np.ndarray:
        """Inspect media content without accounting (for tooling/tests).

        Like all reads this senses drifted cells flipped — a peek models a
        margin-less array read, not access to the true stored charge.
        """
        self._check_range(addr, length)
        out = self._content[addr : addr + length].copy()
        if self._drift_packed is not None:
            np.bitwise_xor(
                out, self._drift_packed[addr : addr + length], out=out
            )
        return out

    def peek_segment(self, index: int) -> np.ndarray:
        """Inspect one segment's content without accounting."""
        addr = self.segment_address(index)
        return self.peek(addr, self.segment_size)

    # ----------------------------------------------------------------- writes

    def program(
        self,
        addr: int,
        new: np.ndarray | bytes,
        program_mask: np.ndarray | None = None,
        aux_bits: int = 0,
    ) -> WriteResult:
        """Program cells at ``addr``.

        Args:
            new: bytes to store (only bits selected by ``program_mask`` take
                effect).
            program_mask: ``uint8`` array, same length as ``new``; set bits
                mark cells that receive a programming pulse.  ``None`` pulses
                every cell (a naive write-all scheme).
            aux_bits: scheme metadata cells programmed alongside the data
                (e.g. FNW flip flags); they add wear/energy but no content.

        Returns:
            A :class:`WriteResult` with the activity and cost of this write.
        """
        new = self._as_u8(new)
        length = new.size
        self._check_range(addr, length)
        if program_mask is None:
            mask = np.full(length, 0xFF, dtype=np.uint8)
        else:
            mask = self._as_u8(program_mask)
            if mask.size != length:
                raise ValueError("program_mask length must match data length")
        if self._drift_packed is not None:
            # Any write refreshes drifted cells in its range: schemes plan
            # masks against *sensed* old content, so a drifted cell whose
            # sensed value happens to match the target would otherwise be
            # skipped and keep its stale true charge.  The extra pulses are
            # charged to wear/energy — refresh is not free.
            mask = np.bitwise_or(
                mask, self._drift_packed[addr : addr + length]
            )

        if self.faults is not None:
            # A torn write persists only the first n programmed bytes; no
            # accounting happens (the stats are DRAM and die with the
            # process the injector is about to kill).
            self.faults.fire(
                "device.program",
                payload_len=length,
                payload_writer=lambda n: self._apply_masked(
                    addr, new[:n], mask[:n]
                ),
            )

        old = self._content[addr : addr + length]
        # Pulses aimed at stuck cells silently fail: they cost energy and
        # wear (counted from the full mask) but can no longer flip anything.
        if self._stuck_packed is not None:
            eff_mask = np.bitwise_and(
                mask,
                np.bitwise_not(self._stuck_packed[addr : addr + length]),
            )
        else:
            eff_mask = mask
        flips_mask = np.bitwise_and(eff_mask, np.bitwise_xor(old, new))
        bits_programmed = popcount_array(mask)
        bits_flipped = popcount_array(flips_mask)
        dirty_lines = self._dirty_lines(addr, mask)

        self._apply_masked(addr, new, mask)

        energy = self.energy_model.write_energy(
            length, bits_programmed, dirty_lines, aux_bits
        )
        latency = self.latency_model.write_latency(
            length, bits_programmed + aux_bits, dirty_lines
        )

        self.stats.writes += 1
        self.stats.bytes_written += length
        self.stats.bits_programmed += bits_programmed
        self.stats.bits_flipped += bits_flipped
        self.stats.aux_bits_programmed += aux_bits
        self.stats.dirty_lines_written += dirty_lines
        self.stats.write_energy_pj += energy
        self.stats.write_latency_ns += latency

        first_seg = addr // self.segment_size
        last_seg = (addr + length - 1) // self.segment_size
        self.segment_write_count[first_seg : last_seg + 1] += 1

        if self._bit_wear is not None and bits_programmed:
            bit_positions = np.flatnonzero(np.unpackbits(mask))
            self._bit_wear[addr * 8 + bit_positions] += 1

        if self._wear_count is not None:
            self._note_wear(addr, mask)

        return WriteResult(
            bits_programmed=bits_programmed,
            bits_flipped=bits_flipped,
            dirty_lines=dirty_lines,
            aux_bits=aux_bits,
            energy_pj=energy,
            latency_ns=latency,
        )

    def program_many(
        self,
        addrs,
        new: np.ndarray,
        program_masks: np.ndarray | None = None,
        aux_bits=0,
    ) -> list[WriteResult]:
        """Program a batch of equal-length, non-overlapping writes.

        Semantically identical to calling :meth:`program` once per row (in
        row order) — including the per-row ``"device.program"`` fault site,
        so a mid-batch crash or torn write persists exactly the rows (and
        row prefix) that a sequential loop would have — but the accounting
        is one vectorised pass instead of ``B`` scalar ones.

        Args:
            addrs: one media address per row.
            new: ``(B, L)`` bytes to store.
            program_masks: ``(B, L)`` per-row masks; ``None`` pulses all.
            aux_bits: scalar or length-``B`` per-row metadata cell counts.

        Raises:
            ValueError: when rows overlap (sequential writes to overlapping
                ranges are order-dependent; callers must serialise those).
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        new = np.atleast_2d(np.asarray(new, dtype=np.uint8))
        n_rows, length = new.shape
        if addrs.size != n_rows:
            raise ValueError("addrs length must match data row count")
        if n_rows == 0:
            return []
        for addr in addrs:
            self._check_range(int(addr), length)
        if n_rows > 1:
            ordered = np.sort(addrs)
            if int(np.min(ordered[1:] - ordered[:-1])) < length:
                raise ValueError("program_many rows must not overlap")
        if program_masks is None:
            masks = np.full((n_rows, length), 0xFF, dtype=np.uint8)
        else:
            masks = np.atleast_2d(np.asarray(program_masks, dtype=np.uint8))
            if masks.shape != new.shape:
                raise ValueError("program_mask shape must match data shape")
        aux = np.broadcast_to(
            np.asarray(aux_bits, dtype=np.int64), (n_rows,)
        )

        idx = addrs[:, None] + np.arange(length)
        if self._drift_packed is not None:
            # Force-pulse drifted cells in every written row (see program()).
            masks = np.bitwise_or(masks, self._drift_packed[idx])
        old = self._content[idx].copy()
        # Capture the pre-call stuck state: rows never overlap, so per-row
        # flip accounting matches a sequential loop exactly.
        if self._stuck_packed is not None:
            eff_masks = np.bitwise_and(
                masks, np.bitwise_not(self._stuck_packed[idx])
            )
        else:
            eff_masks = masks

        if self.faults is not None:
            # Fire the fault site and persist row by row, in row order, so
            # crash points land between rows exactly as in a scalar loop
            # (including ``device.stuck_at`` firings between rows).
            for i in range(n_rows):
                self.faults.fire(
                    "device.program",
                    payload_len=length,
                    payload_writer=lambda n, i=i: self._apply_masked(
                        int(addrs[i]), new[i, :n], masks[i, :n]
                    ),
                )
                self._apply_masked(int(addrs[i]), new[i], masks[i])
                if self._wear_count is not None:
                    self._note_wear(int(addrs[i]), masks[i])
        else:
            self._content[idx] = np.bitwise_or(
                np.bitwise_and(old, np.bitwise_not(eff_masks)),
                np.bitwise_and(new, eff_masks),
            )
            if self._drift_packed is not None:
                self._drift_packed[idx] = np.bitwise_and(
                    self._drift_packed[idx], np.bitwise_not(eff_masks)
                )
                rows, cols = np.nonzero(np.unpackbits(eff_masks, axis=1))
                if rows.size:
                    self._last_program_tick[addrs[rows] * 8 + cols] = (
                        self._clock
                    )
            if self._wear_count is not None:
                for i in range(n_rows):
                    self._note_wear(int(addrs[i]), masks[i])

        flips_masks = np.bitwise_and(eff_masks, np.bitwise_xor(old, new))
        bits_programmed = popcount_rows(masks)
        bits_flipped = popcount_rows(flips_masks)

        line = self.energy_model.cache_line_bytes
        if length % line == 0 and not np.any(addrs % line):
            per_line = masks.reshape(n_rows, length // line, line)
            dirty_lines = np.count_nonzero(
                per_line.any(axis=2), axis=1
            ).astype(np.int64)
        else:
            dirty_lines = np.array(
                [
                    self._dirty_lines(int(addrs[i]), masks[i])
                    for i in range(n_rows)
                ],
                dtype=np.int64,
            )

        energy = self.energy_model.write_energy_many(
            length, bits_programmed, dirty_lines, aux
        )
        latency = self.latency_model.write_latency_many(
            length, bits_programmed + aux, dirty_lines
        )

        self.stats.writes += n_rows
        self.stats.bytes_written += n_rows * length
        self.stats.bits_programmed += int(bits_programmed.sum())
        self.stats.bits_flipped += int(bits_flipped.sum())
        self.stats.aux_bits_programmed += int(aux.sum())
        self.stats.dirty_lines_written += int(dirty_lines.sum())
        self.stats.write_energy_pj += float(energy.sum())
        self.stats.write_latency_ns += float(latency.sum())

        first_seg = addrs // self.segment_size
        last_seg = (addrs + length - 1) // self.segment_size
        if np.array_equal(first_seg, last_seg):
            np.add.at(self.segment_write_count, first_seg, 1)
        else:
            for lo, hi in zip(first_seg, last_seg):
                self.segment_write_count[lo : hi + 1] += 1

        if self._bit_wear is not None:
            rows, cols = np.nonzero(np.unpackbits(masks, axis=1))
            np.add.at(self._bit_wear, addrs[rows] * 8 + cols, 1)

        return [
            WriteResult(
                bits_programmed=int(bits_programmed[i]),
                bits_flipped=int(bits_flipped[i]),
                dirty_lines=int(dirty_lines[i]),
                aux_bits=int(aux[i]),
                energy_pj=float(energy[i]),
                latency_ns=float(latency[i]),
            )
            for i in range(n_rows)
        ]

    # ------------------------------------------------------------------ wear

    def _note_wear(self, addr: int, mask: np.ndarray) -> None:
        """Charge one program cycle to every masked cell and mark cells
        whose budget is now exhausted as stuck (at their current value).

        The exhausting pulse itself still landed — a cell fails *after*
        reaching its budget, so subsequent programs are the ones that
        silently fail.  Fires ``"device.stuck_at"`` once per program call
        that kills at least one new cell.
        """
        positions = addr * 8 + np.flatnonzero(np.unpackbits(mask))
        if positions.size == 0:
            return
        self._wear_count[positions] += 1
        dead = positions[
            self._wear_count[positions] >= self._endurance_budget[positions]
        ]
        if dead.size == 0:
            return
        already = (self._stuck_packed[dead // 8] >> (7 - dead % 8)) & 1
        fresh = dead[already == 0]
        if fresh.size == 0:
            return
        np.bitwise_or.at(
            self._stuck_packed,
            fresh // 8,
            (0x80 >> (fresh % 8)).astype(np.uint8),
        )
        if self.faults is not None:
            self.faults.fire("device.stuck_at")

    def age(self, cycles: int) -> int:
        """Accelerated aging: charge ``cycles`` extra program cycles to
        every cell at once (no content change, no stats).

        Cells whose budget is exhausted become stuck at their *current*
        value, exactly as organic wear-out would leave them.  Returns the
        number of cells that died.  Requires a wear-out model.
        """
        if self._wear_count is None:
            raise RuntimeError("device was created without a wearout model")
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self._wear_count += cycles
        dead = np.flatnonzero(self._wear_count >= self._endurance_budget)
        already = (self._stuck_packed[dead // 8] >> (7 - dead % 8)) & 1
        fresh = dead[already == 0]
        if fresh.size:
            np.bitwise_or.at(
                self._stuck_packed,
                fresh // 8,
                (0x80 >> (fresh % 8)).astype(np.uint8),
            )
        return int(fresh.size)

    # ------------------------------------------------------------------ drift

    @property
    def clock(self) -> int:
        """Logical retention clock (ticks since device creation)."""
        return self._clock

    def advance_time(self, ticks: int) -> int:
        """Advance the retention clock and drift every cell whose last
        program is now older than its (wear-scaled) retention budget.

        Drifted cells sense flipped on every read until a write pulses
        them; the true stored charge is untouched.  Fires
        ``"device.drift_flip"`` once per call that drifts at least one new
        cell.  Returns the number of newly drifted cells.  Requires a
        drift model.
        """
        if self.drift is None:
            raise RuntimeError("device was created without a drift model")
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        self._clock += ticks
        age = self._clock - self._last_program_tick
        due = np.flatnonzero(age >= self._effective_drift_budget())
        if self._stuck_packed is not None and due.size:
            # Stuck cells are frozen charge — they neither drift nor heal.
            stuck = (self._stuck_packed[due // 8] >> (7 - due % 8)) & 1
            due = due[stuck == 0]
        already = (self._drift_packed[due // 8] >> (7 - due % 8)) & 1
        fresh = due[already == 0]
        if fresh.size:
            np.bitwise_or.at(
                self._drift_packed,
                fresh // 8,
                (0x80 >> (fresh % 8)).astype(np.uint8),
            )
            if self.faults is not None:
                self.faults.fire("device.drift_flip")
        return int(fresh.size)

    def _effective_drift_budget(self) -> np.ndarray:
        """Per-cell retention budget after wear acceleration."""
        base = self._drift_budget
        scale = self.drift.wear_scale
        if scale <= 0:
            return base
        wear = self._wear_count if self._wear_count is not None \
            else self._bit_wear
        if wear is None:
            return base
        return np.maximum(base / (1.0 + scale * wear), 1.0)

    def drift_mask(self, addr: int, length: int) -> np.ndarray:
        """Packed per-bit drifted flags for ``[addr, addr + length)``.

        This is the device's *margin read*: a slow sensing mode real PCM
        controllers use during scrubbing to tell drifted cells apart from
        healthy ones.  All-zero without a drift model.
        """
        if self._drift_packed is None:
            return np.zeros(length, dtype=np.uint8)
        self._check_range(addr, length)
        return self._drift_packed[addr : addr + length].copy()

    def drifted_cell_count(self) -> int:
        """Cells currently sensing flipped (0 without a drift model)."""
        if self._drift_packed is None:
            return 0
        return popcount_array(self._drift_packed)

    def stuck_cell_count(self) -> int:
        """Cells permanently stuck at their current value (0 without a
        wear-out model)."""
        if self._stuck_packed is None:
            return 0
        return popcount_array(self._stuck_packed)

    def stuck_mask(self, addr: int, length: int) -> np.ndarray:
        """Packed per-bit stuck flags for ``[addr, addr + length)``."""
        if self._stuck_packed is None:
            return np.zeros(length, dtype=np.uint8)
        self._check_range(addr, length)
        return self._stuck_packed[addr : addr + length].copy()

    @property
    def bit_wear(self) -> np.ndarray:
        """Per-bit programming counters (requires ``track_bit_wear=True``)."""
        if self._bit_wear is None:
            raise RuntimeError("device was created with track_bit_wear=False")
        return self._bit_wear

    def wear_summary(self, endurance: float = 1e8) -> dict:
        """Endurance snapshot: write/wear spread and remaining lifetime.

        Args:
            endurance: per-cell write endurance; PCM is 1e8–1e9 (§1).

        Returns a dict with per-segment write statistics, per-bit wear
        statistics when tracked, and the fraction of the worst cell's
        endurance consumed.  Without per-bit tracking the
        ``lifetime_consumed`` estimate falls back to the per-segment write
        counters: one segment write pulses each of its cells at most once,
        so the hottest segment's write count upper-bounds its worst cell's
        wear (``lifetime_estimate_basis`` records which source was used).
        """
        summary = {
            "segment_writes_max": int(self.segment_write_count.max()),
            "segment_writes_mean": float(self.segment_write_count.mean()),
            "segment_writes_std": float(self.segment_write_count.std()),
            "lifetime_consumed": int(self.segment_write_count.max())
            / endurance,
            "lifetime_estimate_basis": "segment_writes",
        }
        if self._bit_wear is not None:
            worst = int(self._bit_wear.max())
            summary.update(
                {
                    "bit_wear_max": worst,
                    "bit_wear_mean": float(self._bit_wear.mean()),
                    "lifetime_consumed": worst / endurance,
                    "lifetime_estimate_basis": "bit_wear",
                }
            )
        if self._wear_count is not None:
            summary["stuck_cells"] = self.stuck_cell_count()
        return summary

    def reset_stats(self) -> None:
        """Zero all aggregate counters (content and wear are kept)."""
        self.stats = DeviceStats()

    # ------------------------------------------------------------ snapshots

    def save(self, path) -> None:
        """Persist media content and wear state to an ``.npz`` snapshot.

        This models the *non-volatility* of the device: a later
        :meth:`load` resumes with identical content and wear counters.
        Aggregate stats are transient (they model the measurement session)
        and are not saved.
        """
        arrays = {
            "content": self._content,
            "segment_write_count": self.segment_write_count,
            "geometry": np.array([self.capacity_bytes, self.segment_size]),
        }
        if self._bit_wear is not None:
            arrays["bit_wear"] = self._bit_wear
        if self.wearout is not None:
            cfg = self.wearout
            arrays["wearout_params"] = np.array(
                [
                    cfg.endurance_mean,
                    cfg.endurance_sigma,
                    float(cfg.seed),
                    float(cfg.ecp_entries),
                    float(cfg.immortal_prefix_segments),
                ]
            )
            arrays["endurance_budget"] = self._endurance_budget
            arrays["wear_count"] = self._wear_count
            arrays["stuck_packed"] = self._stuck_packed
            segs, offs, vals = self.ecc.state_arrays()
            arrays["ecp_segments"] = segs
            arrays["ecp_offsets"] = offs
            arrays["ecp_values"] = vals
            retired, retiring, spares, reclaimed = (
                self.health.snapshot_arrays()
            )
            arrays["health_retired"] = np.asarray(retired, dtype=np.int64)
            arrays["health_retiring"] = np.asarray(retiring, dtype=np.int64)
            arrays["health_spares"] = np.asarray(spares, dtype=np.int64)
            arrays["health_reclaimed"] = np.asarray(
                reclaimed, dtype=np.int64
            )
        if self.drift is not None:
            cfg = self.drift
            arrays["drift_params"] = np.array(
                [
                    cfg.retention_mean,
                    cfg.retention_sigma,
                    float(cfg.seed),
                    cfg.wear_scale,
                    float(cfg.immortal_prefix_segments),
                ]
            )
            arrays["drift_budget"] = self._drift_budget
            arrays["drift_last_program"] = self._last_program_tick
            arrays["drift_packed"] = self._drift_packed
            arrays["drift_clock"] = np.array([self._clock], dtype=np.int64)
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(
        cls,
        path,
        energy_model: EnergyModel | None = None,
        latency_model: LatencyModel | None = None,
        content_buffer=None,
    ) -> "NVMDevice":
        """Restore a device from a :meth:`save` snapshot.

        ``content_buffer`` backs the restored content array with an
        external buffer (see :class:`NVMDevice`); the snapshot's bytes are
        copied into it.
        """
        with np.load(path) as archive:
            capacity, segment_size = (int(x) for x in archive["geometry"])
            wearout = None
            if "wearout_params" in archive:
                mean, sigma, seed, entries, immortal = archive[
                    "wearout_params"
                ]
                wearout = WearOutConfig(
                    endurance_mean=float(mean),
                    endurance_sigma=float(sigma),
                    seed=int(seed),
                    ecp_entries=int(entries),
                    immortal_prefix_segments=int(immortal),
                )
            drift = None
            if "drift_params" in archive:
                mean, sigma, seed, wear_scale, immortal = archive[
                    "drift_params"
                ]
                drift = DriftConfig(
                    retention_mean=float(mean),
                    retention_sigma=float(sigma),
                    seed=int(seed),
                    wear_scale=float(wear_scale),
                    immortal_prefix_segments=int(immortal),
                )
            device = cls(
                capacity_bytes=capacity,
                segment_size=segment_size,
                energy_model=energy_model,
                latency_model=latency_model,
                track_bit_wear="bit_wear" in archive,
                wearout=wearout,
                drift=drift,
                content_buffer=content_buffer,
            )
            device._content[:] = archive["content"]
            device.segment_write_count[:] = archive["segment_write_count"]
            if "bit_wear" in archive:
                assert device._bit_wear is not None
                device._bit_wear[:] = archive["bit_wear"]
            if wearout is not None:
                # The saved arrays override the freshly drawn budgets —
                # dead cells must never resurrect on a reopened store.
                device._endurance_budget[:] = archive["endurance_budget"]
                device._wear_count[:] = archive["wear_count"]
                device._stuck_packed[:] = archive["stuck_packed"]
                device.ecc.restore_state(
                    archive["ecp_segments"],
                    archive["ecp_offsets"],
                    archive["ecp_values"],
                )
                device.health.restore_arrays(
                    archive["health_retired"],
                    archive["health_retiring"],
                    archive["health_spares"],
                    # Snapshots from before capacity reclamation carry no
                    # reclaimed set; treat them as having none.
                    archive["health_reclaimed"]
                    if "health_reclaimed" in archive
                    else (),
                )
            if drift is not None:
                # Restore the exact budgets, timers, clock and drifted set
                # — a reopened device must keep sensing the same flips.
                device._drift_budget[:] = archive["drift_budget"]
                device._last_program_tick[:] = archive["drift_last_program"]
                device._drift_packed[:] = archive["drift_packed"]
                device._clock = int(archive["drift_clock"][0])
        return device

    # -------------------------------------------------------------- internals

    def _apply_masked(
        self, addr: int, new: np.ndarray, mask: np.ndarray
    ) -> None:
        """Masked bits take the new value, unmasked bits keep the old.

        The single choke point through which all media mutation flows
        (scalar, batched and torn-write paths alike): stuck cells are
        stripped from the mask here, so no path can ever change one.
        """
        if new.size == 0:
            return
        if self._stuck_packed is not None:
            mask = np.bitwise_and(
                mask,
                np.bitwise_not(self._stuck_packed[addr : addr + new.size]),
            )
        old = self._content[addr : addr + new.size]
        self._content[addr : addr + new.size] = np.bitwise_or(
            np.bitwise_and(old, np.bitwise_not(mask)),
            np.bitwise_and(new, mask),
        )
        if self._drift_packed is not None:
            # An effective pulse restores a drifted cell and restarts its
            # retention timer (stuck cells were stripped above and never
            # drift in the first place).
            region = self._drift_packed[addr : addr + new.size]
            np.bitwise_and(region, np.bitwise_not(mask), out=region)
            positions = addr * 8 + np.flatnonzero(np.unpackbits(mask))
            if positions.size:
                self._last_program_tick[positions] = self._clock

    def _dirty_lines(self, addr: int, mask: np.ndarray) -> int:
        line = self.energy_model.cache_line_bytes
        first_line = addr // line
        last_line = (addr + mask.size - 1) // line
        n_lines = last_line - first_line + 1
        if n_lines == 1:
            return int(mask.any())
        # Pad the mask out to whole lines, then check each line for activity.
        padded = np.zeros(n_lines * line, dtype=np.uint8)
        offset = addr - first_line * line
        padded[offset : offset + mask.size] = mask
        per_line = padded.reshape(n_lines, line)
        return int(np.count_nonzero(per_line.any(axis=1)))

    def _check_range(self, addr: int, length: int) -> None:
        if length <= 0:
            raise ValueError("length must be positive")
        if addr < 0 or addr + length > self.capacity_bytes:
            raise IndexError(
                f"access [{addr}, {addr + length}) outside device of "
                f"{self.capacity_bytes} bytes"
            )

    @staticmethod
    def _as_u8(data: np.ndarray | bytes) -> np.ndarray:
        if isinstance(data, (bytes, bytearray, memoryview)):
            return np.frombuffer(bytes(data), dtype=np.uint8)
        arr = np.asarray(data)
        if arr.dtype != np.uint8:
            raise TypeError("device data must be uint8 or bytes")
        return arr
