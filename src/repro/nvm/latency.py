"""Analytic latency model for the simulated NVM device.

Figure 1 of the paper shows that write latency, like energy, improves when the
overwritten content is similar: the controller can skip flushing cache lines
that are identical to the media content [26].  We model::

    T(write) = T_static + n_dirty_lines * T_line + n_programmed_bits * T_bit

Defaults approximate Optane DC PMem: ~300 ns base write overhead and ~100 ns
per written 64 B line; the per-bit term is small and models iterative
program-and-verify in PCM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencyModel:
    """Per-operation latency constants, in nanoseconds."""

    static_write_ns: float = 300.0
    line_write_ns: float = 100.0
    bit_program_ns: float = 0.05
    static_read_ns: float = 170.0
    byte_read_ns: float = 0.35

    def write_latency(
        self, n_bytes: int, n_programmed_bits: int, n_dirty_lines: int
    ) -> float:
        """Latency (ns) for one write with the given activity."""
        if n_bytes <= 0:
            raise ValueError("write size must be positive")
        return (
            self.static_write_ns
            + n_dirty_lines * self.line_write_ns
            + n_programmed_bits * self.bit_program_ns
        )

    def write_latency_many(
        self, n_bytes: int, n_programmed_bits, n_dirty_lines
    ):
        """Vectorised :meth:`write_latency`: per-write activity arrays in,
        per-write latency array out (same-size writes only)."""
        if n_bytes <= 0:
            raise ValueError("write size must be positive")
        return (
            self.static_write_ns
            + np.asarray(n_dirty_lines) * self.line_write_ns
            + np.asarray(n_programmed_bits) * self.bit_program_ns
        )

    def read_latency(self, n_bytes: int) -> float:
        """Latency (ns) for one read of ``n_bytes``."""
        if n_bytes <= 0:
            raise ValueError("read size must be positive")
        return self.static_read_ns + n_bytes * self.byte_read_ns
