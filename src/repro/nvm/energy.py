"""Analytic energy model for the simulated NVM device.

The paper measures energy with Intel RAPL (`perf`) on a real Optane module;
we replace the hardware counters with an explicit cost model whose shape is
calibrated to the paper's published observations:

- flipping one PCM bit costs ~50 pJ versus ~1 pJ/b for DRAM (§1);
- overwriting a 256 B block with identical content instead of fully-random
  content saves up to ~56% of write energy (Figure 1), because the memory
  controller skips cache lines that are unchanged and programs only the
  differing cells within dirty lines.

A write therefore decomposes into::

    E(write) = E_static                     # command overhead
             + n_dirty_lines * E_line       # per-cache-line write-path cost
             + n_programmed_bits * E_flip   # per-cell SET/RESET pulses
             + n_aux_bits * E_flip          # scheme metadata (flags/tags)

The defaults are calibrated against the paper's Figure 1 protocol — PMDK
transactions (read old + undo-log write + data write) overwriting 256 B
blocks — so that an identical-content overwrite saves ≈56% of the round's
memory energy versus a 100%-different overwrite.  See
``benchmarks/bench_fig01_hamming_energy.py`` for the end-to-end sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants, in picojoules.

    Attributes:
        flip_energy_pj: energy to program (SET or RESET) one PCM cell.
        line_energy_pj: write-path overhead per dirty cache line.
        static_write_energy_pj: fixed per-write-command overhead (controller,
            ADR flush, transaction bookkeeping).
        read_energy_per_byte_pj: media read cost per byte.
        static_read_energy_pj: fixed per-read-command overhead.
        dram_bit_energy_pj: DRAM cost per bit, used for DRAM-resident
            structures (the DAP, the data index).
        cache_line_bytes: CPU cache-line / flush granularity.
    """

    flip_energy_pj: float = 50.0
    line_energy_pj: float = 2_000.0
    static_write_energy_pj: float = 2_200.0
    read_energy_per_byte_pj: float = 15.0
    static_read_energy_pj: float = 2_500.0
    dram_bit_energy_pj: float = 1.0
    cache_line_bytes: int = 64

    def write_energy(
        self,
        n_bytes: int,
        n_programmed_bits: int,
        n_dirty_lines: int,
        n_aux_bits: int = 0,
    ) -> float:
        """Energy (pJ) for one write of ``n_bytes`` with the given activity."""
        if n_bytes <= 0:
            raise ValueError("write size must be positive")
        return (
            self.static_write_energy_pj
            + n_dirty_lines * self.line_energy_pj
            + (n_programmed_bits + n_aux_bits) * self.flip_energy_pj
        )

    def write_energy_many(
        self,
        n_bytes: int,
        n_programmed_bits,
        n_dirty_lines,
        n_aux_bits=0,
    ):
        """Vectorised :meth:`write_energy`: per-write activity arrays in,
        per-write energy array out (same-size writes only)."""
        if n_bytes <= 0:
            raise ValueError("write size must be positive")
        return (
            self.static_write_energy_pj
            + np.asarray(n_dirty_lines) * self.line_energy_pj
            + (np.asarray(n_programmed_bits) + np.asarray(n_aux_bits))
            * self.flip_energy_pj
        )

    def read_energy(self, n_bytes: int) -> float:
        """Energy (pJ) for one read of ``n_bytes``."""
        if n_bytes <= 0:
            raise ValueError("read size must be positive")
        return self.static_read_energy_pj + n_bytes * self.read_energy_per_byte_pj

    def dram_energy(self, n_bits: int) -> float:
        """Energy (pJ) for touching ``n_bits`` of DRAM."""
        return n_bits * self.dram_bit_energy_pj

    def lines_spanned(self, n_bytes: int) -> int:
        """Number of cache lines covered by an aligned access of ``n_bytes``."""
        return -(-n_bytes // self.cache_line_bytes)
