"""Wear-leveling policies for the simulated memory controller.

The paper (§2.1) models the proprietary controller-level wear leveling as a
*segment swap every ψ writes*, with ψ typically in the tens of writes [22].
Figure 2 sweeps ψ to show that E2-NVM's placement survives the swapping for
realistic ψ.

All policies maintain a logical→physical segment mapping.  Swap traffic goes
through the device with a DCW (differing-bits-only) mask, so the extra flips
that swapping causes are accounted — the paper notes wear leveling "may
introduce more bit flips ... due to the swap operation" (§2.3).
"""

from __future__ import annotations

import numpy as np

from repro.nvm.device import NVMDevice
from repro.util.rng import rng_from_seed


class NoWearLeveling:
    """Identity mapping: the controller never moves segments."""

    def attach(self, device: NVMDevice) -> None:
        """Bind to a device (no state needed)."""
        self._n_segments = device.n_segments

    def to_physical(self, logical_segment: int) -> int:
        """Physical segment currently backing ``logical_segment``."""
        return logical_segment

    def after_write(self, device: NVMDevice, logical_segment: int) -> None:
        """Hook invoked by the controller after every segment write."""


class SegmentSwapWearLeveling:
    """Swap the just-written segment with a random peer every ψ writes.

    Args:
        period: ψ, the number of writes between swaps; ``period=1`` swaps on
            every write (the adversarial case of Figure 2).
        seed: RNG seed for peer selection.
    """

    def __init__(self, period: int, seed: int | np.random.Generator | None = 0):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._rng = rng_from_seed(seed)
        self._writes_since_swap = 0
        self.swaps_performed = 0
        self._logical_to_physical: np.ndarray | None = None
        self._physical_to_logical: np.ndarray | None = None

    def attach(self, device: NVMDevice) -> None:
        n = device.n_segments
        self._logical_to_physical = np.arange(n, dtype=np.int64)
        self._physical_to_logical = np.arange(n, dtype=np.int64)

    def to_physical(self, logical_segment: int) -> int:
        if self._logical_to_physical is None:
            raise RuntimeError("wear leveler not attached to a device")
        return int(self._logical_to_physical[logical_segment])

    def after_write(self, device: NVMDevice, logical_segment: int) -> None:
        self._writes_since_swap += 1
        if self._writes_since_swap < self.period:
            return
        self._writes_since_swap = 0
        self._swap(device, logical_segment)

    def _swap(self, device: NVMDevice, logical_segment: int) -> None:
        assert self._logical_to_physical is not None
        assert self._physical_to_logical is not None
        n = device.n_segments
        if n < 2:
            return
        phys_a = int(self._logical_to_physical[logical_segment])
        phys_b = int(self._rng.integers(0, n))
        if phys_b == phys_a:
            phys_b = (phys_b + 1) % n

        size = device.segment_size
        addr_a = phys_a * size
        addr_b = phys_b * size
        content_a = device.read_array(addr_a, size)
        content_b = device.read_array(addr_b, size)
        # Physically exchange the contents, programming only differing bits.
        diff = np.bitwise_xor(content_a, content_b)
        if diff.any():
            device.program(addr_a, content_b, program_mask=diff)
            device.program(addr_b, content_a, program_mask=diff)

        logical_b = int(self._physical_to_logical[phys_b])
        self._logical_to_physical[logical_segment] = phys_b
        self._logical_to_physical[logical_b] = phys_a
        self._physical_to_logical[phys_a] = logical_b
        self._physical_to_logical[phys_b] = logical_segment
        self.swaps_performed += 1


class StartGapWearLeveling:
    """Start-Gap wear leveling (Qureshi et al., MICRO'09).

    One spare "gap" segment rotates through the device: every ψ writes the
    segment adjacent to the gap is copied into it and the gap advances, so
    hot logical segments slowly migrate over the whole media.
    """

    def __init__(self, period: int):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._writes_since_move = 0
        self.moves_performed = 0
        self._start = 0
        self._gap: int | None = None
        self._n: int | None = None

    def attach(self, device: NVMDevice) -> None:
        # The last physical segment starts as the gap; logical space is one
        # segment smaller than physical space.
        self._n = device.n_segments
        self._gap = self._n - 1
        self._start = 0
        if self._n < 2:
            raise ValueError("start-gap needs at least 2 segments")

    @property
    def logical_segments(self) -> int:
        """Number of logical segments exposed (physical minus the gap)."""
        if self._n is None:
            raise RuntimeError("wear leveler not attached to a device")
        return self._n - 1

    def to_physical(self, logical_segment: int) -> int:
        if self._n is None or self._gap is None:
            raise RuntimeError("wear leveler not attached to a device")
        if not 0 <= logical_segment < self._n - 1:
            raise IndexError(f"logical segment {logical_segment} out of range")
        raw = (logical_segment + self._start) % (self._n - 1)
        # Skip over the gap: raw positions at or above the gap shift up by 1.
        return raw + 1 if raw >= self._gap else raw

    def after_write(self, device: NVMDevice, logical_segment: int) -> None:
        self._writes_since_move += 1
        if self._writes_since_move < self.period:
            return
        self._writes_since_move = 0
        self._move_gap(device)

    def _move_gap(self, device: NVMDevice) -> None:
        assert self._n is not None and self._gap is not None
        size = device.segment_size
        donor = (self._gap - 1) % self._n
        content = device.read_array(donor * size, size)
        old_gap = device.read_array(self._gap * size, size)
        diff = np.bitwise_xor(content, old_gap)
        if diff.any():
            device.program(self._gap * size, content, program_mask=diff)
        wrapped = self._gap == 0
        self._gap = donor
        self.moves_performed += 1
        if wrapped:
            # The gap jumped from physical 0 back to the top: one full
            # revolution completed, so the logical ring rotates by one.
            self._start = (self._start + 1) % (self._n - 1)
