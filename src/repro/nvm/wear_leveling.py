"""Wear-leveling policies for the simulated memory controller.

The paper (§2.1) models the proprietary controller-level wear leveling as a
*segment swap every ψ writes*, with ψ typically in the tens of writes [22].
Figure 2 sweeps ψ to show that E2-NVM's placement survives the swapping for
realistic ψ.

All policies maintain a logical→physical segment mapping.  Swap traffic goes
through the device with a DCW (differing-bits-only) mask, so the extra flips
that swapping causes are accounted — the paper notes wear leveling "may
introduce more bit flips ... due to the swap operation" (§2.3).

Crash tolerance
---------------

A segment copy is only crash-safe when data is written to a *free* segment
first and the mapping committed *last*: the old location then stays intact
until the mapping no longer points at it.  :class:`StartGapWearLeveling`
has this property by construction (the gap is free).  The legacy in-place
exchange of :class:`SegmentSwapWearLeveling` does **not** — a crash between
its two programs leaves one segment half-overwritten with the mapping still
pointing at it.  Its ``scratch=True`` mode fixes this by reserving one
physical segment as a rotating scratch area and performing every swap as
two gap-style moves, each committing the mapping only after its copy
landed.

Policies expose ``mapping_state()`` / ``restore_mapping()`` plus an
``on_mapping_commit`` callback, modelling the hardware's persistent remap
table: the crash-sweep harness snapshots the state at every commit and
rebuilds the leveler from the last committed snapshot after an injected
crash (see :func:`repro.testing.crash_sweep.run_wear_leveling_crash_sweep`).
The ``"wl.swap"`` / ``"wl.gap_move"`` fault sites fire (through the
device's injector) at the start of each copy operation so sweeps can crash
at every one.
"""

from __future__ import annotations

import numpy as np

from repro.nvm.device import NVMDevice
from repro.util.rng import rng_from_seed


class NoWearLeveling:
    """Identity mapping: the controller never moves segments."""

    def attach(self, device: NVMDevice) -> None:
        """Bind to a device (no state needed)."""
        self._n_segments = device.n_segments

    def to_physical(self, logical_segment: int) -> int:
        """Physical segment currently backing ``logical_segment``."""
        return logical_segment

    def after_write(self, device: NVMDevice, logical_segment: int) -> None:
        """Hook invoked by the controller after every segment write."""


class SegmentSwapWearLeveling:
    """Swap the just-written segment with a random peer every ψ writes.

    Args:
        period: ψ, the number of writes between swaps; ``period=1`` swaps on
            every write (the adversarial case of Figure 2).
        seed: RNG seed for peer selection.
        scratch: reserve the last physical segment as a rotating scratch
            area and perform swaps as two crash-safe gap-style moves
            (copy-to-free first, mapping commit last).  Costs one segment
            of logical capacity; the default keeps the legacy in-place
            exchange, which is *not* crash-tolerant.
    """

    def __init__(
        self,
        period: int,
        seed: int | np.random.Generator | None = 0,
        scratch: bool = False,
    ):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self.scratch = scratch
        self._rng = rng_from_seed(seed)
        self._writes_since_swap = 0
        self.swaps_performed = 0
        self._logical_to_physical: np.ndarray | None = None
        self._physical_to_logical: np.ndarray | None = None
        self._scratch_seg: int | None = None
        self._n: int | None = None
        #: Called after every mapping-table commit (models the hardware
        #: persisting its remap table); crash harnesses snapshot here.
        self.on_mapping_commit = None

    def attach(self, device: NVMDevice) -> None:
        n = device.n_segments
        self._n = n
        if self.scratch and n < 2:
            raise ValueError("scratch mode needs at least 2 segments")
        logical = n - 1 if self.scratch else n
        self._logical_to_physical = np.arange(logical, dtype=np.int64)
        self._physical_to_logical = np.arange(n, dtype=np.int64)
        if self.scratch:
            self._scratch_seg = n - 1
            self._physical_to_logical[n - 1] = -1
        else:
            self._scratch_seg = None

    @property
    def logical_segments(self) -> int:
        """Logical segments exposed (physical minus the scratch, if any)."""
        if self._n is None:
            raise RuntimeError("wear leveler not attached to a device")
        return self._n - 1 if self.scratch else self._n

    def to_physical(self, logical_segment: int) -> int:
        if self._logical_to_physical is None:
            raise RuntimeError("wear leveler not attached to a device")
        return int(self._logical_to_physical[logical_segment])

    def after_write(self, device: NVMDevice, logical_segment: int) -> None:
        self._writes_since_swap += 1
        if self._writes_since_swap < self.period:
            return
        self._writes_since_swap = 0
        self._swap(device, logical_segment)

    # --------------------------------------------------- mapping persistence

    def mapping_state(self) -> dict:
        """Snapshot of the (logically media-resident) remap table."""
        assert self._logical_to_physical is not None
        return {
            "l2p": self._logical_to_physical.copy(),
            "p2l": self._physical_to_logical.copy(),
            "scratch_seg": self._scratch_seg,
            "writes_since_swap": self._writes_since_swap,
            "swaps_performed": self.swaps_performed,
        }

    def restore_mapping(self, state: dict) -> None:
        """Reinstate a :meth:`mapping_state` snapshot (crash recovery)."""
        self._logical_to_physical = state["l2p"].copy()
        self._physical_to_logical = state["p2l"].copy()
        self._scratch_seg = state["scratch_seg"]
        self._writes_since_swap = state["writes_since_swap"]
        self.swaps_performed = state["swaps_performed"]

    def _commit_mapping(self) -> None:
        if self.on_mapping_commit is not None:
            self.on_mapping_commit()

    # ----------------------------------------------------------------- swaps

    def _swap(self, device: NVMDevice, logical_segment: int) -> None:
        assert self._logical_to_physical is not None
        assert self._physical_to_logical is not None
        n = device.n_segments
        if self.scratch:
            if n < 3:
                return  # one scratch + one data segment: nothing to swap with
            self._swap_via_scratch(device, logical_segment)
            return
        if n < 2:
            return
        phys_a = int(self._logical_to_physical[logical_segment])
        phys_b = int(self._rng.integers(0, n))
        if phys_b == phys_a:
            phys_b = (phys_b + 1) % n

        if device.faults is not None:
            device.faults.fire("wl.swap")
        size = device.segment_size
        addr_a = phys_a * size
        addr_b = phys_b * size
        content_a = device.read_array(addr_a, size)
        content_b = device.read_array(addr_b, size)
        # Physically exchange the contents, programming only differing bits.
        # NOT crash-safe: a crash between the two programs corrupts segment
        # a with the mapping still pointing at it (use scratch=True).
        diff = np.bitwise_xor(content_a, content_b)
        if diff.any():
            device.program(addr_a, content_b, program_mask=diff)
            device.program(addr_b, content_a, program_mask=diff)

        logical_b = int(self._physical_to_logical[phys_b])
        self._logical_to_physical[logical_segment] = phys_b
        self._logical_to_physical[logical_b] = phys_a
        self._physical_to_logical[phys_a] = logical_b
        self._physical_to_logical[phys_b] = logical_segment
        self.swaps_performed += 1
        self._commit_mapping()

    def _swap_via_scratch(
        self, device: NVMDevice, logical_segment: int
    ) -> None:
        """Crash-safe swap: two gap-style moves through the scratch segment.

        Each move copies into the currently *free* segment and commits the
        mapping afterwards, so at every instant the mapping points at fully
        intact data; a crash loses at most not-yet-committed moves.  The
        scratch rotates (a → b's old home → ...) which adds start-gap-like
        drift on top of the random swaps.
        """
        assert self._scratch_seg is not None
        n = self._n
        phys_a = int(self._logical_to_physical[logical_segment])
        # Random peer among data segments (not a, not the scratch).
        phys_b = int(self._rng.integers(0, n))
        while phys_b == phys_a or phys_b == self._scratch_seg:
            phys_b = (phys_b + 1) % n
        logical_b = int(self._physical_to_logical[phys_b])

        if device.faults is not None:
            device.faults.fire("wl.swap")
        # Move 1: a's content into the scratch; a's old home becomes free.
        self._move_into_free(device, phys_a, logical_segment)
        # Move 2: b's content into a's old home; b's becomes the scratch.
        self._move_into_free(device, phys_b, logical_b)
        self.swaps_performed += 1

    def _move_into_free(
        self, device: NVMDevice, src_phys: int, logical: int
    ) -> None:
        """One gap-style move: program the free scratch segment with the
        source's content, then commit the mapping update."""
        assert self._scratch_seg is not None
        if device.faults is not None:
            device.faults.fire("wl.gap_move")
        size = device.segment_size
        dst = self._scratch_seg
        content = device.read_array(src_phys * size, size)
        resident = device.read_array(dst * size, size)
        diff = np.bitwise_xor(content, resident)
        if diff.any():
            device.program(dst * size, content, program_mask=diff)
        self._logical_to_physical[logical] = dst
        self._physical_to_logical[dst] = logical
        self._physical_to_logical[src_phys] = -1
        self._scratch_seg = src_phys
        self._commit_mapping()


class StartGapWearLeveling:
    """Start-Gap wear leveling (Qureshi et al., MICRO'09).

    One spare "gap" segment rotates through the device: every ψ writes the
    segment adjacent to the gap is copied into it and the gap advances, so
    hot logical segments slowly migrate over the whole media.

    Crash-safe by construction: the copy lands in the (free) gap first and
    the gap pointer — the mapping — moves only afterwards, so a crash
    mid-copy leaves the mapping pointing at the intact donor segment.
    """

    def __init__(self, period: int):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._writes_since_move = 0
        self.moves_performed = 0
        self._start = 0
        self._gap: int | None = None
        self._n: int | None = None
        #: Called after every gap-pointer commit (see SegmentSwap's note).
        self.on_mapping_commit = None

    def attach(self, device: NVMDevice) -> None:
        # The last physical segment starts as the gap; logical space is one
        # segment smaller than physical space.
        self._n = device.n_segments
        self._gap = self._n - 1
        self._start = 0
        if self._n < 2:
            raise ValueError("start-gap needs at least 2 segments")

    @property
    def logical_segments(self) -> int:
        """Number of logical segments exposed (physical minus the gap)."""
        if self._n is None:
            raise RuntimeError("wear leveler not attached to a device")
        return self._n - 1

    def to_physical(self, logical_segment: int) -> int:
        if self._n is None or self._gap is None:
            raise RuntimeError("wear leveler not attached to a device")
        if not 0 <= logical_segment < self._n - 1:
            raise IndexError(f"logical segment {logical_segment} out of range")
        raw = (logical_segment + self._start) % (self._n - 1)
        # Skip over the gap: raw positions at or above the gap shift up by 1.
        return raw + 1 if raw >= self._gap else raw

    def after_write(self, device: NVMDevice, logical_segment: int) -> None:
        self._writes_since_move += 1
        if self._writes_since_move < self.period:
            return
        self._writes_since_move = 0
        self._move_gap(device)

    def mapping_state(self) -> dict:
        """Snapshot of the (logically media-resident) gap/start pointers."""
        return {
            "start": self._start,
            "gap": self._gap,
            "writes_since_move": self._writes_since_move,
            "moves_performed": self.moves_performed,
        }

    def restore_mapping(self, state: dict) -> None:
        """Reinstate a :meth:`mapping_state` snapshot (crash recovery)."""
        self._start = state["start"]
        self._gap = state["gap"]
        self._writes_since_move = state["writes_since_move"]
        self.moves_performed = state["moves_performed"]

    def _move_gap(self, device: NVMDevice) -> None:
        assert self._n is not None and self._gap is not None
        if device.faults is not None:
            device.faults.fire("wl.gap_move")
        size = device.segment_size
        donor = (self._gap - 1) % self._n
        content = device.read_array(donor * size, size)
        old_gap = device.read_array(self._gap * size, size)
        # Gap-first write order: the donor keeps its data until the gap
        # pointer (the mapping) commits below.
        diff = np.bitwise_xor(content, old_gap)
        if diff.any():
            device.program(self._gap * size, content, program_mask=diff)
        wrapped = self._gap == 0
        self._gap = donor
        self.moves_performed += 1
        if wrapped:
            # The gap jumped from physical 0 back to the top: one full
            # revolution completed, so the logical ring rotates by one.
            self._start = (self._start + 1) % (self._n - 1)
        if self.on_mapping_commit is not None:
            self.on_mapping_commit()
