"""Background retention scrubber: the read-side mirror of verify-after-write.

Resistance drift corrupts data *at rest* — a value written correctly decays
into flipped bits long after the write verified clean.  Real PCM systems
run a scrub loop that margin-reads cells, detects drifted ones and
re-programs them before enough accumulate to defeat correction (DATACON's
periodic refresh, SoftWear's software-only media management).  This module
is that loop for the simulated store:

- :meth:`Scrubber.scrub_segment` margin-reads one live segment
  (``controller.drift_mask``), refresh-writes the true content back through
  the normal DCW write path (:meth:`MemoryController.refresh`) — so scrub
  cost lands in the same energy/endurance accounting as any other write —
  and verifies the healed value against its catalog CRC;
- :meth:`Scrubber.scrub_round` walks live segments in wear/age-priority
  order (most-worn, least-recently-scrubbed first), bounded by
  ``segments_per_round`` — the *rate limit* that keeps scrub bandwidth from
  starving foreground traffic;
- :meth:`Scrubber.start` runs rounds on a single-flight, pause/resume-able,
  exception-safe background worker (the shared
  :class:`~repro.nvm.worker.MaintenanceWorker` loop, also used by the
  compactor): a failing round is counted and the worker keeps going, and
  ``pause()``/``resume()`` gate the loop without killing the thread;
- repeat offenders — segments that keep accumulating drift, or whose value
  stays CRC-broken after a refresh — are escalated to
  ``HealthManager.queue_relocation`` so the store evacuates them onto
  healthier media.

The scrubber is duck-typed over the store (index/validity mirrors and the
catalog CRC map) to keep the ``nvm`` layer import-free of ``core``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.nvm.health import SegmentRetiredError
from repro.nvm.worker import MaintenanceWorker
from repro.util.bits import popcount_array


@dataclass
class ScrubStats:
    """Cumulative scrubber telemetry (see :meth:`Scrubber.telemetry`)."""

    rounds: int = 0
    segments_scanned: int = 0
    bits_healed: int = 0
    refresh_writes: int = 0
    corruptions_found: int = 0
    escalations: int = 0
    worker_errors: int = 0
    #: Live segments the last round could *not* reach under its rate
    #: limit — a growing backlog means scrub bandwidth is undersized for
    #: the drift rate.
    backlog: int = 0


class Scrubber(MaintenanceWorker):
    """Rate-limited background scrub worker over a :class:`KVStore`.

    Args:
        store: the KV store whose live segments to scrub; the scrubber
            registers itself via ``store.attach_scrubber`` so CRC-failed
            reads can request a targeted synchronous scrub.
        segments_per_round: rate limit — live segments refreshed per round.
        interval_s: sleep between background rounds.
        escalate_after: a segment found drifted in this many *consecutive*
            scrubs is escalated to ``HealthManager.queue_relocation``
            (repeat offenders are decaying faster than scrub can cheaply
            keep up; moving the value is the durable fix).
        faults: optional fault injector; when set, the write-capable
            ``"scrub.refresh"`` site fires before every refresh write.
            Defaults to the device's injector.
    """

    def __init__(
        self,
        store,
        *,
        segments_per_round: int = 8,
        interval_s: float = 0.005,
        escalate_after: int = 3,
        faults=None,
    ) -> None:
        if segments_per_round <= 0:
            raise ValueError("segments_per_round must be positive")
        if escalate_after <= 0:
            raise ValueError("escalate_after must be positive")
        super().__init__(interval_s=interval_s, name="scrubber")
        self.store = store
        self.controller = store.engine.controller
        self.device = self.controller.device
        self.segments_per_round = segments_per_round
        self.escalate_after = escalate_after
        self.faults = faults if faults is not None else self.device.faults
        self.stats = ScrubStats()
        # Scrub-order bookkeeping: per-segment "last scrubbed" round
        # counter and consecutive-drifty-scrub counts for escalation.
        self._round_counter = 0
        self._last_scrubbed: dict[int, int] = {}
        self._dirty_streak: dict[int, int] = {}
        store.attach_scrubber(self)

    # ------------------------------------------------------------- scrubbing

    def scrub_segment(self, segment: int) -> int:
        """Scrub one live segment: margin-read its drift, refresh-write the
        true content, verify the healed value against its CRC.  Returns
        the number of drifted bits healed (0 when the segment is no longer
        live or holds no drift *and* needs no verification).

        Safe against concurrent PUT/relocation: liveness is re-checked
        from the store's mirrors, and refreshing a segment that was freed
        mid-flight merely rewrites bytes nobody reads.
        """
        addr = segment * self.controller.segment_size
        key = self.store._by_addr.get(addr)
        if key is None:
            return 0
        entry = self.store.index.get(key)
        if entry is None or entry[0] != addr:
            return 0
        length = entry[1]
        drifted = popcount_array(self.controller.drift_mask(addr, length))
        if self.faults is not None:
            self.faults.fire("scrub.refresh")
        try:
            healed = self.controller.refresh(addr, length)
        except SegmentRetiredError:
            # The refresh write itself retired the segment (its ECP ran
            # out): the value stays readable in place; hand it to the
            # relocation queue and move on.
            self._escalate(segment)
            return 0
        self.stats.refresh_writes += 1
        self.stats.bits_healed += healed

        expected = self.store._crc_by_addr.get(addr)
        if expected is not None:
            value = self.controller.read(addr, length)
            if zlib.crc32(value) & 0xFFFFFFFF != expected:
                # Refresh could not restore the recorded bytes: real
                # corruption, not drift.  Count it and escalate — reads of
                # this key will raise CorruptValueError.
                self.stats.corruptions_found += 1
                self._escalate(segment)

        streak = self._dirty_streak.get(segment, 0) + 1 if drifted else 0
        self._dirty_streak[segment] = streak
        if streak >= self.escalate_after:
            self._dirty_streak[segment] = 0
            self._escalate(segment)
        return healed

    def scrub_round(self) -> dict:
        """One rate-limited pass: scrub up to ``segments_per_round`` live
        segments in wear/age-priority order.  Returns a summary dict."""
        self._round_counter += 1
        live = [
            addr // self.controller.segment_size
            for addr, key in list(self.store._by_addr.items())
            if key is not None
        ]
        wear = self.device.segment_write_count
        # Least-recently-scrubbed first; ties broken toward the most worn
        # segment (wear accelerates drift), then by index for determinism.
        live.sort(
            key=lambda seg: (
                self._last_scrubbed.get(seg, -1),
                -int(wear[seg]),
                seg,
            )
        )
        chosen = live[: self.segments_per_round]
        healed = 0
        for seg in chosen:
            healed += self.scrub_segment(seg)
            self._last_scrubbed[seg] = self._round_counter
            self.stats.segments_scanned += 1
        self.stats.rounds += 1
        self.stats.backlog = len(live) - len(chosen)
        return {
            "round": self._round_counter,
            "segments_scrubbed": len(chosen),
            "bits_healed": healed,
            "backlog": self.stats.backlog,
        }

    def _escalate(self, segment: int) -> None:
        health = self.controller.health_manager
        if health is None:
            return
        health.queue_relocation(segment)
        self.stats.escalations += 1

    # ------------------------------------------------------- background loop

    def run_once(self) -> dict:
        """One background round (the :class:`MaintenanceWorker` hook)."""
        return self.scrub_round()

    def _note_worker_error(self, exc: BaseException) -> None:
        super()._note_worker_error(exc)
        self.stats.worker_errors += 1

    # ------------------------------------------------------------- telemetry

    def telemetry(self) -> dict:
        """Cumulative scrub counters plus worker state."""
        return {
            "rounds": self.stats.rounds,
            "segments_scanned": self.stats.segments_scanned,
            "bits_healed": self.stats.bits_healed,
            "refresh_writes": self.stats.refresh_writes,
            "corruptions_found": self.stats.corruptions_found,
            "escalations": self.stats.escalations,
            "worker_errors": self.stats.worker_errors,
            "backlog": self.stats.backlog,
            "running": self.running,
            "paused": self.paused,
        }
