"""Device health: segment retirement, spare capacity and degradation
telemetry.

Two pieces with very different lifetimes cooperate here:

- :class:`HealthState` is *media state*.  It lives on the
  :class:`~repro.nvm.device.NVMDevice` object (``device.health``), models a
  reserved metadata region on the media, survives a simulated crash (the
  device object is the media) and round-trips through
  ``NVMDevice.save()/load()``.  It records which physical segments are
  retired (ECP capacity exceeded — never place data there again), which
  are retiring (at ECP capacity — still readable, evacuate soon) and which
  addresses are reserved spares.
- :class:`HealthManager` is *policy*.  One is created per
  :class:`~repro.nvm.controller.MemoryController` when verify-after-write
  is enabled; it mutates the device-resident state, fires the
  ``"health.retire"`` / ``"health.relocate"`` fault sites (through the
  device's injector) and maintains the DRAM relocation queue the storage
  layer drains.  Fault sites fire *before* the state mutation, so an
  injected crash models dying before the metadata write — exactly the
  window the crash-sweep harness probes.

Retirement contract (see README "Degraded mode"): a write whose
verify-after-write would need more ECP entries than the segment has left
raises :class:`SegmentRetiredError`; the placement engine quarantines the
address, adopts a spare when one is reserved, and retries.  Once spares
and free capacity are exhausted the KV store degrades to read-only.

Reclamation (see README "Capacity lifecycle"): a *retiring* segment whose
live value has been evacuated is not stranded — :meth:`HealthManager
.reclaim` moves it out of the retiring set and appends its address to the
spares list, marking it *reclaimed*.  A reclaimed segment is at ECP
capacity but every cell still reads correctly; it re-enters service as
spare-class capacity (the next :meth:`take_spare` hands it out) and dies
for real only when a later write exceeds its ECP budget.  ``mark_retiring``
is a no-op for reclaimed segments — they are *expected* to sit at capacity,
and re-queuing them on every write would relocate their values forever.
"""

from __future__ import annotations

from collections import deque


class SegmentRetiredError(RuntimeError):
    """A write failed verification beyond the segment's ECP capacity.

    The segment is retired: its address must be quarantined and the write
    retried elsewhere.  Carries the failing physical segment on
    ``.segment``.
    """

    def __init__(self, segment: int, message: str | None = None) -> None:
        super().__init__(
            message
            or f"segment {segment} exceeded its ECP correction capacity"
        )
        self.segment = segment


class HealthState:
    """Media-resident degradation bookkeeping (attached to the device)."""

    def __init__(self) -> None:
        #: Physical segments whose ECP capacity was exceeded; dead for
        #: placement, reads still served (rolled-back old data is intact
        #: because stuck cells hold exactly the bits they refused to flip).
        self.retired: set[int] = set()
        #: Physical segments at (but not beyond) ECP capacity: still
        #: correct, but the next new dead cell kills them — evacuate.
        self.retiring: set[int] = set()
        #: Reserved spare segment addresses, handed out FIFO on retirement.
        self.spares: list[int] = []
        #: Segments that reached ECP capacity, were drained, and returned
        #: to service as spare-class capacity.  Kept so ``mark_retiring``
        #: knows not to re-queue them (they run at capacity by design).
        self.reclaimed: set[int] = set()

    def snapshot_arrays(self):
        """(retired, retiring, spares, reclaimed) as plain int lists for
        ``np.savez``."""
        return (
            sorted(self.retired),
            sorted(self.retiring),
            list(self.spares),
            sorted(self.reclaimed),
        )

    def restore_arrays(self, retired, retiring, spares, reclaimed=()) -> None:
        self.retired = {int(s) for s in retired}
        self.retiring = {int(s) for s in retiring}
        self.spares = [int(a) for a in spares]
        self.reclaimed = {int(s) for s in reclaimed}


class HealthManager:
    """Retirement/relocation policy over a controller's device.

    Args:
        controller: the :class:`~repro.nvm.controller.MemoryController`
            whose verify path reports failures here.
        faults: optional fault injector; defaults to the device's.  Fires
            ``"health.retire"`` when a segment is retired and
            ``"health.relocate"`` is fired by the storage layer as it
            evacuates a value (see ``KVStore._relocate``).
    """

    def __init__(self, controller, faults=None) -> None:
        self.controller = controller
        self.device = controller.device
        if getattr(self.device, "health", None) is None:
            self.device.health = HealthState()
        self.state: HealthState = self.device.health
        self.faults = faults if faults is not None else self.device.faults
        # DRAM relocation queue: retiring segments with live data the
        # storage layer still has to move.  Rebuilt on recovery from the
        # persisted retiring set intersected with the live index.
        self._pending: deque[int] = deque()
        self._pending_set: set[int] = set()
        #: Duplicate enqueue attempts the idempotence guard dropped (the
        #: scrubber's repeat-offender escalation re-reports the same
        #: segment every round until it is drained).
        self.relocation_duplicates_dropped = 0
        #: Cumulative segments reclaimed into spare-class service.
        self.reclaimed_total = 0

    # ------------------------------------------------------------ transitions

    def retire(self, segment: int) -> None:
        """Mark ``segment`` failed.  Fires ``health.retire`` first: an
        injected crash at the site models dying before the metadata write,
        leaving the retirement to be rediscovered after recovery."""
        if segment in self.state.retired:
            return
        self._fire("health.retire")
        self.state.retired.add(segment)
        self.state.retiring.discard(segment)
        if segment in self.state.reclaimed:
            # A reclaimed (spare-class) segment died for real: it must not
            # linger in the spares list, or the next activation would hand
            # out dead media.
            self.state.reclaimed.discard(segment)
            seg_size = self.controller.segment_size
            self.state.spares = [
                a for a in self.state.spares if a // seg_size != segment
            ]
        if segment in self._pending_set:
            self._pending_set.discard(segment)
            try:
                self._pending.remove(segment)
            except ValueError:
                pass

    def mark_retiring(self, segment: int) -> None:
        """Queue a segment that just hit ECP capacity for evacuation.

        Reclaimed (spare-class) segments are exempt: they sit at ECP
        capacity *by design*, and re-queuing them on every write would
        evacuate-and-reclaim the same media forever."""
        if (
            segment in self.state.retired
            or segment in self.state.retiring
            or segment in self.state.reclaimed
        ):
            return
        self.state.retiring.add(segment)
        self.queue_relocation(segment)

    def queue_relocation(self, segment: int) -> None:
        """(Re-)enqueue a retiring segment for the storage layer to drain
        (recovery re-queues persisted retiring segments with live data).

        Idempotent: a segment already pending is dropped and counted on
        :attr:`relocation_duplicates_dropped` — the scrubber's
        repeat-offender escalation can report the same segment every round
        until the store drains it."""
        if segment in self._pending_set:
            self.relocation_duplicates_dropped += 1
            return
        self._pending_set.add(segment)
        self._pending.append(segment)

    def reclaim(self, segment: int) -> int | None:
        """Return a drained *retiring* segment to service as a spare.

        Fires the ``compact.reclaim`` site first (an injected crash models
        dying before the metadata write; recovery re-runs the reclaim,
        making it idempotent), then moves the segment out of the retiring
        set, marks it reclaimed and appends its address to the spares list.
        Returns the reclaimed address, or ``None`` when the segment is not
        retiring (already reclaimed/retired calls are no-ops)."""
        if segment not in self.state.retiring:
            return None
        self._fire("compact.reclaim")
        self.state.retiring.discard(segment)
        self.state.reclaimed.add(segment)
        addr = segment * self.controller.segment_size
        self.state.spares.append(addr)
        self.reclaimed_total += 1
        if segment in self._pending_set:
            self._pending_set.discard(segment)
            try:
                self._pending.remove(segment)
            except ValueError:
                pass
        return addr

    def pop_pending_relocation(self) -> int | None:
        """Next retiring segment awaiting evacuation, or ``None``."""
        if not self._pending:
            return None
        segment = self._pending.popleft()
        self._pending_set.discard(segment)
        return segment

    def fire_relocate(self) -> None:
        """Hit the ``health.relocate`` site (called by the storage layer
        just before it rewrites an evacuated value)."""
        self._fire("health.relocate")

    # ---------------------------------------------------------------- spares

    def add_spares(self, addresses) -> None:
        """Register reserved spare addresses (persisted on the device)."""
        self.state.spares.extend(int(a) for a in addresses)

    def take_spare(self) -> int | None:
        """Hand out the next spare address, or ``None`` when exhausted."""
        if not self.state.spares:
            return None
        return self.state.spares.pop(0)

    @property
    def spares_left(self) -> int:
        return len(self.state.spares)

    # ------------------------------------------------------------- inspection

    def is_retired(self, segment: int) -> bool:
        return segment in self.state.retired

    def is_retiring(self, segment: int) -> bool:
        return segment in self.state.retiring

    def is_reclaimed(self, segment: int) -> bool:
        return segment in self.state.reclaimed

    def is_unplaceable(self, segment: int) -> bool:
        """Whether placement must never hand this segment out.

        Reclaimed segments are *placeable*: until adopted they are barred
        by the DAP quarantine like any reserved spare, and once adopted
        they serve writes normally (dying for real on ECP overflow)."""
        return (
            segment in self.state.retired or segment in self.state.retiring
        )

    @property
    def relocations_pending(self) -> int:
        """Segments currently queued for evacuation."""
        return len(self._pending)

    def telemetry(self) -> dict:
        """Degradation snapshot for monitoring and the lifetime benchmark."""
        device = self.device
        ecc = getattr(device, "ecc", None)
        n = device.n_segments
        dead = len(self.state.retired)
        return {
            "stuck_cells": device.stuck_cell_count(),
            "corrections_active": (
                ecc.corrections_active if ecc is not None else 0
            ),
            "segments_retired": dead,
            "segments_retiring": len(self.state.retiring),
            "segments_reclaimed": len(self.state.reclaimed),
            "segments_reclaimed_total": self.reclaimed_total,
            "spares_left": len(self.state.spares),
            "relocations_pending": len(self._pending),
            "relocation_duplicates_dropped": (
                self.relocation_duplicates_dropped
            ),
            "usable_capacity_fraction": (n - dead) / n if n else 0.0,
        }

    # -------------------------------------------------------------- internals

    def _fire(self, site: str) -> None:
        if self.faults is not None:
            self.faults.fire(site)
