"""PMDK-like persistent-memory programming layer.

The paper's Figure 1 experiment "use[s] PMDK's transactions to persist
writes" on a real Optane device.  This package provides the equivalent
programming model over the simulated device:

- :class:`~repro.pmem.pool.PersistentPool` — an object pool with a
  segment-granularity allocator (``pmemobj_alloc``-style);
- :class:`~repro.pmem.transaction.Transaction` — undo-log transactions
  (``TX_BEGIN``/``TX_ADD``-style): old content is logged to a reserved NVM
  log region before in-place writes, so the log traffic's energy cost is
  part of every transactional write, exactly as on real PMDK;
- :class:`~repro.pmem.catalog.PersistentCatalog` — a media-resident
  per-segment record table (key, value length, validity flag, epoch) so
  the device alone describes the KV store and a restart can rebuild every
  DRAM structure from a catalog scan.
"""

from repro.pmem.catalog import CatalogEntry, PersistentCatalog
from repro.pmem.pool import PersistentPool
from repro.pmem.transaction import Transaction, TransactionAborted

__all__ = [
    "CatalogEntry",
    "PersistentCatalog",
    "PersistentPool",
    "Transaction",
    "TransactionAborted",
]
