"""Undo-log transactions over the simulated NVM (PMDK ``tx`` style).

Each transactional write first persists an undo record — the target
address, length, and *old* content — into the pool's media-resident log
region, marks the record valid, and only then writes the new data in place.
Commit clears the log's active flag; abort (an exception inside the
``with`` block) replays the undo records in reverse.

Because the log lives on the simulated media, a *crash* mid-transaction
(abandoning the pool object) is recoverable: a new
:class:`~repro.pmem.pool.PersistentPool` constructed over the same device
with ``recover=True`` finds the active log and rolls the half-applied
transaction back — see ``tests/pmem/test_crash_recovery.py``.

All log traffic is real device writes, so transactional overhead shows up
in the energy/latency accounting, as it does on real Optane through PMDK.
"""

from __future__ import annotations

import numpy as np


class TransactionAborted(Exception):
    """Raised by :meth:`Transaction.abort` to roll back explicitly."""


class Transaction:
    """One undo-log transaction; use as a context manager.

    Created by :meth:`repro.pmem.pool.PersistentPool.transaction`.  Only one
    transaction may be active per pool at a time (the log holds one
    transaction's records).
    """

    def __init__(self, pool) -> None:
        self._pool = pool
        self._active = False

    def __enter__(self) -> "Transaction":
        self._pool._log_begin()
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._commit()
            return False
        self._rollback()
        self._active = False
        # Swallow only explicit aborts; real errors propagate.
        return exc_type is TransactionAborted

    def write(self, addr: int, data: bytes) -> None:
        """Log the old content of ``[addr, addr+len)``, then write in place."""
        if not self._active:
            raise RuntimeError("transaction is not active")
        old = self._pool.controller.read(addr, len(data))
        self._pool._log_record(addr, old)
        self._pool.controller.write(addr, data)

    def abort(self) -> None:
        """Roll back everything written so far and leave the ``with`` block."""
        raise TransactionAborted()

    def _commit(self) -> None:
        self._pool._log_finish()
        self._active = False

    def _rollback(self) -> None:
        self._pool._log_rollback()
        self._pool._log_finish()


def as_bytes(data) -> bytes:
    """Normalise ``bytes``/``ndarray`` write payloads."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data)
    return np.asarray(data, dtype=np.uint8).tobytes()
