"""Undo-log transactions over the simulated NVM (PMDK ``tx`` style).

Each transactional write first persists an undo record — the target
address, length, and *old* content — into the pool's media-resident log
region, marks the record valid, and only then writes the new data in place.
Commit clears the log's active flag; abort (an exception inside the
``with`` block) replays the undo records in reverse.

Because the log lives on the simulated media, a *crash* mid-transaction
(abandoning the pool object) is recoverable: a new
:class:`~repro.pmem.pool.PersistentPool` constructed over the same device
with ``recover=True`` finds the active log and rolls the half-applied
transaction back — see ``tests/pmem/test_crash_recovery.py``.  A
:class:`~repro.testing.faults.CrashError` raised at a fault site inside the
``with`` block is treated as process death: the context manager performs
*no* rollback and no cleanup, leaving the media exactly as the crash left
it for a later recovery to repair.

All log traffic is real device writes, so transactional overhead shows up
in the energy/latency accounting, as it does on real Optane through PMDK.
"""

from __future__ import annotations

import numpy as np

from repro.testing.faults import CrashError


class TransactionAborted(Exception):
    """Raised by :meth:`Transaction.abort` to roll back explicitly."""


class Transaction:
    """One undo-log transaction; use as a context manager.

    Created by :meth:`repro.pmem.pool.PersistentPool.transaction`.  Only one
    transaction may be active per pool at a time (the log holds one
    transaction's records); beginning a second while one is active raises
    ``RuntimeError`` instead of silently corrupting the first transaction's
    undo records.  Transaction objects are single-use: re-entering one that
    already committed or rolled back also raises.
    """

    def __init__(self, pool) -> None:
        self._pool = pool
        self._active = False
        self._finished = False

    def __enter__(self) -> "Transaction":
        if self._active:
            raise RuntimeError("transaction is already active")
        if self._finished:
            raise RuntimeError(
                "transaction objects are single-use; begin a new one with "
                "pool.transaction()"
            )
        self._pool._log_begin()
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and issubclass(exc_type, CrashError):
            # Simulated process death: nothing more touches the media.  The
            # active undo log stays behind for recover() to roll back.
            self._active = False
            self._finished = True
            return False
        if exc_type is None:
            self._commit()
            return False
        self._rollback()
        self._active = False
        # Swallow only explicit aborts; real errors propagate.
        return exc_type is TransactionAborted

    def write(self, addr: int, data: bytes) -> None:
        """Log the old content of ``[addr, addr+len)``, then write in place."""
        if not self._active:
            raise RuntimeError("transaction is not active")
        old = self._pool.controller.read(addr, len(data))
        self._pool._log_record(addr, old)
        # The undo record is persisted and valid: a crash (or torn write)
        # from here on is rolled back from the log.
        self._pool._fire(
            "tx.write",
            payload_len=len(data),
            payload_writer=lambda n: self._pool.controller.torn_program(
                addr, data[:n]
            ),
        )
        self._pool.controller.write(addr, data)

    def abort(self) -> None:
        """Roll back everything written so far and leave the ``with`` block."""
        raise TransactionAborted()

    def _commit(self) -> None:
        self._pool._fire("tx.commit")
        self._pool._log_finish()
        self._active = False
        self._finished = True

    def _rollback(self) -> None:
        self._pool._log_rollback()
        self._pool._log_finish()
        self._finished = True


def as_bytes(data) -> bytes:
    """Normalise ``bytes``/``ndarray`` write payloads."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data)
    return np.asarray(data, dtype=np.uint8).tobytes()
